#!/usr/bin/env python3
"""AST lint for the repo's cross-cutting code invariants (CI gate).

Each scanned tree declares which rules apply to it (``SCANNED_TREES``).

**RT001 -- no bare ``time.time()`` in lease/heartbeat/TTL code**
(``src/repro/server``, ``src/repro/tenancy``).  The job store runs on a
monotonic-anchored clock (``JobStore._now``) so an NTP step can neither
mass-expire TTL'd jobs nor immortalise stale leases.  A bare
``time.time()`` in these trees reintroduces wall-clock arithmetic; new
call sites must justify themselves (display-only stamps, the anchors
themselves) by being added to the baseline file in a reviewed commit.

**TX001 -- no store mutation outside a ``BEGIN IMMEDIATE`` helper**
(``src/repro/server``, ``src/repro/tenancy``).  Every
INSERT/UPDATE/DELETE against the store must run inside
``with self._write(...)`` / ``with store.write_transaction(...)`` (one
atomic transaction per mutating method) or in a helper that receives the
open transaction's connection as a ``conn``/``connection`` parameter.
A naked ``cursor.execute("UPDATE ...")`` autocommits per-statement and
silently breaks crash atomicity and the multi-process claim protocol.

**RT002 -- no bare ``time.time()`` in the core search**
(``src/repro/core``).  Search budgets run on ``time.monotonic`` deadlines
and verification results are content-addressed: wall-clock reads in the
hot path make runs irreproducible and deadline math NTP-sensitive.
Display-only stamps (the progress-event ``emit`` hook) are grandfathered.

**DF001 -- no iteration-order-dependent loops in the dataflow pass**
(``src/repro/analysis/dataflow.py``).  The dataflow facts feed pruning
decisions whose determinism is asserted by tests and relied on by the
result cache; iterating a dict/set (``for x in {...}``, ``.items()``,
``set(...)``) without ``sorted(...)`` makes the emitted tuples depend on
hash order.  Wrap the iterable in ``sorted(...)`` instead.

Violations are identified as ``<relpath>::<rule>::<enclosing function>``
and checked against ``tools/lint_invariants_baseline.txt``: existing,
reviewed call sites are grandfathered; anything new fails the build.
Run with ``--update-baseline`` to regenerate the file after a reviewed
change, and commit the diff.

Exit codes: 0 clean (stale baseline entries are reported but pass),
1 new violations, 2 usage/IO error.
"""

from __future__ import annotations

import argparse
import ast
import os
import sys
from typing import FrozenSet, Iterator, List, Optional, Set, Tuple

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
#: (tree or single file, rules enforced there)
SCANNED_TREES: Tuple[Tuple[str, Tuple[str, ...]], ...] = (
    (os.path.join("src", "repro", "server"), ("RT001", "TX001")),
    (os.path.join("src", "repro", "tenancy"), ("RT001", "TX001")),
    (os.path.join("src", "repro", "core"), ("RT002",)),
    (os.path.join("src", "repro", "analysis", "dataflow.py"), ("DF001",)),
)
BASELINE_PATH = os.path.join(REPO_ROOT, "tools", "lint_invariants_baseline.txt")

MUTATING_PREFIXES = ("INSERT", "UPDATE", "DELETE", "REPLACE")
WRITE_HELPER_NAMES = ("_write", "write_transaction")
CONNECTION_PARAMS = ("conn", "connection")


class Violation:
    def __init__(self, path: str, rule: str, function: str, lineno: int, message: str):
        self.path = path
        self.rule = rule
        self.function = function
        self.lineno = lineno
        self.message = message

    @property
    def key(self) -> str:
        """Stable identity for the baseline: line numbers churn, the
        (file, rule, enclosing function) triple survives refactors."""
        return f"{self.path}::{self.rule}::{self.function}"

    def render(self) -> str:
        return f"{self.path}:{self.lineno}: {self.rule} [{self.function}] {self.message}"


def _first_sql_literal(node: ast.AST) -> Optional[str]:
    """The leading string content of an .execute() SQL argument, looking
    through f-strings and implicit/explicit concatenation."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    if isinstance(node, ast.JoinedStr) and node.values:
        return _first_sql_literal(node.values[0])
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Add):
        return _first_sql_literal(node.left)
    return None


def _is_write_helper_call(node: ast.AST) -> bool:
    """``self._write(...)``, ``store.write_transaction(...)`` etc."""
    if not isinstance(node, ast.Call):
        return False
    callee = node.func
    name = callee.attr if isinstance(callee, ast.Attribute) else (
        callee.id if isinstance(callee, ast.Name) else None
    )
    return name in WRITE_HELPER_NAMES


_UNORDERED_BUILTINS = ("set", "dict", "frozenset")
_UNORDERED_METHODS = ("keys", "values", "items")


def _is_unordered_iterable(node: ast.AST) -> Optional[str]:
    """A human-readable label when *node* is a syntactically-unordered
    iterable (dict/set display or comprehension, ``set(...)``-style call,
    ``.keys()/.values()/.items()``); ``None`` otherwise."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return "set"
    if isinstance(node, (ast.Dict, ast.DictComp)):
        return "dict"
    if isinstance(node, ast.Call):
        callee = node.func
        if isinstance(callee, ast.Name) and callee.id in _UNORDERED_BUILTINS:
            return f"{callee.id}(...)"
        if isinstance(callee, ast.Attribute) and callee.attr in _UNORDERED_METHODS:
            return f".{callee.attr}()"
    return None


class _InvariantVisitor(ast.NodeVisitor):
    def __init__(self, relpath: str, rules: FrozenSet[str]):
        self.relpath = relpath
        self.rules = rules
        self.violations: List[Violation] = []
        self._function_stack: List[str] = ["<module>"]
        self._write_depth = 0
        self._connection_params: List[Set[str]] = [set()]

    # ------------------------------------------------------------- scoping

    def _visit_function(self, node) -> None:
        params = {
            a.arg
            for a in list(node.args.args)
            + list(node.args.posonlyargs)
            + list(node.args.kwonlyargs)
        }
        self._function_stack.append(node.name)
        self._connection_params.append(
            {p for p in params if p in CONNECTION_PARAMS}
        )
        self.generic_visit(node)
        self._connection_params.pop()
        self._function_stack.pop()

    visit_FunctionDef = _visit_function
    visit_AsyncFunctionDef = _visit_function

    def visit_With(self, node: ast.With) -> None:
        is_write = any(_is_write_helper_call(item.context_expr) for item in node.items)
        if is_write:
            self._write_depth += 1
        self.generic_visit(node)
        if is_write:
            self._write_depth -= 1

    # --------------------------------------------------------------- rules

    def visit_Call(self, node: ast.Call) -> None:
        self._check_time_time(node)
        if "TX001" in self.rules:
            self._check_mutation(node)
        self.generic_visit(node)

    def visit_For(self, node: ast.For) -> None:
        self._check_unordered_iteration(node.iter)
        self.generic_visit(node)

    def _visit_comprehension_node(self, node) -> None:
        if "DF001" in self.rules:
            for generator in node.generators:
                self._check_unordered_iteration(generator.iter)
        self.generic_visit(node)

    visit_ListComp = _visit_comprehension_node
    visit_SetComp = _visit_comprehension_node
    visit_DictComp = _visit_comprehension_node
    visit_GeneratorExp = _visit_comprehension_node

    def _check_time_time(self, node: ast.Call) -> None:
        callee = node.func
        if not (
            isinstance(callee, ast.Attribute)
            and callee.attr == "time"
            and isinstance(callee.value, ast.Name)
            and callee.value.id == "time"
        ):
            return
        if "RT001" in self.rules:
            self._record(
                "RT001",
                node.lineno,
                "bare time.time(): lease/heartbeat/TTL math must use the "
                "monotonic-anchored store clock (JobStore._now/_shared_now)",
            )
        elif "RT002" in self.rules:
            self._record(
                "RT002",
                node.lineno,
                "bare time.time() in the core search: budgets/deadlines must "
                "use time.monotonic and results must not embed wall time",
            )

    def _check_unordered_iteration(self, iterable: ast.AST) -> None:
        if "DF001" not in self.rules:
            return
        label = _is_unordered_iterable(iterable)
        if label is not None:
            self._record(
                "DF001",
                iterable.lineno,
                f"iteration over unordered {label}: dataflow facts must be "
                "hash-order independent -- wrap the iterable in sorted(...)",
            )

    def _check_mutation(self, node: ast.Call) -> None:
        callee = node.func
        if not (isinstance(callee, ast.Attribute) and callee.attr in ("execute", "executemany")):
            return
        if not node.args:
            return
        sql = _first_sql_literal(node.args[0])
        if sql is None or not sql.lstrip().upper().startswith(MUTATING_PREFIXES):
            return
        if self._write_depth > 0:
            return
        receiver = callee.value
        if (
            isinstance(receiver, ast.Name)
            and receiver.id in self._connection_params[-1]
        ):
            return  # helper running on a caller-owned open transaction
        self._record(
            "TX001",
            node.lineno,
            f"store mutation ({sql.split(None, 1)[0].upper()}) outside a "
            "BEGIN IMMEDIATE helper: wrap in `with ..._write()` / "
            "`write_transaction()` or take the open `conn` as a parameter",
        )

    def _record(self, rule: str, lineno: int, message: str) -> None:
        self.violations.append(
            Violation(self.relpath, rule, self._function_stack[-1], lineno, message)
        )


# ------------------------------------------------------------------ driver


def _python_files() -> Iterator[Tuple[str, FrozenSet[str]]]:
    for tree, rules in SCANNED_TREES:
        root = os.path.join(REPO_ROOT, tree)
        if os.path.isfile(root):
            yield root, frozenset(rules)
            continue
        for dirpath, _dirnames, filenames in os.walk(root):
            for filename in sorted(filenames):
                if filename.endswith(".py"):
                    yield os.path.join(dirpath, filename), frozenset(rules)


def collect_violations() -> List[Violation]:
    violations: List[Violation] = []
    for path, rules in _python_files():
        relpath = os.path.relpath(path, REPO_ROOT).replace(os.sep, "/")
        with open(path, "r", encoding="utf-8") as handle:
            source = handle.read()
        try:
            tree = ast.parse(source, filename=relpath)
        except SyntaxError as error:
            print(f"error: cannot parse {relpath}: {error}", file=sys.stderr)
            raise SystemExit(2)
        visitor = _InvariantVisitor(relpath, rules)
        visitor.visit(tree)
        violations.extend(visitor.violations)
    return violations


def _load_baseline() -> List[str]:
    if not os.path.exists(BASELINE_PATH):
        return []
    with open(BASELINE_PATH, "r", encoding="utf-8") as handle:
        return [
            line.strip()
            for line in handle
            if line.strip() and not line.startswith("#")
        ]


def _write_baseline(violations: List[Violation]) -> None:
    lines = [
        "# Grandfathered invariant-lint call sites (tools/lint_invariants.py).",
        "# Each line is <relpath>::<rule>::<enclosing function>.  Adding a line",
        "# requires review: it asserts the call site is deliberately exempt",
        "# (display-only wall stamps, the clock anchors themselves, ...).",
    ]
    lines.extend(sorted({v.key for v in violations}))
    with open(BASELINE_PATH, "w", encoding="utf-8") as handle:
        handle.write("\n".join(lines) + "\n")


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the baseline from the current violations and exit 0",
    )
    args = parser.parse_args(argv)

    violations = collect_violations()
    if args.update_baseline:
        _write_baseline(violations)
        print(f"baseline updated: {len({v.key for v in violations})} entr(ies)")
        return 0

    baseline = set(_load_baseline())
    found_keys = {v.key for v in violations}
    fresh = [v for v in violations if v.key not in baseline]
    stale = sorted(baseline - found_keys)

    for entry in stale:
        print(f"note: stale baseline entry (violation gone -- prune it): {entry}")
    if fresh:
        print(f"{len(fresh)} new invariant violation(s):", file=sys.stderr)
        for violation in sorted(fresh, key=lambda v: (v.path, v.lineno)):
            print(f"  {violation.render()}", file=sys.stderr)
        print(
            "\nEither fix the call site or -- with review -- run "
            "`python tools/lint_invariants.py --update-baseline` and commit.",
            file=sys.stderr,
        )
        return 1
    grandfathered = len(found_keys & baseline)
    print(
        f"invariant lint clean: {grandfathered} grandfathered call site(s), "
        f"0 new, {len(stale)} stale baseline entr(ies)"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
