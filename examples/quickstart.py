"""Quickstart: specify a tiny artifact system and verify two properties.

Run with::

    python examples/quickstart.py

The example builds a one-task HAS* specification over a small database schema
(an order that is repeatedly picked, shipped and reset), then verifies

* a safety property that is violated (an order *can* reach the "shipped"
  state) -- the verifier produces a symbolic counterexample run, and
* a response property that holds (every picked order is eventually shipped).

It finally exports the specification and both properties as a versioned spec
file (``quickstart.spec.json``), which can be re-verified from the command
line::

    python -m repro verify quickstart.spec.json
"""

import os

from repro import Verifier, VerifierOptions
from repro.has.builder import ArtifactSystemBuilder
from repro.has.conditions import And, Const, Eq, Neq, NULL, Var
from repro.has.schema import DatabaseSchema
from repro.ltl import LTLFOProperty, parse_ltl
from repro.spec import load_spec, save_spec


def build_system():
    """A single-task workflow: pick an item, ship it, then start over."""
    schema = DatabaseSchema.from_dict({"ITEMS": {"price": None, "category": None}})
    builder = ArtifactSystemBuilder("quickstart", schema)
    task = builder.task("Orders")
    task.id_variable("item", "ITEMS")
    task.variable("status")
    task.internal_service(
        "Pick",
        pre=Eq(Var("status"), NULL),
        post=And(Neq(Var("item"), NULL), Eq(Var("status"), Const("picked"))),
    )
    task.internal_service(
        "Ship",
        pre=Eq(Var("status"), Const("picked")),
        post=Eq(Var("status"), Const("shipped")),
    )
    task.internal_service(
        "Reset",
        pre=Eq(Var("status"), Const("shipped")),
        post=And(Eq(Var("status"), NULL), Eq(Var("item"), NULL)),
    )
    return builder.build()


def main() -> None:
    system = build_system()
    verifier = Verifier(system, VerifierOptions(timeout_seconds=30))

    print(f"Specification: {system.name}")
    print(f"  database schema:\n    " + system.schema.describe().replace("\n", "\n    "))
    print(f"  tasks: {', '.join(system.task_names)}")
    print()

    never_shipped = LTLFOProperty(
        "Orders",
        parse_ltl("G not_shipped"),
        conditions={"not_shipped": Neq(Var("status"), Const("shipped"))},
        name="orders are never shipped",
    )
    result = verifier.verify(never_shipped)
    print(f"[1] {never_shipped.name!r}: {result.outcome.value} "
          f"({result.stats.states_explored} symbolic states, {result.stats.total_seconds:.3f}s)")
    if result.counterexample:
        print(result.counterexample.pretty())
    print()

    picked_then_shipped = LTLFOProperty(
        "Orders",
        parse_ltl("G (picked -> F shipped)"),
        conditions={
            "picked": Eq(Var("status"), Const("picked")),
            "shipped": Eq(Var("status"), Const("shipped")),
        },
        name="every picked order is eventually shipped",
    )
    result = verifier.verify(picked_then_shipped)
    print(f"[2] {picked_then_shipped.name!r}: {result.outcome.value} "
          f"({result.stats.states_explored} symbolic states, {result.stats.total_seconds:.3f}s)")
    print()

    # Export the specification (and both properties) as a versioned spec file;
    # `python -m repro verify quickstart.spec.json` re-verifies it from disk.
    spec_path = os.path.join(os.path.dirname(os.path.abspath(__file__)), "quickstart.spec.json")
    save_spec(system, spec_path, properties=[never_shipped, picked_then_shipped])
    reloaded = load_spec(spec_path)
    assert reloaded.system == system, "spec round-trip must be the identity"
    print(f"Spec exported to {spec_path} "
          f"({len(reloaded.properties)} properties; round-trip verified)")


if __name__ == "__main__":
    main()
