"""Stress test: random synthetic workflows of increasing complexity.

Run with::

    python examples/synthetic_stress.py [count]

The example regenerates a miniature version of the paper's synthetic
stress-test (Appendix D): a series of random HAS* specifications of increasing
size is generated, each is verified against the False baseline property and a
safety property, and the verification time is reported next to the workflow's
cyclomatic complexity -- the correlation the paper plots in Figure 9.
"""

import sys
import time

from repro import Verifier, VerifierOptions
from repro.benchmark.cyclomatic import cyclomatic_complexity
from repro.benchmark.properties import LTL_TEMPLATES, generate_properties
from repro.benchmark.synthetic import SyntheticConfig, synthetic_workflows


def main() -> None:
    count = int(sys.argv[1]) if len(sys.argv) > 1 else 4
    workflows = synthetic_workflows(
        count=count,
        base_config=SyntheticConfig(
            relations=3, tasks=3, variables_per_task=9, services_per_task=8
        ),
        seed=42,
        scale_range=(0.4, 1.0),
    )

    print(f"{'workflow':16s} {'cyclomatic':>10s} {'#services':>9s} "
          f"{'baseline (s)':>12s} {'safety (s)':>11s}")
    options = VerifierOptions(max_states=20_000, timeout_seconds=20)
    for workflow in workflows:
        complexity = cyclomatic_complexity(workflow)
        properties = generate_properties(workflow, seed=1, templates=LTL_TEMPLATES[:2])
        verifier = Verifier(workflow, options)
        times = []
        for ltl_property in properties:
            started = time.monotonic()
            verifier.verify(ltl_property)
            times.append(time.monotonic() - started)
        stats = workflow.statistics()
        print(f"{workflow.name:16s} {complexity:>10d} {int(stats['services']):>9d} "
              f"{times[0]:>12.3f} {times[1]:>11.3f}")


if __name__ == "__main__":
    main()
