"""The paper's running example: the order fulfillment workflow (Appendix B).

Run with::

    python examples/order_fulfillment.py

Two variants of the workflow are verified:

* the **correct** variant guards the opening of the ShipItem task with
  ``status = "Passed" and instock = "Yes"``;
* the **buggy** variant discussed in Section 2.1 of the paper moves the
  in-stock test inside ShipItem's internal services, so ShipItem can be opened
  for an out-of-stock item without Restock being called first.

The example checks the opening-guard property (satisfied by the correct
variant, violated by the buggy one, with a counterexample trace) and the full
LTL-FO property (†) with a universally quantified item id.
"""

from repro import Verifier, VerifierOptions
from repro.benchmark.realworld import order_fulfillment, order_fulfillment_buggy
from repro.has.conditions import And, Const, Eq, Var
from repro.has.types import IdType
from repro.ltl import GlobalVariable, LTLFOProperty, parse_ltl


def guard_property() -> LTLFOProperty:
    """ShipItem may only be opened when the current order's item is in stock."""
    return LTLFOProperty(
        "ProcessOrders",
        parse_ltl("G (open_ShipItem -> in_stock)"),
        conditions={"in_stock": Eq(Var("instock"), Const("Yes"))},
        name="ship-only-in-stock",
    )


def restock_before_ship_property() -> LTLFOProperty:
    """The paper's property (†), with a universally quantified item id ``i``.

    If TakeOrder returns an out-of-stock item i, then ShipItem is not opened
    for i until Restock is opened for i.  Note that because the root task can
    interleave several orders (two orders may concern the same item, one of
    them in stock), the strong-until formulation is violated even in the
    correct variant -- the verifier reports the corresponding interleaving.
    """
    formula = parse_ltl(
        "G ((close_TakeOrder & out_of_stock_item) -> "
        "((!(open_ShipItem & same_item)) U (open_Restock & same_item)))"
    )
    return LTLFOProperty(
        "ProcessOrders",
        formula,
        conditions={
            "out_of_stock_item": And(Eq(Var("item_id"), Var("i")), Eq(Var("instock"), Const("No"))),
            "same_item": Eq(Var("item_id"), Var("i")),
        },
        global_variables=[GlobalVariable("i", IdType("ITEMS"))],
        name="restock-before-ship (†)",
    )


def main() -> None:
    options = VerifierOptions(max_states=100_000, timeout_seconds=120)
    variants = [("correct", order_fulfillment()), ("buggy", order_fulfillment_buggy())]

    print("=== Opening-guard property (the Section 2.1 bug) ===")
    for label, system in variants:
        result = Verifier(system, options).verify(guard_property())
        print(f"  {label:8s}: {result.outcome.value:10s} "
              f"({result.stats.states_explored} states, {result.stats.total_seconds:.2f}s)")
        if result.violated and result.counterexample:
            services = " -> ".join(result.counterexample.services())
            print(f"           counterexample: {services}")
    print()

    print("=== Full LTL-FO property (†) with global item id ===")
    for label, system in variants:
        result = Verifier(system, options).verify(restock_before_ship_property())
        print(f"  {label:8s}: {result.outcome.value:10s} "
              f"({result.stats.states_explored} states, {result.stats.total_seconds:.2f}s)")


if __name__ == "__main__":
    main()
