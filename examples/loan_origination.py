"""Domain example: verifying a loan origination workflow.

Run with::

    python examples/loan_origination.py

The loan origination workflow (part of the "real" benchmark suite) queues
applications in an artifact relation, assesses them against the applicant's
score record in the read-only database, and decides them through an
underwriting sub-task.  The example verifies three business rules of the kind
a compliance team would state:

1. an application is never archived while the decision is still open,
2. whenever the Decide sub-task is opened the application has been assessed,
3. every application that reaches the "Received" phase is eventually decided
   (this one is *violated*: an application can be parked in the pipeline and
   never resumed -- the verifier shows how).
"""

from repro import Verifier, VerifierOptions
from repro.benchmark.realworld import loan_origination
from repro.has.conditions import Const, Eq, Neq, NULL, Or, Var
from repro.ltl import LTLFOProperty, parse_ltl


def main() -> None:
    system = loan_origination()
    verifier = Verifier(system, VerifierOptions(max_states=100_000, timeout_seconds=120))

    properties = [
        LTLFOProperty(
            "LoanDesk",
            parse_ltl("((!open_Decide) U close_Assess) | (G (!open_Decide))"),
            conditions={},
            name="no decision before the first assessment returns",
        ),
        LTLFOProperty(
            "LoanDesk",
            parse_ltl("G (open_Decide -> assessed)"),
            conditions={"assessed": Eq(Var("phase"), Const("Assessed"))},
            name="decisions only after assessment",
        ),
        LTLFOProperty(
            "LoanDesk",
            parse_ltl("G (received -> F decided)"),
            conditions={
                "received": Eq(Var("phase"), Const("Received")),
                "decided": Or(
                    Eq(Var("decision"), Const("Approved")),
                    Eq(Var("decision"), Const("Rejected")),
                ),
            },
            name="every received application is eventually decided",
        ),
    ]

    print(f"Workflow: {system.name} ({len(system.task_names)} tasks)")
    for ltl_property in properties:
        result = verifier.verify(ltl_property)
        print(f"  {ltl_property.name:55s} {result.outcome.value:10s} "
              f"({result.stats.states_explored} states, {result.stats.total_seconds:.2f}s)")
        if result.violated and result.counterexample:
            services = " -> ".join(result.counterexample.services()[:8])
            print(f"      e.g. {services} ...")


if __name__ == "__main__":
    main()
