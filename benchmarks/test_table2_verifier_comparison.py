"""Table 2: average elapsed time and failed runs per verifier.

The paper compares the Spin-based verifier (Spin-Opt), VERIFAS with artifact
relations ignored (VERIFAS-NoSet) and full VERIFAS on both workflow suites.
The expected shape: the Spin-like explicit-state baseline is slower and fails
(timeout / state budget) more often than either VERIFAS configuration, and the
artifact-relation support adds only moderate overhead.
"""

import pytest

pytestmark = [pytest.mark.benchmark, pytest.mark.slow]
from conftest import print_table

from repro.benchmark.runner import BenchmarkRunner
from repro.core.options import VerifierOptions

CONFIGURATIONS = {
    "Spin-Opt": None,  # the Spin-like explicit-state baseline
    "VERIFAS-NoSet": VerifierOptions.no_artifact_relations(),
    "VERIFAS": VerifierOptions.all_optimizations(),
}


@pytest.mark.parametrize("suite_name", ["real", "synthetic"])
def test_table2_verifier_comparison(benchmark, runner, real_suite, synthetic_suite, suite_name):
    suite = real_suite if suite_name == "real" else synthetic_suite

    def run():
        return runner.run_suite(suite, CONFIGURATIONS)

    records = benchmark.pedantic(run, rounds=1, iterations=1)
    table = BenchmarkRunner.table2(records)

    rows = [
        (
            verifier,
            f"{data['avg_seconds']:.3f}s",
            int(data["failures"]),
            int(data["runs"]),
        )
        for verifier, data in table.items()
    ]
    print_table(
        f"Table 2 ({suite_name} set): Average Elapsed Time and #Fail",
        ("Verifier", "Avg(Time)", "#Fail", "Runs"),
        rows,
    )

    # Shape checks: VERIFAS never fails more often than the Spin-like baseline,
    # and on average it is at least as fast.
    assert table["VERIFAS"]["failures"] <= table["Spin-Opt"]["failures"]
    assert table["VERIFAS-NoSet"]["failures"] <= table["Spin-Opt"]["failures"]
    if table["Spin-Opt"]["failures"] == 0:
        assert table["VERIFAS"]["avg_seconds"] <= table["Spin-Opt"]["avg_seconds"] * 2.0
