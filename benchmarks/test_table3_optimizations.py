"""Table 3: impact of the three optimizations (SP, SA, DSS).

The paper re-runs the experiments with each optimization disabled and reports
the mean and 5%-trimmed-mean speedup of enabling it.  State pruning (SP) has
by far the largest impact; static analysis (SA) and the index data structures
(DSS) give smaller, workload-dependent improvements.
"""

import pytest

pytestmark = [pytest.mark.benchmark, pytest.mark.slow]
from conftest import print_table

from repro.benchmark.runner import BenchmarkRunner
from repro.core.options import VerifierOptions

ABLATIONS = {
    "SP (state pruning)": VerifierOptions(state_pruning=False),
    "SA (static analysis)": VerifierOptions(static_analysis=False),
    "DSS (data structures)": VerifierOptions(data_structure_support=False),
}


@pytest.mark.parametrize("suite_name", ["real", "synthetic"])
def test_table3_optimization_speedups(benchmark, runner, real_suite, synthetic_suite, suite_name):
    suite = real_suite if suite_name == "real" else synthetic_suite

    def run():
        baseline_records = runner.run_suite(suite, {"VERIFAS": VerifierOptions()})
        speedups = {}
        for label, ablated_options in ABLATIONS.items():
            ablated_records = runner.run_suite(suite, {label: ablated_options})
            speedups[label] = BenchmarkRunner.table3(baseline_records, ablated_records)
        return speedups

    speedups = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = [
        (label, f"{data['mean']:.2f}x", f"{data['trimmed_mean']:.2f}x", int(data["runs"]))
        for label, data in speedups.items()
    ]
    print_table(
        f"Table 3 ({suite_name} set): Mean and Trimmed Mean (5%) of Speedups",
        ("Optimization", "Mean", "Trimmed", "Runs"),
        rows,
    )

    # Shape check: none of the optimizations should slow the verifier down by
    # more than a small factor on average (the paper reports speedups >= ~0.9x
    # even in the worst case, and large speedups for state pruning).
    for label, data in speedups.items():
        assert data["runs"] > 0
        assert data["trimmed_mean"] > 0.3, f"{label} unexpectedly harmful"
