"""Tracing/profiling overhead benchmark for ``repro.obs``.

Not a pytest file (no ``test_`` prefix): run it directly to (re)generate
``BENCH_trace.json`` at the repo root::

    PYTHONPATH=src python benchmarks/bench_trace.py

Measures, on the current machine:

* ``disabled_hooks``  -- nanoseconds per hook call on an *untraced*
  ``SearchControl`` (the shared no-op singletons every search pays when
  tracing is off), for both hook shapes: ``control.phase(name)`` (hot-loop
  accumulator) and ``with control.span(name)`` (coarse spans);
* ``search_overhead`` -- a CPU-bound Karp-Miller search verified three ways,
  interleaved best-of-N: untraced control (tracing off -- the production
  default), phase-timer only, and fully traced (PhaseTimer + TraceScope
  exporting every span).  The headline number is
  ``disabled_overhead_pct``: hook-call count from the traced run times the
  measured no-op cost, as a fraction of the untraced runtime -- the cost the
  instrumentation adds when nobody turned tracing on;
* ``span_append``     -- spans/sec through ``TraceSink`` into the SQLite
  ``spans`` table (one write transaction per span, the durable export path);
* ``phase_breakdown`` -- per-phase wall time of the traced run
  (``SearchStatistics.phase_seconds``), the numbers behind the
  ``repro trace`` waterfall's dotted accumulator lines.
"""

from __future__ import annotations

import json
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core.control import PhaseTimer, SearchControl  # noqa: E402
from repro.core.options import VerifierOptions  # noqa: E402
from repro.core.verifier import Verifier  # noqa: E402
from repro.events import EventManager, SpanRecorded, TraceSink  # noqa: E402
from repro.has.builder import ArtifactSystemBuilder  # noqa: E402
from repro.has.conditions import Const, Eq, Neq, Var  # noqa: E402
from repro.has.schema import DatabaseSchema  # noqa: E402
from repro.ltl import LTLFOProperty, parse_ltl  # noqa: E402
from repro.obs import TraceScope, Tracer, new_trace_id  # noqa: E402


def _exploding_system(variables: int = 7, constants: int = 4):
    """A system whose symbolic search is CPU-bound for a second or two:
    big enough that per-hook costs are amortised realistically, small
    enough that interleaved repetitions keep the benchmark under a minute
    (same shape as the cancellation tests' exploding fixture)."""
    schema = DatabaseSchema.from_dict({"ITEMS": {"price": None}})
    builder = ArtifactSystemBuilder("exploding", schema)
    task = builder.task("Main")
    task.id_variable("item", "ITEMS")
    for index in range(variables):
        task.variable(f"v{index}")
        for j in range(constants):
            constant = f"c{j}"
            task.internal_service(
                f"set_{index}_{constant}",
                pre=Neq(Var(f"v{index}"), Const(constant)),
                post=Eq(Var(f"v{index}"), Const(constant)),
            )
    return builder.build()


def _property():
    return LTLFOProperty(
        "Main", parse_ltl("F p"),
        {"p": Eq(Var("v0"), Const("c0"))}, name="eventually-c0",
    )


def bench_disabled_hooks(calls: int = 1_000_000) -> dict:
    """Per-call cost of the no-op hooks an untraced search goes through."""
    control = SearchControl()  # default control: _NULL_TIMER + _NULL_TRACE

    started = time.perf_counter()
    for _ in range(calls):
        with control.phase("successor-generation"):
            pass
    phase_ns = (time.perf_counter() - started) / calls * 1e9

    started = time.perf_counter()
    for _ in range(calls):
        with control.span("verify.search"):
            pass
    span_ns = (time.perf_counter() - started) / calls * 1e9

    return {
        "calls": calls,
        "phase_ns_per_call": round(phase_ns, 1),
        "span_ns_per_call": round(span_ns, 1),
    }


def _run_search(control: SearchControl) -> tuple[float, object]:
    verifier = Verifier(_exploding_system(), VerifierOptions(timeout_seconds=120))
    started = time.perf_counter()
    result = verifier.verify(_property(), control=control)
    return time.perf_counter() - started, result


def bench_search_overhead(repetitions: int = 3, noop_phase_ns: float = 0.0) -> dict:
    """Interleaved best-of-N A/B/C on the same CPU-bound search."""
    untraced, timed, traced = [], [], []
    hook_calls = 0
    exported_spans = 0
    phase_seconds: dict = {}
    for _ in range(repetitions):
        seconds, _result = _run_search(SearchControl())
        untraced.append(seconds)

        seconds, result = _run_search(SearchControl(phase_timer=PhaseTimer()))
        timed.append(seconds)

        spans: list = []
        tracer = Tracer(enabled=True, exporter=spans.append)
        scope = TraceScope(tracer, job_id="bench")
        control = SearchControl(phase_timer=PhaseTimer(), trace=scope)
        seconds, result = _run_search(control)
        traced.append(seconds)
        exported_spans = len(spans)
        phase_seconds = result.stats.phase_seconds or {}
        hook_calls = sum(int(p.get("count", 0)) for p in phase_seconds.values())

    base = min(untraced)
    best_timed = min(timed)
    best_traced = min(traced)
    return {
        "repetitions": repetitions,
        "untraced_seconds": round(base, 4),
        "phase_timer_seconds": round(best_timed, 4),
        "traced_seconds": round(best_traced, 4),
        "phase_timer_overhead_pct": round((best_timed / base - 1.0) * 100.0, 2),
        "traced_overhead_pct": round((best_traced / base - 1.0) * 100.0, 2),
        "hook_calls": hook_calls,
        "spans_exported": exported_spans,
        # What the hooks cost when tracing is OFF: the no-op per-call price
        # times how often the search actually calls them.
        "disabled_overhead_pct": round(
            hook_calls * noop_phase_ns / 1e9 / base * 100.0, 3
        ),
        "_phase_breakdown": phase_seconds,
    }


def bench_span_append(n_spans: int = 2_000) -> dict:
    """Durable export throughput: SpanRecorded -> TraceSink -> SQLite."""
    from repro.server.store import JobStore

    with tempfile.TemporaryDirectory() as tmp:
        store = JobStore(Path(tmp) / "bench.db")
        manager = EventManager()
        manager.add_sink(TraceSink(store))
        trace_id = new_trace_id()
        started = time.perf_counter()
        for index in range(n_spans):
            manager.fire(SpanRecorded(
                job_id="bench",
                trace_id=trace_id,
                data={
                    "trace_id": trace_id,
                    "span_id": f"{index:016x}",
                    "name": "bench.span",
                    "start_time": float(index),
                    "duration": 0.001,
                    "status": "ok",
                    "attrs": {"i": index},
                },
            ))
        elapsed = time.perf_counter() - started
        persisted = store.span_count(trace_id)
        store.close()
    return {"spans": n_spans, "persisted": persisted,
            "seconds": round(elapsed, 4),
            "spans_per_sec": round(n_spans / elapsed)}


def main() -> None:
    hooks = bench_disabled_hooks()
    overhead = bench_search_overhead(noop_phase_ns=hooks["phase_ns_per_call"])
    breakdown = overhead.pop("_phase_breakdown")
    report = {
        "generated": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "python": sys.version.split()[0],
        "disabled_hooks": hooks,
        "search_overhead": overhead,
        "span_append": bench_span_append(),
        "phase_breakdown": {
            name: {"seconds": round(data["seconds"], 4),
                   "count": int(data["count"])}
            for name, data in sorted(
                breakdown.items(), key=lambda kv: -kv[1]["seconds"]
            )
        },
    }
    output = REPO_ROOT / "BENCH_trace.json"
    output.write_text(json.dumps(report, indent=2) + "\n")
    print(json.dumps(report, indent=2))


if __name__ == "__main__":
    main()
