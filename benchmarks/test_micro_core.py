"""Micro-benchmarks of the verifier's core building blocks.

These are not part of the paper's evaluation tables; they measure the hot
operations of the symbolic search (condition evaluation on partial isomorphism
types, coverage tests, a full small verification) so that performance
regressions in the core data structures are visible.
"""

import pytest

pytestmark = [pytest.mark.benchmark, pytest.mark.slow]

from repro import Verifier, VerifierOptions
from repro.benchmark.realworld import order_fulfillment
from repro.core.coverage import covers_preceq
from repro.core.expressions import ConstExpr, ExpressionUniverse, NavExpr
from repro.core.flatten import evaluate_condition
from repro.core.isotypes import EQ, NEQ, empty_type
from repro.core.psi import PSI
from repro.has.conditions import And, Const, Eq, Neq, RelationAtom, Var
from repro.has.schema import DatabaseSchema
from repro.has.types import IdType, VALUE
from repro.ltl.buchi import ltl_to_buchi
from repro.ltl.ltlfo import LTLFOProperty
from repro.ltl.parser import parse_ltl


@pytest.fixture(scope="module")
def navigation_universe():
    schema = DatabaseSchema.from_dict(
        {
            "CUSTOMERS": {"name": None, "address": None, "record": "CREDIT_RECORD"},
            "CREDIT_RECORD": {"status": None},
        }
    )
    universe = ExpressionUniverse(
        schema,
        {
            "cust": IdType("CUSTOMERS"),
            "other": IdType("CUSTOMERS"),
            "rec": IdType("CREDIT_RECORD"),
            "status": VALUE,
        },
    )
    return schema, universe


def test_bench_condition_evaluation(benchmark, navigation_universe):
    schema, universe = navigation_universe
    condition = And(
        RelationAtom("CUSTOMERS", [Var("cust"), Var("status"), Var("status"), Var("rec")]),
        RelationAtom("CREDIT_RECORD", [Var("rec"), Const("Good")]),
    )
    tau = empty_type(universe)
    benchmark(lambda: evaluate_condition(tau, condition, universe, schema))


def test_bench_type_extension_and_entailment(benchmark, navigation_universe):
    _schema, universe = navigation_universe
    base = empty_type(universe).extend(
        [
            (NavExpr("cust"), NavExpr("other"), EQ),
            (NavExpr("status"), ConstExpr("Good"), EQ),
            (NavExpr("rec"), ConstExpr(None), NEQ),
        ]
    )
    small = empty_type(universe).extend([(NavExpr("cust"), NavExpr("other"), EQ)])

    def work():
        extended = base.extend([(NavExpr("cust", ("record", "status")), ConstExpr("Good"), EQ)])
        return extended.entails(small)

    benchmark(work)


def test_bench_coverage_check(benchmark, navigation_universe):
    _schema, universe = navigation_universe
    loose = empty_type(universe)
    tight = empty_type(universe).extend([(NavExpr("status"), ConstExpr("Good"), EQ)])
    covered = PSI.make(tight, {("S", tight): 2, ("S", loose): 1})
    covering = PSI.make(loose, {("S", loose): 4})
    benchmark(lambda: covers_preceq(covered, covering))


def test_bench_buchi_construction(benchmark):
    formula = parse_ltl("((!phi) U psi) & G (phi -> X ((!phi) U psi))").negated()
    benchmark(lambda: ltl_to_buchi(formula))


def test_bench_order_fulfillment_guard_property(benchmark):
    system = order_fulfillment()
    ltl_property = LTLFOProperty(
        "ProcessOrders",
        parse_ltl("G (open_ShipItem -> in_stock)"),
        conditions={"in_stock": Eq(Var("instock"), Const("Yes"))},
        name="ship-only-in-stock",
    )
    verifier = Verifier(system, VerifierOptions(max_states=20_000, timeout_seconds=30))

    def verify():
        result = verifier.verify(ltl_property)
        assert result.satisfied
        return result

    benchmark.pedantic(verify, rounds=3, iterations=1)
