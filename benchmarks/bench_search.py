"""Core-search benchmark: state counts, successor-loop timing, and the
in-search dataflow-pruning speedup.

Not a pytest file (no ``test_`` prefix): run it directly to (re)generate
``BENCH_search.json`` at the repo root::

    PYTHONPATH=src python benchmarks/bench_search.py

Measures, on the current machine:

* ``corpus_search``    -- per real-workflow spec: explored states, successor
  computations, and the main-search wall time with both pruning layers on
  vs both off, with a verdict AND state-count parity assert per property
  (the sweep fails loudly if either pass ever changes the explored space);
* ``pinned_dead_family`` -- a generated family whose global precondition
  pins ``mode="basic"`` while N services and children require
  ``mode="premium"``.  Each gate is satisfiable in isolation, so the PR-9
  static pass keeps them all; only constant propagation proves them dead.
  The sweep shows the per-state successor-loop cost of the dead gates --
  and hence the dataflow speedup -- growing with N.  The run asserts a
  >= 1.1x successor-loop speedup at the widest point.
"""

from __future__ import annotations

import json
import statistics
import sys
import time
from datetime import datetime, timezone
from itertools import product
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.benchmark.properties import LTL_TEMPLATES, generate_properties  # noqa: E402
from repro.benchmark.realworld import REAL_WORKFLOW_FACTORIES  # noqa: E402
from repro.core.options import VerifierOptions  # noqa: E402
from repro.core.verifier import Verifier  # noqa: E402
from repro.has.builder import ArtifactSystemBuilder  # noqa: E402
from repro.has.conditions import NULL, And, Const, Eq, Neq, Var  # noqa: E402
from repro.has.schema import DatabaseSchema  # noqa: E402
from repro.ltl import LTLFOProperty, parse_ltl  # noqa: E402

BUDGET = dict(max_states=800, max_repeated_states=800, timeout_seconds=20)


def _options(static: bool, dataflow: bool):
    return VerifierOptions(
        static_pruning=static, dataflow_pruning=dataflow, **BUDGET
    )


def _verify(system, ltl_property, options, repeats: int = 3, warmup: bool = False):
    """(median search seconds, median total seconds, last result)."""
    if warmup:  # absorb first-run import/cache costs outside the timings
        Verifier(system, options).verify(ltl_property)
    search_s, total_s = [], []
    for _ in range(repeats):
        verifier = Verifier(system, options)
        start = time.perf_counter()
        result = verifier.verify(ltl_property)
        total_s.append(time.perf_counter() - start)
        search_s.append(result.stats.search_seconds)
    return statistics.median(search_s), statistics.median(total_s), result


# ------------------------------------------------------------------ corpora


def bench_corpus_search():
    """Both-on vs both-off over the real-workflow corpus, with a full
    2x2 verdict/state-count parity assert per property."""
    per_spec = {}
    compared = 0
    for name, factory in sorted(REAL_WORKFLOW_FACTORIES.items()):
        system = factory()
        properties = list(generate_properties(system, templates=LTL_TEMPLATES))
        on_search, off_search, states, transitions = [], [], [], []
        for ltl_property in properties:
            results, timings = {}, {}
            for static, dataflow in product((True, False), repeat=2):
                search_s, _, result = _verify(
                    system, ltl_property, _options(static, dataflow), repeats=1
                )
                results[(static, dataflow)] = result
                timings[(static, dataflow)] = search_s
            baseline = results[(False, False)]
            for combo, result in sorted(results.items()):
                assert result.outcome == baseline.outcome, (
                    f"{name}/{ltl_property.name} {combo}:"
                    f" {result.outcome} != {baseline.outcome}"
                )
                assert (
                    result.stats.states_explored == baseline.stats.states_explored
                ), f"{name}/{ltl_property.name} {combo}"
            compared += 1
            on_search.append(timings[(True, True)])
            off_search.append(timings[(False, False)])
            on_result = results[(True, True)]
            states.append(on_result.stats.states_explored)
            transitions.append(on_result.stats.transitions_computed)
        per_spec[name] = {
            "properties": len(properties),
            "states_explored": states,
            "transitions_computed": transitions,
            "search_ms_both_on": round(sum(on_search) * 1000, 3),
            "search_ms_both_off": round(sum(off_search) * 1000, 3),
        }
    return {"parity_checks": compared, "per_spec": per_spec}


def _pinned_family(dead_services: int, dead_children: int, chain: int = 8):
    """A live *chain*-state loop under a precondition that pins
    ``mode="basic"``, plus premium-gated services/children that only the
    dataflow pass can prove dead (each gate is satisfiable in isolation)."""
    schema = DatabaseSchema.from_dict({"ITEMS": {"price": None}})
    builder = ArtifactSystemBuilder(
        f"pinned-s{dead_services}-c{dead_children}",
        schema,
        global_precondition=And(
            And(Eq(Var("mode"), Const("basic")), Eq(Var("status"), NULL)),
            Eq(Var("item"), NULL),
        ),
    )
    root = builder.task("Main")
    root.id_variable("item", "ITEMS")
    root.variable("status")
    root.variable("mode")
    previous = NULL
    for index in range(chain):
        root.internal_service(
            f"step{index}",
            pre=Eq(Var("status"), previous),
            post=Eq(Var("status"), Const(f"stage{index}")),
            propagated=["mode"],
        )
        previous = Const(f"stage{index}")
    for index in range(dead_services):
        root.internal_service(
            f"premium{index}",
            pre=Eq(Var("mode"), Const("premium")),
            post=Eq(Var("status"), Const(f"upgraded{index}")),
            propagated=["mode"],
        )
    for index in range(dead_children):
        child = builder.task(f"Premium{index}", parent="Main")
        child.variable("cstatus")
        child.internal_service(
            f"cgo{index}",
            pre=Eq(Var("cstatus"), NULL),
            post=Eq(Var("cstatus"), Const("x")),
        )
        child.opening(pre=Eq(Var("mode"), Const("premium")))
    return builder.build()


def bench_pinned_dead_family():
    report = {}
    widest_speedup = None
    for width in (4, 8, 16):
        system = _pinned_family(dead_services=width, dead_children=width // 2)
        # A globally-true safety property forces a full sweep of the live
        # space, so every live state pays the dead premium gates.
        ltl_property = LTLFOProperty(
            "Main",
            parse_ltl("G p"),
            {"p": Neq(Var("status"), Const("zzz"))},
            name="full-sweep",
        )
        rows = {}
        for label, static, dataflow in (
            ("both_on", True, True),
            ("static_only", True, False),
            ("both_off", False, False),
        ):
            search_s, total_s, result = _verify(
                system, ltl_property, _options(static, dataflow), repeats=5,
                warmup=True,
            )
            rows[label] = {
                "search_ms": round(search_s * 1000, 3),
                "total_ms": round(total_s * 1000, 3),
                "states": result.stats.states_explored,
                "outcome": result.outcome.value,
            }
        for label in ("static_only", "both_off"):
            assert rows[label]["outcome"] == rows["both_on"]["outcome"]
            assert rows[label]["states"] == rows["both_on"]["states"]
        on_ms = rows["both_on"]["search_ms"]
        report[str(width)] = {
            **rows,
            "speedup_vs_both_off": round(rows["both_off"]["search_ms"] / on_ms, 2)
            if on_ms
            else None,
            "speedup_vs_static_only": round(
                rows["static_only"]["search_ms"] / on_ms, 2
            )
            if on_ms
            else None,
        }
        widest_speedup = report[str(width)]["speedup_vs_static_only"]
    assert widest_speedup is not None and widest_speedup >= 1.1, (
        f"dataflow successor-loop speedup regressed: {widest_speedup}x < 1.1x"
    )
    return report


def main() -> None:
    report = {
        "generated": datetime.now(timezone.utc).strftime("%Y-%m-%dT%H:%M:%SZ"),
        "python": sys.version.split()[0],
        "corpus_search": bench_corpus_search(),
        "pinned_dead_family": bench_pinned_dead_family(),
    }
    output = REPO_ROOT / "BENCH_search.json"
    output.write_text(json.dumps(report, indent=2) + "\n")
    print(json.dumps(report, indent=2))


if __name__ == "__main__":
    main()
