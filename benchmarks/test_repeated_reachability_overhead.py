"""Section 4.2 (text): overhead of the repeated-reachability module.

The paper measures the cost of computing repeatedly-reachable states (needed
for full LTL-FO semantics over infinite runs) by re-running the experiments
with that module turned off, and reports an average overhead of roughly 19% on
the real set and 14% on the synthetic set.  This benchmark performs the same
comparison: full verifier vs reachability-only verifier.
"""

import pytest

pytestmark = [pytest.mark.benchmark, pytest.mark.slow]
from conftest import print_table

from repro.benchmark.runner import BenchmarkRunner
from repro.core.options import VerifierOptions


@pytest.mark.parametrize("suite_name", ["real", "synthetic"])
def test_repeated_reachability_overhead(benchmark, runner, real_suite, synthetic_suite, suite_name):
    suite = real_suite if suite_name == "real" else synthetic_suite

    def run():
        with_module = runner.run_suite(suite, {"full": VerifierOptions()})
        without_module = runner.run_suite(
            suite, {"no-rr": VerifierOptions(check_repeated_reachability=False)}
        )
        return with_module, without_module

    with_module, without_module = benchmark.pedantic(run, rounds=1, iterations=1)
    overhead = BenchmarkRunner.overhead(with_module, without_module)

    print_table(
        f"Repeated-reachability overhead ({suite_name} set)",
        ("Configuration", "Avg(Time)"),
        [
            ("full verifier", f"{BenchmarkRunner.table2(with_module)['full']['avg_seconds']:.3f}s"),
            ("reachability only", f"{BenchmarkRunner.table2(without_module)['no-rr']['avg_seconds']:.3f}s"),
            ("overhead", f"{overhead:.1f}%"),
        ],
    )

    # Shape check: the overhead stays moderate (the paper reports 13-19%; we
    # allow a generous band because the scaled-down workload is noisier).
    assert overhead < 150.0
