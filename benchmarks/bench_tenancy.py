"""Tenancy benchmark: auth overhead, limiter cost, fair-share claim latency.

Not a pytest file (no ``test_`` prefix): run it directly to (re)generate
``BENCH_tenancy.json`` at the repo root::

    PYTHONPATH=src python benchmarks/bench_tenancy.py

Measures, on the current machine:

* ``auth_overhead``   -- p50/p95 latency of ``GET /v1/jobs`` against the
  same server with auth off vs on (bearer key resolved through the
  registry's TTL cache): the per-request cost of the front door;
* ``token_bucket``    -- ``TenantRateLimiter.check`` calls/sec for an
  unlimited tenant and for a rate-limited one (the submit hot path);
* ``key_resolve``     -- API-key resolutions/sec through the TTL cache vs
  uncached (TTL 0, a salted-hash verify plus a store read every call);
* ``fair_share_claim`` -- ``claim_next`` drains/sec of an equal backlog for
  a single anonymous tenant (FIFO path) vs eight weighted tenants (stride
  scheduling across ``claim_shares``).
"""

from __future__ import annotations

import json
import statistics
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.client import VerifasClient  # noqa: E402
from repro.core.options import VerifierOptions  # noqa: E402
from repro.has.builder import ArtifactSystemBuilder  # noqa: E402
from repro.has.conditions import NULL, And, Const, Eq, Neq, Var  # noqa: E402
from repro.has.schema import DatabaseSchema  # noqa: E402
from repro.ltl import LTLFOProperty, parse_ltl  # noqa: E402
from repro.server import VerificationServer  # noqa: E402
from repro.server.store import JobStore  # noqa: E402
from repro.service import VerificationJob  # noqa: E402
from repro.spec import dump_property, dump_system  # noqa: E402
from repro.tenancy import TenantRateLimiter, TenantRegistry  # noqa: E402


def _tiny_system():
    schema = DatabaseSchema.from_dict({"ITEMS": {"price": None}})
    builder = ArtifactSystemBuilder("tiny", schema)
    task = builder.task("Main")
    task.id_variable("item", "ITEMS")
    task.variable("status")
    task.internal_service(
        "pick",
        pre=Eq(Var("status"), NULL),
        post=And(Neq(Var("item"), NULL), Eq(Var("status"), Const("picked"))),
    )
    task.internal_service(
        "ship",
        pre=Eq(Var("status"), Const("picked")),
        post=Eq(Var("status"), Const("shipped")),
    )
    task.internal_service(
        "reset",
        pre=Eq(Var("status"), Const("shipped")),
        post=And(Eq(Var("status"), NULL), Eq(Var("item"), NULL)),
    )
    return builder.build()


def _property():
    return LTLFOProperty(
        "Main", parse_ltl("F p"),
        {"p": Eq(Var("status"), Const("picked"))}, name="eventually-picked",
    )


def _distinct_jobs(system, count, start=0):
    prop = _property()
    return [
        VerificationJob(
            system_dict=dump_system(system),
            property_dict=dump_property(prop),
            options_dict=VerifierOptions(max_states=1000 + start + i).as_dict(),
        )
        for i in range(count)
    ]


def _latency_stats(samples_ms):
    samples_ms = sorted(samples_ms)
    return {
        "p50_ms": round(statistics.median(samples_ms), 3),
        "p95_ms": round(samples_ms[int(0.95 * (len(samples_ms) - 1))], 3),
    }


def bench_auth_overhead(requests: int = 200) -> dict:
    """GET /v1/jobs latency, auth off vs on (warm registry cache)."""

    def run(auth: bool) -> dict:
        with tempfile.TemporaryDirectory() as tmp:
            server = VerificationServer(
                store_path=Path(tmp) / "bench.db", port=0, workers=0,
                quiet=True, auth_enabled=auth,
            )
            server.start()
            try:
                api_key = None
                if auth:
                    _, api_key = server.tenants.create("bench")
                client = VerifasClient(server.url, api_key=api_key)
                client.jobs()  # warm the connection path and the key cache
                samples = []
                for _ in range(requests):
                    started = time.perf_counter()
                    client.jobs()
                    samples.append((time.perf_counter() - started) * 1000.0)
            finally:
                server.stop()
        return _latency_stats(samples)

    off = run(auth=False)
    on = run(auth=True)
    return {
        "requests": requests,
        "auth_off": off,
        "auth_on": on,
        "p50_overhead_ms": round(on["p50_ms"] - off["p50_ms"], 3),
    }


def bench_token_bucket(n_checks: int = 200_000) -> dict:
    registry_free = []
    with tempfile.TemporaryDirectory() as tmp:
        store = JobStore(Path(tmp) / "bench.db")
        registry = TenantRegistry(store)
        unlimited, _ = registry.create("unlimited")
        limited, _ = registry.create("limited", rate_limit=1e9, burst=1e9)
        limiter = TenantRateLimiter()
        for tenant in (unlimited, limited):
            started = time.perf_counter()
            for _ in range(n_checks):
                limiter.check(tenant)
            registry_free.append(time.perf_counter() - started)
        store.close()
    return {
        "checks": n_checks,
        "unlimited_per_sec": round(n_checks / registry_free[0]),
        "limited_per_sec": round(n_checks / registry_free[1]),
    }


def bench_key_resolve(n_resolves: int = 2_000) -> dict:
    with tempfile.TemporaryDirectory() as tmp:
        store = JobStore(Path(tmp) / "bench.db")
        cached = TenantRegistry(store, cache_ttl_seconds=60.0)
        _, api_key = cached.create("bench")
        uncached = TenantRegistry(store, cache_ttl_seconds=0.0)

        results = {}
        for label, registry in (("cached", cached), ("uncached", uncached)):
            registry.resolve(api_key)  # prime
            started = time.perf_counter()
            for _ in range(n_resolves):
                assert registry.resolve(api_key) is not None
            elapsed = time.perf_counter() - started
            results[label + "_per_sec"] = round(n_resolves / elapsed)
        store.close()
    results["resolves"] = n_resolves
    return results


def bench_fair_share_claim(backlog: int = 400, tenants: int = 8) -> dict:
    """Drain an equal backlog through claim_next: one anonymous lane (the
    FIFO fast path) vs *tenants* weighted lanes (stride scheduling)."""
    system = _tiny_system()

    def drain(n_tenants: int) -> dict:
        with tempfile.TemporaryDirectory() as tmp:
            store = JobStore(Path(tmp) / "bench.db")
            if n_tenants > 1:
                registry = TenantRegistry(store)
                names = [f"t{i}" for i in range(n_tenants)]
                for index, name in enumerate(names):
                    registry.create(name, weight=float(index + 1), tenant_id=name)
                per_tenant = backlog // n_tenants
                start = 0
                for name in names:
                    for job in _distinct_jobs(system, per_tenant, start=start):
                        store.submit(job, tenant_id=name)
                        start += 1
                total = per_tenant * n_tenants
            else:
                for job in _distinct_jobs(system, backlog):
                    store.submit(job)
                total = backlog
            started = time.perf_counter()
            claimed = 0
            while store.claim_next() is not None:
                claimed += 1
            elapsed = time.perf_counter() - started
            store.close()
        assert claimed == total, f"claimed {claimed} of {total}"
        return {
            "jobs": total,
            "seconds": round(elapsed, 4),
            "claims_per_sec": round(total / elapsed),
        }

    single = drain(1)
    weighted = drain(tenants)
    return {"single_tenant": single, f"weighted_{tenants}_tenants": weighted}


def main() -> None:
    report = {
        "generated": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "python": sys.version.split()[0],
        "auth_overhead": bench_auth_overhead(),
        "token_bucket": bench_token_bucket(),
        "key_resolve": bench_key_resolve(),
        "fair_share_claim": bench_fair_share_claim(),
    }
    output = REPO_ROOT / "BENCH_tenancy.json"
    output.write_text(json.dumps(report, indent=2) + "\n")
    print(json.dumps(report, indent=2))


if __name__ == "__main__":
    main()
