"""Static-analysis benchmark: analyzer latency, pruning speedup, submit cost.

Not a pytest file (no ``test_`` prefix): run it directly to (re)generate
``BENCH_analysis.json`` at the repo root::

    PYTHONPATH=src python benchmarks/bench_analysis.py

Measures, on the current machine:

* ``analyzer_latency`` -- full ``analyze(system, properties)`` wall time
  over the real-workflow benchmark corpus (p50/p95 per spec) and over
  synthetic systems of growing size: the cost a ``lint`` run or a submit
  pays per spec;
* ``pruning_speedup``  -- verification wall time with the pre-search
  pruning pass on vs off, on a system carrying statically-dead subtrees,
  and the trivial-property short-circuit vs the full search it replaces;
* ``submit_overhead``  -- p50/p95 ``POST /v1/jobs`` latency against a live
  in-process server (the analysis gate is on that path) next to the
  analysis-only time for the same payload: how much of a submit the
  analyzer accounts for.
"""

from __future__ import annotations

import json
import statistics
import sys
import tempfile
import time
from datetime import datetime, timezone
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.analysis import analyze  # noqa: E402
from repro.benchmark.properties import LTL_TEMPLATES, generate_properties  # noqa: E402
from repro.benchmark.realworld import REAL_WORKFLOW_FACTORIES  # noqa: E402
from repro.benchmark.synthetic import SyntheticConfig, generate_synthetic_workflow  # noqa: E402
from repro.client import VerifasClient  # noqa: E402
from repro.core.options import VerifierOptions  # noqa: E402
from repro.core.verifier import Verifier  # noqa: E402
from repro.has.builder import ArtifactSystemBuilder  # noqa: E402
from repro.has.conditions import NULL, And, Const, Eq, Neq, Var  # noqa: E402
from repro.has.schema import DatabaseSchema  # noqa: E402
from repro.ltl import LTLFOProperty, parse_ltl  # noqa: E402
from repro.server import VerificationServer  # noqa: E402
from repro.spec import dump_property, dump_system  # noqa: E402


def _percentiles(samples_ms):
    ordered = sorted(samples_ms)
    return {
        "p50_ms": round(statistics.median(ordered), 4),
        "p95_ms": round(ordered[int(len(ordered) * 0.95) - 1], 4),
    }


# ------------------------------------------------------------------ corpora


def _corpus():
    for name, factory in sorted(REAL_WORKFLOW_FACTORIES.items()):
        system = factory()
        properties = list(generate_properties(system, templates=LTL_TEMPLATES))
        yield name, system, properties


def _system_with_dead_children(children: int, chain: int = 2):
    """A *chain*-state live root loop plus *children* statically-dead
    subtrees.  Every live state pays one symbolic opening attempt per dead
    child when the pruning pass is off."""
    schema = DatabaseSchema.from_dict({"ITEMS": {"price": None}})
    builder = ArtifactSystemBuilder(f"dead{children}", schema)
    root = builder.task("Main")
    root.id_variable("item", "ITEMS")
    root.variable("status")
    previous = NULL
    for index in range(chain):
        root.internal_service(
            f"step{index}",
            pre=Eq(Var("status"), previous),
            post=Eq(Var("status"), Const(f"stage{index}")),
        )
        previous = Const(f"stage{index}")
    for index in range(children):
        child = builder.task(f"Dead{index}", parent="Main")
        child.variable("cstatus")
        child.internal_service(
            f"cgo{index}",
            pre=Eq(Var("cstatus"), NULL),
            post=Eq(Var("cstatus"), Const("x")),
        )
        child.opening(
            pre=And(Eq(Var("status"), Const("a")), Eq(Var("status"), Const("b")))
        )
    return builder.build()


# ---------------------------------------------------------------- sections


def bench_analyzer_latency():
    corpus_ms = []
    per_spec = {}
    for name, system, properties in _corpus():
        samples = []
        for _ in range(20):
            start = time.perf_counter()
            analyze(system, properties)
            samples.append((time.perf_counter() - start) * 1000)
        per_spec[name] = _percentiles(samples)
        corpus_ms.extend(samples)

    synthetic = {}
    for label, tasks, services in (("small", 2, 3), ("medium", 4, 6), ("large", 8, 10)):
        config = SyntheticConfig(
            relations=3, tasks=tasks, variables_per_task=6,
            services_per_task=services, seed=7,
        )
        system = generate_synthetic_workflow(config)
        properties = list(generate_properties(system, seed=7))
        samples = []
        for _ in range(20):
            start = time.perf_counter()
            analyze(system, properties)
            samples.append((time.perf_counter() - start) * 1000)
        synthetic[label] = {
            "tasks": len(system.task_names),
            "properties": len(properties),
            **_percentiles(samples),
        }
    return {
        "corpus_specs": len(per_spec),
        "corpus": _percentiles(corpus_ms),
        "per_spec_p50_ms": {k: v["p50_ms"] for k, v in sorted(per_spec.items())},
        "synthetic": synthetic,
    }


def bench_pruning_speedup():
    def _verify_seconds(system, ltl_property, pruning: bool, repeats: int = 5):
        samples = []
        for _ in range(repeats):
            verifier = Verifier(system, VerifierOptions(static_pruning=pruning))
            start = time.perf_counter()
            result = verifier.verify(ltl_property)
            samples.append(time.perf_counter() - start)
        return statistics.median(samples), result

    # A statically-dead child contributes no *states* either way (its
    # opening guard can never fire); what pruning removes is the per-state
    # symbolic opening attempt against that guard.  The sweep shows that
    # cost -- and hence the speedup -- growing with the dead width.
    report = {"dead_subtrees": {}}
    for children in (2, 6, 12):
        system = _system_with_dead_children(children, chain=8)
        # A globally-true safety property forces a full sweep of the live
        # space, so every live state pays the dead-opening attempts.
        ltl_property = LTLFOProperty(
            "Main",
            parse_ltl("G p"),
            {"p": Neq(Var("status"), Const("zzz"))},
            name="full-sweep",
        )
        on_s, on_result = _verify_seconds(system, ltl_property, True)
        off_s, off_result = _verify_seconds(system, ltl_property, False)
        assert on_result.outcome == off_result.outcome
        assert on_result.stats.states_explored == off_result.stats.states_explored
        report["dead_subtrees"][str(children)] = {
            "outcome": on_result.outcome.value,
            "states": on_result.stats.states_explored,
            "pruned_ms": round(on_s * 1000, 3),
            "unpruned_ms": round(off_s * 1000, 3),
            "speedup": round(off_s / on_s, 2) if on_s else None,
        }

    system = _system_with_dead_children(6)
    trivial = LTLFOProperty("Main", parse_ltl("true"), {}, name="trivial")
    on_s, on_result = _verify_seconds(system, trivial, True)
    off_s, off_result = _verify_seconds(system, trivial, False)
    report["trivial_short_circuit"] = {
        "short_circuit_ms": round(on_s * 1000, 3),
        "full_pipeline_ms": round(off_s * 1000, 3),
        "note": "both explore 0 states; the saving is the automaton/search setup",
    }
    return report


def bench_submit_overhead(requests: int = 150):
    factory = REAL_WORKFLOW_FACTORIES[sorted(REAL_WORKFLOW_FACTORIES)[0]]
    system = factory()
    properties = list(generate_properties(system, templates=LTL_TEMPLATES))[:3]
    system_dict = dump_system(system)
    property_dicts = [dump_property(p) for p in properties]

    analysis_ms = []
    for _ in range(requests):
        start = time.perf_counter()
        analyze(system, properties)
        analysis_ms.append((time.perf_counter() - start) * 1000)

    with tempfile.TemporaryDirectory() as tmp:
        server = VerificationServer(
            store_path=Path(tmp) / "jobs.db", port=0, workers=0
        )
        server.start()
        try:
            client = VerifasClient(server.url)
            submit_ms = []
            for _ in range(requests):
                start = time.perf_counter()
                client.submit(system_dict, property_dicts)
                submit_ms.append((time.perf_counter() - start) * 1000)
        finally:
            server.stop()
    return {
        "requests": requests,
        "properties_per_submit": len(property_dicts),
        "submit": _percentiles(submit_ms),
        "analysis_only": _percentiles(analysis_ms),
    }


def main() -> None:
    report = {
        "generated": datetime.now(timezone.utc).strftime("%Y-%m-%dT%H:%M:%SZ"),
        "python": sys.version.split()[0],
        "analyzer_latency": bench_analyzer_latency(),
        "pruning_speedup": bench_pruning_speedup(),
        "submit_overhead": bench_submit_overhead(),
    }
    output = REPO_ROOT / "BENCH_analysis.json"
    output.write_text(json.dumps(report, indent=2) + "\n")
    print(json.dumps(report, indent=2))


if __name__ == "__main__":
    main()
