"""Table 4: average verification time per class of LTL-FO properties.

The paper reports, for each of the 12 LTL templates (the False baseline plus
safety / liveness / fairness properties), the average verification time on
both workflow suites, and observes that every class stays within a small
factor of the False baseline.
"""

import pytest

pytestmark = [pytest.mark.benchmark, pytest.mark.slow]
from conftest import TEMPLATES, print_table

from repro.benchmark.properties import LTL_TEMPLATES
from repro.benchmark.runner import BenchmarkRunner
from repro.core.options import VerifierOptions


@pytest.mark.parametrize("suite_name", ["real", "synthetic"])
def test_table4_ltl_property_classes(benchmark, runner, real_suite, synthetic_suite, suite_name):
    suite = real_suite if suite_name == "real" else synthetic_suite

    def run():
        return runner.run_suite(suite, {"VERIFAS": VerifierOptions()})

    records = benchmark.pedantic(run, rounds=1, iterations=1)
    table = BenchmarkRunner.table4(records)

    ordered = [t for t in LTL_TEMPLATES if t.name in table]
    rows = [
        (
            template.formula_text or "False",
            template.category,
            f"{table[template.name]['avg_seconds']:.3f}s",
            int(table[template.name]["runs"]),
        )
        for template in ordered
    ]
    print_table(
        f"Table 4 ({suite_name} set): Average Time per LTL Template",
        ("Template", "Class", "Avg(Time)", "Runs"),
        rows,
    )

    assert "false" in table, "the False baseline template must be present"
    baseline = table["false"]["avg_seconds"]
    non_failing = [
        data["avg_seconds"] for name, data in table.items() if name != "false"
    ]
    # Shape check (loose version of the paper's observation): property classes
    # stay within a moderate factor of the baseline on average.
    if baseline > 0 and non_failing:
        assert min(non_failing) <= baseline * 25
