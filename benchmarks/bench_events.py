"""Event-subsystem benchmark: bus throughput, wakeup latency, push-vs-poll.

Not a pytest file (no ``test_`` prefix): run it directly to (re)generate
``BENCH_events.json`` at the repo root::

    PYTHONPATH=src python benchmarks/bench_events.py

Measures, on the current machine:

* ``bus``           -- events/sec through ``EventManager.fire`` with the
  metrics sink attached (the non-durable fast path every event takes);
* ``durable_log``   -- events/sec when the store sink also appends each
  event to the SQLite per-job log (one write transaction per event);
* ``long_poll_wakeup`` -- latency from ``store.append_event`` commit to a
  long-polling client receiving the event over HTTP, p50/p95 over N samples
  (the in-process broker wakeup path);
* ``requests_100_events`` -- HTTP requests needed to fully observe a live
  job emitting 100 progress events, push (long-poll) vs the polling
  baseline client.
"""

from __future__ import annotations

import json
import statistics
import sys
import tempfile
import threading
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.client import VerifasClient  # noqa: E402
from repro.events import EventManager, MetricsSink, SearchEvent, StoreSink  # noqa: E402
from repro.has.builder import ArtifactSystemBuilder  # noqa: E402
from repro.has.conditions import NULL, And, Const, Eq, Neq, Var  # noqa: E402
from repro.has.schema import DatabaseSchema  # noqa: E402
from repro.ltl import LTLFOProperty, parse_ltl  # noqa: E402
from repro.server import VerificationServer  # noqa: E402
from repro.server.metrics import ServerMetrics  # noqa: E402
from repro.service import VerificationJob  # noqa: E402
from repro.spec import dump_property, dump_system  # noqa: E402


def _tiny_system():
    """The pick/ship/reset single-task system the e2e tests also use."""
    schema = DatabaseSchema.from_dict({"ITEMS": {"price": None}})
    builder = ArtifactSystemBuilder("tiny", schema)
    task = builder.task("Main")
    task.id_variable("item", "ITEMS")
    task.variable("status")
    task.internal_service(
        "pick",
        pre=Eq(Var("status"), NULL),
        post=And(Neq(Var("item"), NULL), Eq(Var("status"), Const("picked"))),
    )
    task.internal_service(
        "ship",
        pre=Eq(Var("status"), Const("picked")),
        post=Eq(Var("status"), Const("shipped")),
    )
    task.internal_service(
        "reset",
        pre=Eq(Var("status"), Const("shipped")),
        post=And(Eq(Var("status"), NULL), Eq(Var("item"), NULL)),
    )
    return builder.build()


def _property():
    return LTLFOProperty(
        "Main", parse_ltl("F p"),
        {"p": Eq(Var("status"), Const("picked"))}, name="eventually-picked",
    )


class CountingClient(VerifasClient):
    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.request_count = 0

    def _request(self, method, path, payload=None, timeout=None):
        self.request_count += 1
        return super()._request(method, path, payload, timeout=timeout)


def bench_bus_throughput(n_events: int = 50_000) -> dict:
    manager = EventManager()
    manager.add_sink(MetricsSink(ServerMetrics()))
    event = SearchEvent(job_id="bench", data={"states_explored": 1}, kind="progress")
    started = time.perf_counter()
    for _ in range(n_events):
        manager.fire(event)
    elapsed = time.perf_counter() - started
    return {"events": n_events, "seconds": round(elapsed, 4),
            "events_per_sec": round(n_events / elapsed)}


def bench_durable_log_throughput(n_events: int = 2_000) -> dict:
    from repro.server.store import JobStore

    with tempfile.TemporaryDirectory() as tmp:
        store = JobStore(Path(tmp) / "bench.db")
        stored = store.submit(VerificationJob.from_objects(_tiny_system(), _property()))
        manager = EventManager()
        manager.add_sink(StoreSink(store))
        manager.add_sink(MetricsSink(ServerMetrics()))
        started = time.perf_counter()
        for index in range(n_events):
            manager.fire(SearchEvent(
                job_id=stored.id, data={"states_explored": index}, kind="progress"
            ))
        elapsed = time.perf_counter() - started
        count = store.event_count(stored.id)
        store.close()
    return {"events": n_events, "persisted": count, "seconds": round(elapsed, 4),
            "events_per_sec": round(n_events / elapsed)}


def bench_long_poll_wakeup(samples: int = 40) -> dict:
    with tempfile.TemporaryDirectory() as tmp:
        server = VerificationServer(
            store_path=Path(tmp) / "bench.db", port=0, workers=0, quiet=True,
        )
        server.start()
        try:
            client = VerifasClient(server.url)
            handle = client.submit(
                dump_system(_tiny_system()), [dump_property(_property())],
                options={"timeout_seconds": 60},
            )[0]
            latencies = []
            cursor = 0
            stamp = {}

            def append_one(index):
                time.sleep(0.02)  # let the long-poll park first
                stamp["t"] = time.perf_counter()
                server.store.append_event(
                    handle.id, "progress", {"data": {"i": index}}
                )

            for index in range(samples):
                appender = threading.Thread(target=append_one, args=(index,))
                appender.start()
                page = client.events(handle.id, cursor=cursor, wait_ms=10_000)
                received = time.perf_counter()
                appender.join()
                assert page["events"], "long-poll returned empty during bench"
                cursor = page["cursor"]
                latencies.append((received - stamp["t"]) * 1000.0)
        finally:
            server.stop()
    latencies.sort()
    return {
        "samples": samples,
        "p50_ms": round(statistics.median(latencies), 3),
        "p95_ms": round(latencies[int(0.95 * (samples - 1))], 3),
        "max_ms": round(latencies[-1], 3),
    }


def bench_requests_for_100_events() -> dict:
    """A live job emitting 100 events at a 20ms cadence (a realistic search
    heartbeat), observed once over long-poll and once by the polling
    baseline.  Push needs at most one request per wakeup; polling re-asks on
    its own clock and mostly gets empty pages."""
    n_events = 100

    def observe(push: bool) -> dict:
        with tempfile.TemporaryDirectory() as tmp:
            server = VerificationServer(
                store_path=Path(tmp) / "bench.db", port=0, workers=0, quiet=True,
                push_fallback_interval=0.05,
            )
            server.start()
            try:
                client = CountingClient(
                    server.url, push_events=push, wait_ms=5_000,
                    poll_initial=0.01, poll_max=0.1,
                )
                handle = client.submit(
                    dump_system(_tiny_system()), [dump_property(_property())],
                    options={"timeout_seconds": 60},
                )[0]
                client.request_count = 0  # count only the observation phase

                def emit():
                    for index in range(n_events):
                        time.sleep(0.02)
                        server.store.append_event(
                            handle.id, "progress", {"data": {"i": index}}
                        )
                    server.store.mark_done(handle.id, {"outcome": "satisfied"})

                emitter = threading.Thread(target=emit)
                started = time.perf_counter()
                emitter.start()
                events = list(client.iter_events(handle.id, deadline_seconds=60))
                elapsed = time.perf_counter() - started
                emitter.join()
                assert len(events) == n_events + 0, f"saw {len(events)} events"
                return {"requests": client.request_count,
                        "seconds": round(elapsed, 3)}
            finally:
                server.stop()

    push = observe(push=True)
    poll = observe(push=False)
    return {"events": n_events, "push": push, "poll": poll}


def main() -> None:
    report = {
        "generated": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "python": sys.version.split()[0],
        "bus": bench_bus_throughput(),
        "durable_log": bench_durable_log_throughput(),
        "long_poll_wakeup": bench_long_poll_wakeup(),
        "requests_100_events": bench_requests_for_100_events(),
    }
    output = REPO_ROOT / "BENCH_events.json"
    output.write_text(json.dumps(report, indent=2) + "\n")
    print(json.dumps(report, indent=2))


if __name__ == "__main__":
    main()
