"""Figure 9: verification time vs cyclomatic complexity.

The paper plots, for every workflow of both suites, the average verification
time (over its 12 properties) against the workflow's cyclomatic complexity and
observes an exponential trend: higher-complexity specifications take longer to
verify, and specifications within the software-engineering recommendation
(complexity <= 15) verify quickly.
"""

import pytest

pytestmark = [pytest.mark.benchmark, pytest.mark.slow]

from conftest import print_table

from repro.benchmark.runner import BenchmarkRunner
from repro.core.options import VerifierOptions


def test_figure9_time_vs_cyclomatic_complexity(benchmark, runner, real_suite, synthetic_suite):
    def run():
        records = []
        records += runner.run_suite(real_suite, {"VERIFAS": VerifierOptions()})
        records += runner.run_suite(synthetic_suite, {"VERIFAS": VerifierOptions()})
        return records

    records = benchmark.pedantic(run, rounds=1, iterations=1)
    series = BenchmarkRunner.figure9(records)

    rows = [
        (complexity, f"{avg_seconds:.3f}s", runs) for complexity, avg_seconds, runs in series
    ]
    print_table(
        "Figure 9: Average Running Time vs Cyclomatic Complexity",
        ("Cyclomatic complexity", "Avg(Time)", "Runs"),
        rows,
    )

    assert series, "at least one complexity bucket expected"
    complexities = [c for c, _t, _n in series]
    assert min(complexities) >= 1

    # Shape check: workflows within the recommended complexity range (<= 15)
    # verify within the configured per-run budget most of the time.
    low = [r for r in records if r.cyclomatic <= 15]
    if low:
        completed = sum(1 for r in low if not r.failed)
        assert completed / len(low) >= 0.7
