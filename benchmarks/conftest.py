"""Shared configuration for the benchmark harness.

Every benchmark regenerates one table or figure of the paper's evaluation
(Section 4).  The full paper-scale experiment (32 real workflows, 120
synthetic workflows, 10-minute timeouts) takes hours; by default the harness
runs a scaled-down version whose *shape* matches the paper (who wins, by
roughly what factor, how times grow with complexity).  The scale can be
increased through environment variables:

``REPRO_BENCH_REAL``        number of real workflows        (default 3)
``REPRO_BENCH_SYNTH``       number of synthetic workflows   (default 3)
``REPRO_BENCH_TEMPLATES``   number of LTL templates         (default 6, max 12)
``REPRO_BENCH_TIMEOUT``     per-run timeout in seconds      (default 5)
``REPRO_BENCH_MAX_STATES``  per-run state budget            (default 20000)
"""

from __future__ import annotations

import os
import sys

import pytest

_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.benchmark.properties import LTL_TEMPLATES
from repro.benchmark.realworld import real_workflows
from repro.benchmark.runner import BenchmarkRunner, WorkflowSuite
from repro.benchmark.synthetic import SyntheticConfig, synthetic_workflows


def _env_int(name: str, default: int) -> int:
    try:
        return int(os.environ.get(name, default))
    except ValueError:
        return default


def _env_float(name: str, default: float) -> float:
    try:
        return float(os.environ.get(name, default))
    except ValueError:
        return default


REAL_COUNT = _env_int("REPRO_BENCH_REAL", 3)
SYNTH_COUNT = _env_int("REPRO_BENCH_SYNTH", 3)
TEMPLATE_COUNT = max(1, min(_env_int("REPRO_BENCH_TEMPLATES", 6), len(LTL_TEMPLATES)))
TIMEOUT = _env_float("REPRO_BENCH_TIMEOUT", 5.0)
MAX_STATES = _env_int("REPRO_BENCH_MAX_STATES", 20_000)

#: Templates used by the scaled-down harness (always includes the False baseline).
TEMPLATES = LTL_TEMPLATES[:TEMPLATE_COUNT]


@pytest.fixture(scope="session")
def real_suite() -> WorkflowSuite:
    """The real workflow suite, truncated to the configured size."""
    return WorkflowSuite("real", real_workflows()[:REAL_COUNT])


@pytest.fixture(scope="session")
def full_real_suite() -> WorkflowSuite:
    """The full real workflow suite (used only by the statistics table)."""
    return WorkflowSuite("real", real_workflows())


@pytest.fixture(scope="session")
def synthetic_suite() -> WorkflowSuite:
    """A small synthetic suite of increasing complexity (Appendix D generator)."""
    workflows = synthetic_workflows(
        count=SYNTH_COUNT,
        base_config=SyntheticConfig(
            relations=3, tasks=3, variables_per_task=9, services_per_task=8
        ),
        seed=100,
        scale_range=(0.4, 1.0),
    )
    return WorkflowSuite("synthetic", workflows)


@pytest.fixture(scope="session")
def runner() -> BenchmarkRunner:
    return BenchmarkRunner(
        timeout_seconds=TIMEOUT, max_states=MAX_STATES, templates=TEMPLATES
    )


def print_table(title: str, headers, rows) -> None:
    """Render one experiment table to stdout (captured with ``pytest -s``)."""
    widths = [len(str(h)) for h in headers]
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(str(cell)))
    print(f"\n=== {title} ===")
    print("  ".join(str(h).ljust(widths[i]) for i, h in enumerate(headers)))
    for row in rows:
        print("  ".join(str(cell).ljust(widths[i]) for i, cell in enumerate(row)))
