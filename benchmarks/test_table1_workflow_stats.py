"""Table 1: statistics of the two sets of workflows.

The paper reports, for the real and synthetic benchmark sets, the number of
workflows and the average number of database relations, tasks, artifact
variables and services.  This benchmark rebuilds both suites and prints the
same row structure.
"""

import pytest

pytestmark = [pytest.mark.benchmark, pytest.mark.slow]

from conftest import print_table

from repro.benchmark.runner import WorkflowSuite


def test_table1_workflow_statistics(benchmark, full_real_suite, synthetic_suite):
    def compute():
        return {
            "Real": full_real_suite.statistics(),
            "Synthetic": synthetic_suite.statistics(),
        }

    stats = benchmark.pedantic(compute, rounds=1, iterations=1)

    rows = []
    for name, row in stats.items():
        rows.append(
            (
                name,
                int(row["size"]),
                f"{row['relations']:.3f}",
                f"{row['tasks']:.3f}",
                f"{row['variables']:.2f}",
                f"{row['services']:.2f}",
            )
        )
    print_table(
        "Table 1: Statistics of the Two Sets of Workflows",
        ("Dataset", "Size", "#Relations", "#Tasks", "#Variables", "#Services"),
        rows,
    )

    real = stats["Real"]
    # Shape check against the paper's Table 1 band for the real suite
    # (~3.6 relations, ~3.2 tasks, ~20 variables, ~12 services on average).
    assert 2.0 <= real["relations"] <= 5.0
    assert 2.0 <= real["tasks"] <= 5.0
    assert 8.0 <= real["variables"] <= 30.0
    assert 8.0 <= real["services"] <= 20.0
