"""Per-tenant token-bucket rate limiting for the submit path.

A classic token bucket: capacity ``burst`` tokens, refilled continuously at
``rate`` tokens/second; each submitted job costs one token.  When the
bucket cannot cover a request, :meth:`TokenBucket.try_acquire` returns the
number of seconds until it could -- which becomes the ``Retry-After`` of
the 429 response, so well-behaved clients back off by exactly the right
amount instead of hammering.

State is in-memory and per server process (documented in the README): in a
multi-server deployment each server enforces the configured rate
independently, so a tenant's effective ceiling is ``rate × servers``.
That trade keeps the hot submit path free of cross-process coordination;
the *in-flight* quota (``max_pending``), which must hold globally, is
enforced in the store's submit transaction instead.
"""

from __future__ import annotations

import threading
import time
from typing import TYPE_CHECKING, Callable, Dict, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover
    from repro.tenancy.registry import Tenant


class ThrottledError(Exception):
    """A submit was rejected by tenant policy: 429 + ``Retry-After``.

    ``reason`` is ``"rate_limit"`` (token bucket empty) or ``"quota"``
    (in-flight pending limit reached); ``retry_after`` is the seconds the
    429 response should advertise.  ``accepted`` lists jobs of the same
    POST that were enqueued *before* a mid-batch quota race tripped --
    normally empty, because the whole batch is preflighted.
    """

    def __init__(
        self,
        message: str,
        retry_after: float,
        reason: str,
        accepted: Optional[list] = None,
    ):
        super().__init__(message)
        self.retry_after = retry_after
        self.reason = reason
        self.accepted = accepted if accepted is not None else []


class TokenBucket:
    """One token bucket (thread-safe, monotonic-clock based)."""

    def __init__(
        self,
        rate: float,
        burst: float,
        clock: Callable[[], float] = time.monotonic,
    ):
        if rate <= 0:
            raise ValueError(f"rate must be > 0, got {rate}")
        if burst <= 0:
            raise ValueError(f"burst must be > 0, got {burst}")
        self.rate = float(rate)
        self.burst = float(burst)
        self._clock = clock
        self._tokens = self.burst
        self._updated = clock()
        self._lock = threading.Lock()

    def _refill(self, now: float) -> None:
        elapsed = max(0.0, now - self._updated)
        self._updated = now
        self._tokens = min(self.burst, self._tokens + elapsed * self.rate)

    def try_acquire(self, tokens: float = 1.0) -> float:
        """Take *tokens* if available; returns 0.0 on success, else the
        seconds until the bucket could cover the request (nothing is taken).

        A request larger than the bucket capacity can never succeed; it
        reports the time to refill the whole bucket (callers should reject
        such batches outright rather than retry).
        """
        with self._lock:
            now = self._clock()
            self._refill(now)
            if tokens <= self._tokens:
                self._tokens -= tokens
                return 0.0
            deficit = min(tokens, self.burst) - self._tokens
            return deficit / self.rate

    def available(self) -> float:
        """Current token count (refilled to now); diagnostic only."""
        with self._lock:
            self._refill(self._clock())
            return self._tokens


class TenantRateLimiter:
    """Per-tenant buckets, built lazily from each tenant's configured policy.

    A bucket is (re)built whenever the tenant's ``rate_limit``/``burst``
    config changes, so ``tenant create``-time edits take effect without a
    server restart (within the registry's resolution-cache TTL).
    """

    def __init__(self, clock: Callable[[], float] = time.monotonic):
        self._clock = clock
        self._lock = threading.Lock()
        #: tenant id -> ((rate, burst), bucket)
        self._buckets: Dict[str, Tuple[Tuple[float, float], TokenBucket]] = {}

    def check(self, tenant: "Tenant", tokens: float = 1.0) -> float:
        """Charge *tokens* against *tenant*'s bucket.

        Returns 0.0 when the submit may proceed, else the ``Retry-After``
        seconds for the 429.  Tenants without a ``rate_limit`` are never
        throttled here.
        """
        rate = tenant.rate_limit
        if rate is None:
            return 0.0
        burst = tenant.effective_burst
        assert burst is not None  # effective_burst is None only when rate is
        config = (float(rate), float(burst))
        with self._lock:
            entry = self._buckets.get(tenant.id)
            if entry is None or entry[0] != config:
                bucket = TokenBucket(config[0], config[1], clock=self._clock)
                self._buckets[tenant.id] = (config, bucket)
            else:
                bucket = entry[1]
        return bucket.try_acquire(tokens)

    def retry_after_header(self, seconds: float) -> str:
        """``Retry-After`` header value: integral seconds, rounded up, >= 1."""
        return str(max(1, int(-(-seconds // 1))))
