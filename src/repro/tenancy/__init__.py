"""repro.tenancy -- the multi-tenant front door of the verification service.

Three pieces turn the anonymous ``/v1`` API into one that many tenants can
share safely (all pure stdlib, state in the same SQLite store file):

* :class:`~repro.tenancy.registry.TenantRegistry` -- tenants and their API
  keys, persisted in the job store's ``tenants`` table.  Keys look like
  ``vk_<key_id>.<secret>``: the ``key_id`` half is the indexed lookup
  handle, the secret half is stored only as a salted SHA-256 digest.
* :class:`~repro.tenancy.ratelimit.TokenBucket` /
  :class:`~repro.tenancy.ratelimit.TenantRateLimiter` -- per-tenant submit
  rate limiting (429 + ``Retry-After``); in-flight quotas are enforced
  atomically by :meth:`repro.server.store.JobStore.submit`.
* Weighted fair-share claiming lives in
  :meth:`repro.server.store.JobStore.claim_next` (stride scheduling over
  the ``claim_shares`` table); the registry only supplies the weights.

Authentication stays **off** by default: ``python -m repro serve`` keeps
the zero-config anonymous API, ``serve --auth`` turns the front door on.
Admin lifecycle is ``python -m repro tenant create/list/revoke``.
"""

from repro.tenancy.ratelimit import TenantRateLimiter, ThrottledError, TokenBucket
from repro.tenancy.registry import (
    DEFAULT_TEST_API_KEY,
    AuthFailure,
    Tenant,
    TenantRegistry,
    parse_api_key,
)

__all__ = [
    "AuthFailure",
    "DEFAULT_TEST_API_KEY",
    "Tenant",
    "TenantRateLimiter",
    "TenantRegistry",
    "ThrottledError",
    "TokenBucket",
    "parse_api_key",
]
