"""Tenant records and API-key authentication over the job store.

A tenant row holds identity (name), credentials (salted-hashed API key),
and policy (fair-share ``weight``, submit ``rate_limit``/``burst``, and the
in-flight ``max_pending`` quota).  The registry never opens its own SQLite
connection: it runs on :meth:`repro.server.store.JobStore.read_connection`
/ :meth:`~repro.server.store.JobStore.write_transaction`, so tenant CRUD
obeys exactly the same WAL + ``BEGIN IMMEDIATE`` rules as job traffic and
works unchanged when several server processes share one store file.

API keys are ``vk_<key_id>.<secret>``: ``key_id`` (8 hex chars) is stored
in plaintext as the indexed lookup handle, the full key is stored only as
``sha256(salt || key)``.  :meth:`TenantRegistry.resolve` therefore costs
one indexed SELECT plus one hash, and a leaked store file leaks no usable
credentials.  Resolutions are cached per process for a short TTL
(``cache_ttl_seconds``), which bounds how long a revocation done on one
server takes to propagate to its peers.
"""

from __future__ import annotations

import hashlib
import hmac
import secrets
import sqlite3
import threading
import time
import uuid
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (store -> tenancy docs)
    from repro.server.store import JobStore

#: Key prefix; also doubles as a cheap format check before hitting the store.
KEY_PREFIX = "vk_"

#: The deterministic API key of the ``REPRO_TEST_AUTH=1`` bootstrap tenant.
#: Overridable via ``REPRO_TEST_API_KEY``; never provisioned unless that
#: test hook is active, so production stores cannot contain it by accident.
DEFAULT_TEST_API_KEY = "vk_reprotest.0123456789abcdef0123456789abcdef"


class AuthFailure(Exception):
    """An HTTP-mappable authentication/authorization failure.

    ``status`` is the HTTP code the front door should answer with:
    401 (missing/malformed/unknown key) or 403 (revoked key).
    """

    def __init__(self, status: int, message: str):
        super().__init__(message)
        self.status = status


def parse_api_key(api_key: str) -> Optional[Tuple[str, str]]:
    """Split ``vk_<key_id>.<secret>`` into ``(key_id, secret)``.

    Returns ``None`` for anything malformed -- malformed keys must behave
    exactly like unknown ones (401), never like a server error.
    """
    if not isinstance(api_key, str) or not api_key.startswith(KEY_PREFIX):
        return None
    body = api_key[len(KEY_PREFIX):]
    key_id, sep, secret = body.partition(".")
    if not sep or not key_id or not secret:
        return None
    return key_id, secret


def _hash_key(salt: str, api_key: str) -> str:
    return hashlib.sha256((salt + api_key).encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class Tenant:
    """One tenant row (credentials reduced to the public ``key_id`` handle)."""

    id: str
    name: str
    key_id: str
    weight: float
    rate_limit: Optional[float]  # submits/second; None = unlimited
    burst: Optional[float]  # bucket capacity; None = max(1, rate_limit)
    max_pending: Optional[int]  # queued+running quota; None = unlimited
    revoked: bool
    created_at: float

    @property
    def effective_burst(self) -> Optional[float]:
        """Bucket capacity actually enforced (``None`` = not rate limited)."""
        if self.rate_limit is None:
            return None
        if self.burst is not None:
            return max(1.0, float(self.burst))
        return max(1.0, float(self.rate_limit))

    def as_dict(self) -> Dict[str, Any]:
        """The JSON view for ``tenant list`` and ``/v1/metrics`` (no secrets)."""
        return {
            "id": self.id,
            "name": self.name,
            "key_id": self.key_id,
            "weight": self.weight,
            "rate_limit": self.rate_limit,
            "burst": self.burst,
            "max_pending": self.max_pending,
            "revoked": self.revoked,
            "created_at": self.created_at,
        }

    @classmethod
    def _from_row(cls, row: sqlite3.Row) -> "Tenant":
        return cls(
            id=row["id"],
            name=row["name"],
            key_id=row["key_id"],
            weight=row["weight"],
            rate_limit=row["rate_limit"],
            burst=row["burst"],
            max_pending=row["max_pending"],
            revoked=bool(row["revoked"]),
            created_at=row["created_at"],
        )


class TenantRegistry:
    """Tenant CRUD + API-key resolution on top of a :class:`JobStore`."""

    def __init__(self, store: "JobStore", cache_ttl_seconds: float = 1.0):
        self._store = store
        self.cache_ttl_seconds = max(0.0, cache_ttl_seconds)
        self._cache_lock = threading.Lock()
        #: api_key -> (expires_at_monotonic, Tenant)
        self._cache: Dict[str, Tuple[float, Tenant]] = {}

    # ------------------------------------------------------------- lifecycle

    def create(
        self,
        name: str,
        weight: float = 1.0,
        rate_limit: Optional[float] = None,
        burst: Optional[float] = None,
        max_pending: Optional[int] = None,
        api_key: Optional[str] = None,
        tenant_id: Optional[str] = None,
    ) -> Tuple[Tenant, str]:
        """Create a tenant; returns ``(tenant, api_key)``.

        The plaintext key is returned exactly once, here -- only its salted
        hash is stored.  ``api_key``/``tenant_id`` let callers pin the
        credentials (the idempotent test-bootstrap path); normally both are
        freshly generated.
        """
        name = (name or "").strip()
        if not name:
            raise ValueError("tenant name must be non-empty")
        weight = float(weight)
        if weight <= 0:
            raise ValueError(f"tenant weight must be > 0, got {weight}")
        if rate_limit is not None and float(rate_limit) <= 0:
            raise ValueError(f"rate_limit must be > 0, got {rate_limit}")
        if burst is not None and float(burst) <= 0:
            raise ValueError(f"burst must be > 0, got {burst}")
        if max_pending is not None and int(max_pending) <= 0:
            raise ValueError(f"max_pending must be > 0, got {max_pending}")
        if api_key is None:
            api_key = "{}{}.{}".format(
                KEY_PREFIX, secrets.token_hex(4), secrets.token_hex(16)
            )
        parsed = parse_api_key(api_key)
        if parsed is None:
            raise ValueError(
                f"malformed api_key; expected '{KEY_PREFIX}<key_id>.<secret>'"
            )
        key_id = parsed[0]
        salt = secrets.token_hex(8)
        row_id = tenant_id if tenant_id is not None else uuid.uuid4().hex[:12]
        try:
            with self._store.write_transaction() as conn:
                conn.execute(
                    "INSERT INTO tenants (id, name, key_id, key_hash, key_salt,"
                    " weight, rate_limit, burst, max_pending, revoked, created_at)"
                    " VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, 0, ?)",
                    (
                        row_id,
                        name,
                        key_id,
                        _hash_key(salt, api_key),
                        salt,
                        weight,
                        float(rate_limit) if rate_limit is not None else None,
                        float(burst) if burst is not None else None,
                        int(max_pending) if max_pending is not None else None,
                        time.time(),
                    ),
                )
                row = conn.execute(
                    "SELECT * FROM tenants WHERE id = ?", (row_id,)
                ).fetchone()
        except sqlite3.IntegrityError as error:
            raise ValueError(
                f"tenant name/key/id already in use: {error}"
            ) from error
        return Tenant._from_row(row), api_key

    def ensure(
        self,
        name: str,
        api_key: str,
        weight: float = 1.0,
        tenant_id: Optional[str] = None,
    ) -> Tenant:
        """Idempotently make sure a tenant with *name*/*api_key* exists.

        The ``REPRO_TEST_AUTH=1`` bootstrap: several servers sharing one
        store may race to provision the same test tenant, and every one of
        them must come out holding the same row.
        """
        existing = self.get(name)
        if existing is not None:
            return existing
        try:
            tenant, _ = self.create(
                name, weight=weight, api_key=api_key, tenant_id=tenant_id
            )
            return tenant
        except ValueError:
            tenant = self.get(name)
            if tenant is None:  # pragma: no cover - racing revoke+delete only
                raise
            return tenant

    def revoke(self, name_or_id: str) -> Optional[Tenant]:
        """Mark a tenant's key revoked; returns the updated row (or ``None``).

        Revoked tenants keep their jobs and history but every request with
        their key answers 403.  Peer servers see the revocation when their
        resolution cache entry expires (``cache_ttl_seconds``).
        """
        with self._store.write_transaction() as conn:
            cursor = conn.execute(
                "UPDATE tenants SET revoked = 1 WHERE id = ? OR name = ?",
                (name_or_id, name_or_id),
            )
            if cursor.rowcount == 0:
                return None
            row = conn.execute(
                "SELECT * FROM tenants WHERE id = ? OR name = ?",
                (name_or_id, name_or_id),
            ).fetchone()
        with self._cache_lock:
            self._cache.clear()
        return Tenant._from_row(row) if row is not None else None

    # ----------------------------------------------------------------- reads

    def get(self, name_or_id: str) -> Optional[Tenant]:
        with self._store.read_connection() as conn:
            row = conn.execute(
                "SELECT * FROM tenants WHERE id = ? OR name = ?",
                (name_or_id, name_or_id),
            ).fetchone()
        return Tenant._from_row(row) if row is not None else None

    def list(self) -> List[Tenant]:
        with self._store.read_connection() as conn:
            rows = conn.execute(
                "SELECT * FROM tenants ORDER BY created_at, name"
            ).fetchall()
        return [Tenant._from_row(row) for row in rows]

    def resolve(self, api_key: str) -> Optional[Tenant]:
        """The tenant a presented API key belongs to, or ``None``.

        Malformed, unknown and wrong-secret keys all resolve to ``None``
        (the caller answers 401 without distinguishing them); a revoked
        tenant resolves to its row with ``revoked=True`` (403 material).
        Successful resolutions are cached for ``cache_ttl_seconds``.
        """
        parsed = parse_api_key(api_key)
        if parsed is None:
            return None
        if self.cache_ttl_seconds > 0:
            now = time.monotonic()
            with self._cache_lock:
                hit = self._cache.get(api_key)
                if hit is not None and hit[0] > now:
                    return hit[1]
        key_id = parsed[0]
        with self._store.read_connection() as conn:
            row = conn.execute(
                "SELECT * FROM tenants WHERE key_id = ?", (key_id,)
            ).fetchone()
        if row is None:
            return None
        expected = row["key_hash"]
        presented = _hash_key(row["key_salt"], api_key)
        if not hmac.compare_digest(expected, presented):
            return None
        tenant = Tenant._from_row(row)
        if self.cache_ttl_seconds > 0:
            with self._cache_lock:
                self._cache[api_key] = (
                    time.monotonic() + self.cache_ttl_seconds,
                    tenant,
                )
                if len(self._cache) > 4096:  # unbounded only under key abuse
                    self._cache.clear()
        return tenant
