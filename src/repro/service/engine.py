"""The batch verification engine: fan (system × property) jobs across cores.

The engine deduplicates a batch by content fingerprint, serves duplicates and
previously verified jobs from the :class:`~repro.service.cache.ResultCache`,
and fans the remaining unique jobs out over a
:class:`~concurrent.futures.ProcessPoolExecutor`.  Work crosses process
boundaries purely as canonical spec dicts (see
:class:`~repro.service.jobs.VerificationJob`), so workers rebuild the model
with :func:`repro.spec.codec.load_system` and return serialized results.

Environments without working process pools (restricted sandboxes, platforms
without ``fork``/``spawn``) degrade gracefully to in-process execution.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from repro.core.options import VerifierOptions
from repro.core.verifier import VerificationResult, Verifier
from repro.has.artifact_system import ArtifactSystem
from repro.ltl.ltlfo import LTLFOProperty
from repro.service.cache import ResultCache
from repro.service.jobs import JobResult, VerificationJob


def _verify_job_dicts(
    system_dict: Dict[str, Any],
    property_dict: Dict[str, Any],
    options_dict: Dict[str, Any],
) -> Dict[str, Any]:
    """Worker entry point: rebuild the model from spec dicts, verify, serialize.

    Runs in worker processes, so it must stay a module-level function (picklable
    by reference) and must exchange only JSON-compatible dicts.
    """
    job = VerificationJob(system_dict, property_dict, options_dict)
    result = Verifier(job.system(), job.options()).verify(job.ltl_property())
    return result.as_dict()


class VerificationService:
    """Verifies batches of (system × property) jobs with caching and a worker pool.

    ::

        service = VerificationService()
        jobs = [VerificationJob.from_objects(system, p) for p in properties]
        for job_result in service.run_batch(jobs, workers=4):
            print(job_result.summary())
    """

    def __init__(
        self,
        cache: Optional[ResultCache] = None,
        default_options: Optional[VerifierOptions] = None,
    ):
        self.cache = cache if cache is not None else ResultCache()
        self.default_options = default_options or VerifierOptions()
        self._pending: List[VerificationJob] = []

    # ------------------------------------------------------------------ queue

    def submit(
        self,
        system: ArtifactSystem,
        ltl_property: LTLFOProperty,
        options: Optional[VerifierOptions] = None,
        label: Optional[str] = None,
    ) -> VerificationJob:
        """Enqueue one job built from live model objects; returns the job."""
        job = VerificationJob.from_objects(
            system, ltl_property, options or self.default_options, label=label
        )
        self._pending.append(job)
        return job

    def submit_job(self, job: VerificationJob) -> VerificationJob:
        """Enqueue an already-built job."""
        self._pending.append(job)
        return job

    @property
    def pending(self) -> Sequence[VerificationJob]:
        return tuple(self._pending)

    def run_pending(self, workers: int = 1) -> List[JobResult]:
        """Run (and drain) every queued job."""
        jobs, self._pending = self._pending, []
        return self.run_batch(jobs, workers=workers)

    # ------------------------------------------------------------------ one-shot

    def verify(
        self,
        system: ArtifactSystem,
        ltl_property: LTLFOProperty,
        options: Optional[VerifierOptions] = None,
    ) -> VerificationResult:
        """Verify one property through the cache (sequential, in-process)."""
        job = VerificationJob.from_objects(
            system, ltl_property, options or self.default_options
        )
        return self.run_batch([job])[0].result

    # ------------------------------------------------------------------ batches

    def run_batch(self, jobs: Sequence[VerificationJob], workers: int = 1) -> List[JobResult]:
        """Run a batch of jobs, returning one :class:`JobResult` per job, in order.

        Jobs whose fingerprint is already cached -- from an earlier batch or
        from an earlier occurrence *within this batch* -- are reported as
        cache hits and skip the Karp–Miller search entirely.  The remaining
        unique jobs run on ``workers`` processes (in-process when
        ``workers <= 1`` or when no process pool can be created).
        """
        jobs = list(jobs)
        results: Dict[int, JobResult] = {}

        # Partition: cached jobs, first occurrences to run, duplicate occurrences.
        to_run: List[VerificationJob] = []
        first_occurrence: Dict[str, int] = {}
        duplicates: List[int] = []
        for index, job in enumerate(jobs):
            fingerprint = job.fingerprint
            if fingerprint in first_occurrence:
                duplicates.append(index)
                continue
            cached = self.cache.get(fingerprint)
            if cached is not None:
                results[index] = JobResult(job, cached, cache_hit=True)
                continue
            first_occurrence[fingerprint] = index
            to_run.append(job)

        # Verify the unique, uncached jobs.
        for job, result in zip(to_run, self._execute(to_run, workers)):
            self.cache.put(job.fingerprint, result)
            results[first_occurrence[job.fingerprint]] = JobResult(
                job, result, cache_hit=False
            )

        # Duplicates within the batch resolve against the first occurrence's
        # result (not the cache, whose entry may already have been evicted).
        for index in duplicates:
            job = jobs[index]
            first = results[first_occurrence[job.fingerprint]]
            results[index] = JobResult(job, first.result, cache_hit=True)

        return [results[index] for index in range(len(jobs))]

    # ------------------------------------------------------------------ execution

    def _execute(
        self, jobs: Sequence[VerificationJob], workers: int
    ) -> List[VerificationResult]:
        if not jobs:
            return []
        if workers > 1 and len(jobs) > 1:
            try:
                return self._execute_pool(jobs, workers)
            except (OSError, ImportError, BrokenProcessPool):
                # No usable process pool in this environment (or the pool died
                # mid-run); fall through and run the whole batch in-process.
                pass
        return [self._execute_one(job) for job in jobs]

    @staticmethod
    def _execute_one(job: VerificationJob) -> VerificationResult:
        return VerificationResult.from_dict(
            _verify_job_dicts(job.system_dict, job.property_dict, job.options_dict)
        )

    @staticmethod
    def _execute_pool(
        jobs: Sequence[VerificationJob], workers: int
    ) -> List[VerificationResult]:
        with ProcessPoolExecutor(max_workers=min(workers, len(jobs))) as pool:
            futures = [
                pool.submit(
                    _verify_job_dicts, job.system_dict, job.property_dict, job.options_dict
                )
                for job in jobs
            ]
            return [VerificationResult.from_dict(future.result()) for future in futures]


@dataclass
class BatchReport:
    """Aggregate view of one batch run (rendered by the CLI)."""

    job_results: List[JobResult] = field(default_factory=list)

    @property
    def total(self) -> int:
        return len(self.job_results)

    @property
    def cache_hits(self) -> int:
        return sum(1 for r in self.job_results if r.cache_hit)

    @property
    def outcomes(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for job_result in self.job_results:
            key = job_result.result.outcome.value
            counts[key] = counts.get(key, 0) + 1
        return counts

    def as_dict(self) -> Dict[str, Any]:
        return {
            "total": self.total,
            "cache_hits": self.cache_hits,
            "outcomes": self.outcomes,
            "results": [
                {
                    "system": r.job.system_name,
                    "property": r.job.property_name,
                    "fingerprint": r.job.fingerprint,
                    "cache_hit": r.cache_hit,
                    **r.result.as_dict(),
                }
                for r in self.job_results
            ],
        }
