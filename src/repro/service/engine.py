"""The batch verification engine: fan (system × property) jobs across cores.

The engine deduplicates a batch by content fingerprint, serves duplicates and
previously verified jobs from the :class:`~repro.service.cache.ResultCache`,
and fans the remaining unique jobs out over a
:class:`~concurrent.futures.ProcessPoolExecutor`.  Work crosses process
boundaries purely as canonical spec dicts (see
:class:`~repro.service.jobs.VerificationJob`), so workers rebuild the model
with :func:`repro.spec.codec.load_system` and return serialized results.

Environments without working process pools (restricted sandboxes, platforms
without ``fork``/``spawn``) degrade gracefully to in-process execution.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, Iterator, List, Optional, Sequence

from repro.core.options import VerifierOptions
from repro.core.verifier import VerificationResult, Verifier
from repro.has.artifact_system import ArtifactSystem
from repro.ltl.ltlfo import LTLFOProperty
from repro.service.cache import ResultCache
from repro.service.jobs import JobResult, VerificationJob


def _verify_job_dicts(
    system_dict: Dict[str, Any],
    property_dict: Dict[str, Any],
    options_dict: Dict[str, Any],
) -> Dict[str, Any]:
    """Worker entry point: rebuild the model from spec dicts, verify, serialize.

    Runs in worker processes, so it must stay a module-level function (picklable
    by reference) and must exchange only JSON-compatible dicts.
    """
    job = VerificationJob(system_dict, property_dict, options_dict)
    result = Verifier(job.system(), job.options()).verify(job.ltl_property())
    return result.as_dict()


@dataclass
class JobCallbacks:
    """Incremental job-status hooks fired while a batch runs.

    ``on_started`` fires only for jobs that actually enter the verifier (cache
    hits and in-batch duplicates skip it, and it may repeat if a process pool
    dies and the batch restarts in-process); ``on_finished`` fires exactly
    once per job, with its result and cache provenance.  Long-running callers
    (the HTTP server, progress bars) use these to surface per-job state
    without waiting for the whole batch.
    """

    on_started: Optional[Callable[["VerificationJob"], None]] = None
    on_finished: Optional[Callable[["VerificationJob", VerificationResult, bool], None]] = None

    def started(self, job: "VerificationJob") -> None:
        if self.on_started is not None:
            self.on_started(job)

    def finished(self, job: "VerificationJob", result: VerificationResult, cache_hit: bool) -> None:
        if self.on_finished is not None:
            self.on_finished(job, result, cache_hit)


class VerificationService:
    """Verifies batches of (system × property) jobs with caching and a worker pool.

    ::

        service = VerificationService()
        jobs = [VerificationJob.from_objects(system, p) for p in properties]
        for job_result in service.run_batch(jobs, workers=4):
            print(job_result.summary())
    """

    def __init__(
        self,
        cache: Optional[ResultCache] = None,
        default_options: Optional[VerifierOptions] = None,
    ):
        self.cache = cache if cache is not None else ResultCache()
        self.default_options = default_options or VerifierOptions()
        self._pending: List[VerificationJob] = []

    # ------------------------------------------------------------------ queue

    def submit(
        self,
        system: ArtifactSystem,
        ltl_property: LTLFOProperty,
        options: Optional[VerifierOptions] = None,
        label: Optional[str] = None,
    ) -> VerificationJob:
        """Enqueue one job built from live model objects; returns the job."""
        job = VerificationJob.from_objects(
            system, ltl_property, options or self.default_options, label=label
        )
        self._pending.append(job)
        return job

    def submit_job(self, job: VerificationJob) -> VerificationJob:
        """Enqueue an already-built job."""
        self._pending.append(job)
        return job

    @property
    def pending(self) -> Sequence[VerificationJob]:
        return tuple(self._pending)

    def run_pending(self, workers: int = 1) -> List[JobResult]:
        """Run (and drain) every queued job."""
        jobs, self._pending = self._pending, []
        return self.run_batch(jobs, workers=workers)

    # ------------------------------------------------------------------ one-shot

    def verify(
        self,
        system: ArtifactSystem,
        ltl_property: LTLFOProperty,
        options: Optional[VerifierOptions] = None,
    ) -> VerificationResult:
        """Verify one property through the cache (sequential, in-process)."""
        job = VerificationJob.from_objects(
            system, ltl_property, options or self.default_options
        )
        return self.run_batch([job])[0].result

    # ------------------------------------------------------------------ batches

    def run_batch(
        self,
        jobs: Sequence[VerificationJob],
        workers: int = 1,
        callbacks: Optional[JobCallbacks] = None,
    ) -> List[JobResult]:
        """Run a batch of jobs, returning one :class:`JobResult` per job, in order.

        Jobs whose fingerprint is already cached -- from an earlier batch or
        from an earlier occurrence *within this batch* -- are reported as
        cache hits and skip the Karp–Miller search entirely.  The remaining
        unique jobs run on ``workers`` processes (in-process when
        ``workers <= 1`` or when no process pool can be created).

        ``callbacks`` (see :class:`JobCallbacks`) receives incremental
        per-job status while the batch runs; in-batch duplicates report last.
        """
        callbacks = callbacks or JobCallbacks()
        jobs = list(jobs)
        results: Dict[int, JobResult] = {}

        # Partition: cached jobs, first occurrences to run, duplicate occurrences.
        to_run: List[VerificationJob] = []
        first_occurrence: Dict[str, int] = {}
        duplicates: List[int] = []
        for index, job in enumerate(jobs):
            fingerprint = job.fingerprint
            if fingerprint in first_occurrence:
                duplicates.append(index)
                continue
            cached = self.cache.get(fingerprint)
            if cached is not None:
                results[index] = JobResult(job, cached, cache_hit=True)
                callbacks.finished(job, cached, True)
                continue
            first_occurrence[fingerprint] = index
            to_run.append(job)

        # Verify the unique, uncached jobs.
        for job, result in zip(to_run, self._execute(to_run, workers, callbacks)):
            self.cache.put(job.fingerprint, result)
            results[first_occurrence[job.fingerprint]] = JobResult(
                job, result, cache_hit=False
            )
            callbacks.finished(job, result, False)

        # Duplicates within the batch resolve against the first occurrence's
        # result (not the cache, whose entry may already have been evicted).
        for index in duplicates:
            job = jobs[index]
            first = results[first_occurrence[job.fingerprint]]
            results[index] = JobResult(job, first.result, cache_hit=True)
            callbacks.finished(job, first.result, True)

        return [results[index] for index in range(len(jobs))]

    # ------------------------------------------------------------------ execution

    def _execute(
        self,
        jobs: Sequence[VerificationJob],
        workers: int,
        callbacks: Optional[JobCallbacks] = None,
    ) -> Iterable[VerificationResult]:
        callbacks = callbacks or JobCallbacks()
        if not jobs:
            return []
        if workers > 1 and len(jobs) > 1:
            try:
                return self._execute_pool(jobs, workers, callbacks)
            except (OSError, ImportError, BrokenProcessPool):
                # No usable process pool in this environment (or the pool died
                # mid-run); fall through and run the whole batch in-process.
                pass
        # A generator, so the caller observes (and reports) each in-process
        # result as it lands rather than after the whole batch.
        return self._execute_inprocess(jobs, callbacks)

    def _execute_inprocess(
        self, jobs: Sequence[VerificationJob], callbacks: JobCallbacks
    ) -> Iterator[VerificationResult]:
        for job in jobs:
            callbacks.started(job)
            yield self._execute_one(job)

    @staticmethod
    def _execute_one(job: VerificationJob) -> VerificationResult:
        return VerificationResult.from_dict(
            _verify_job_dicts(job.system_dict, job.property_dict, job.options_dict)
        )

    @staticmethod
    def _execute_pool(
        jobs: Sequence[VerificationJob], workers: int, callbacks: JobCallbacks
    ) -> List[VerificationResult]:
        with ProcessPoolExecutor(max_workers=min(workers, len(jobs))) as pool:
            futures = []
            for job in jobs:
                callbacks.started(job)
                futures.append(
                    pool.submit(
                        _verify_job_dicts, job.system_dict, job.property_dict, job.options_dict
                    )
                )
            return [VerificationResult.from_dict(future.result()) for future in futures]


@dataclass
class BatchReport:
    """Aggregate view of one batch run (rendered by the CLI)."""

    job_results: List[JobResult] = field(default_factory=list)

    @property
    def total(self) -> int:
        return len(self.job_results)

    @property
    def cache_hits(self) -> int:
        return sum(1 for r in self.job_results if r.cache_hit)

    @property
    def outcomes(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for job_result in self.job_results:
            key = job_result.result.outcome.value
            counts[key] = counts.get(key, 0) + 1
        return counts

    def as_dict(self) -> Dict[str, Any]:
        return {
            "total": self.total,
            "cache_hits": self.cache_hits,
            "outcomes": self.outcomes,
            "results": [
                {
                    "system": r.job.system_name,
                    "property": r.job.property_name,
                    "fingerprint": r.job.fingerprint,
                    "cache_hit": r.cache_hit,
                    **r.result.as_dict(),
                }
                for r in self.job_results
            ],
        }
