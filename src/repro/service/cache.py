"""Content-addressed result cache of the verification service.

Keys are job fingerprints (see :mod:`repro.spec.fingerprint`): the SHA-256 of
the canonical (system, property, options) dicts.  Values are stored in their
serialized dict form, so a cached entry is exactly what a worker process
returns and what a persistent backend would store; every ``get`` rebuilds a
fresh :class:`~repro.core.verifier.VerificationResult`, keeping cached data
immutable from the caller's point of view.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Dict, Optional

from repro.core.verifier import VerificationResult


class ResultCache:
    """A bounded, thread-safe, in-memory LRU result cache with hit/miss counters."""

    def __init__(self, max_entries: int = 10_000):
        if max_entries < 1:
            raise ValueError("max_entries must be positive")
        self.max_entries = max_entries
        self._entries: "OrderedDict[str, Dict[str, Any]]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    def get(self, fingerprint: str) -> Optional[VerificationResult]:
        """The cached result for *fingerprint*, or ``None`` (counts hit/miss)."""
        with self._lock:
            entry = self._entries.get(fingerprint)
            if entry is None:
                self.misses += 1
                return None
            self._entries.move_to_end(fingerprint)
            self.hits += 1
            return VerificationResult.from_dict(entry)

    def peek(self, fingerprint: str) -> bool:
        """Whether *fingerprint* is cached, without touching the counters."""
        with self._lock:
            return fingerprint in self._entries

    def put(self, fingerprint: str, result: VerificationResult) -> None:
        """Insert a result; evicts the least recently used entry when full."""
        entry = result.as_dict()
        with self._lock:
            if fingerprint in self._entries:
                self._entries.move_to_end(fingerprint)
            elif len(self._entries) >= self.max_entries:
                self._entries.popitem(last=False)
            self._entries[fingerprint] = entry

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self.hits = 0
            self.misses = 0

    def statistics(self) -> Dict[str, int]:
        with self._lock:
            return {"entries": len(self._entries), "hits": self.hits, "misses": self.misses}

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, fingerprint: object) -> bool:
        with self._lock:
            return fingerprint in self._entries
