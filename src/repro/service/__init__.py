"""Batch verification service: job queue, worker pool, content-addressed cache.

Built on :mod:`repro.spec`: jobs carry canonical spec dicts, so they pickle
cheaply across process boundaries and cache under a content fingerprint.

::

    from repro.service import VerificationService, VerificationJob

    service = VerificationService()
    jobs = [VerificationJob.from_objects(system, p) for p in properties]
    for job_result in service.run_batch(jobs, workers=4):
        print(job_result.summary())
"""

from repro.service.cache import ResultCache
from repro.service.engine import BatchReport, JobCallbacks, VerificationService
from repro.service.jobs import JobResult, VerificationJob, jobs_from_bundle

__all__ = [
    "BatchReport",
    "JobCallbacks",
    "JobResult",
    "ResultCache",
    "VerificationJob",
    "VerificationService",
    "jobs_from_bundle",
]
