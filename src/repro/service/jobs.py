"""Verification jobs: the unit of work of the batch verification service.

A :class:`VerificationJob` carries the *canonical dict forms* of its inputs
(system, property, options) rather than live model objects.  That makes jobs

* cheap to pickle across :class:`~concurrent.futures.ProcessPoolExecutor`
  process boundaries,
* content-addressable: two jobs built independently from structurally equal
  inputs share the same fingerprint and therefore one cache entry, and
* loadable straight from spec files without touching the model layer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Sequence

from repro.core.options import VerifierOptions
from repro.core.verifier import VerificationResult
from repro.has.artifact_system import ArtifactSystem
from repro.ltl.ltlfo import LTLFOProperty
from repro.spec.codec import dump_property, dump_system, load_property, load_system
from repro.spec.fingerprint import job_fingerprint


@dataclass
class VerificationJob:
    """One (system × property × options) verification request."""

    system_dict: Dict[str, Any]
    property_dict: Dict[str, Any]
    options_dict: Dict[str, Any]
    label: Optional[str] = None
    _fingerprint: Optional[str] = field(default=None, repr=False, compare=False)

    @classmethod
    def from_objects(
        cls,
        system: ArtifactSystem,
        ltl_property: LTLFOProperty,
        options: Optional[VerifierOptions] = None,
        label: Optional[str] = None,
    ) -> "VerificationJob":
        """Build a job from live model objects (canonicalised on the spot)."""
        return cls(
            system_dict=dump_system(system),
            property_dict=dump_property(ltl_property),
            options_dict=(options or VerifierOptions()).as_dict(),
            label=label,
        )

    @property
    def fingerprint(self) -> str:
        """Content hash of the job: identical inputs -> identical fingerprint."""
        if self._fingerprint is None:
            self._fingerprint = job_fingerprint(
                self.system_dict, self.property_dict, self.options_dict
            )
        return self._fingerprint

    @property
    def system_name(self) -> str:
        return self.system_dict.get("name", "artifact-system")

    @property
    def property_name(self) -> str:
        return self.property_dict.get("name", "<unnamed>")

    def describe(self) -> str:
        return self.label or f"{self.system_name} × {self.property_name}"

    # -- materialisation (used by workers) ------------------------------------

    def system(self) -> ArtifactSystem:
        return load_system(self.system_dict)

    def ltl_property(self) -> LTLFOProperty:
        return load_property(self.property_dict)

    def options(self) -> VerifierOptions:
        return VerifierOptions.from_dict(self.options_dict)


@dataclass
class JobResult:
    """The outcome of one job: the verification result plus cache provenance."""

    job: VerificationJob
    result: VerificationResult
    cache_hit: bool = False

    def summary(self) -> str:
        source = "cache" if self.cache_hit else "run"
        return f"{self.job.describe()}: {self.result.outcome.value} [{source}]"


def jobs_from_bundle(
    bundle: "SpecBundle",
    options: Optional[VerifierOptions] = None,
    property_names: Optional[Sequence[str]] = None,
) -> list:
    """One job per property of a spec bundle (optionally filtered by name)."""
    from repro.spec.bundle import SpecBundle  # local import avoids a cycle at import time

    assert isinstance(bundle, SpecBundle)
    system_dict = dump_system(bundle.system)
    options_dict = (options or VerifierOptions()).as_dict()
    selected = list(bundle.properties)
    if property_names is not None:
        selected = [bundle.property_named(name) for name in property_names]
    return [
        VerificationJob(
            system_dict=system_dict,
            property_dict=dump_property(ltl_property),
            options_dict=options_dict,
        )
        for ltl_property in selected
    ]
