"""``AsyncVerifasClient``: an asyncio client for the ``/v1`` API.

Stdlib-only, like its synchronous sibling: raw HTTP/1.1 over
``asyncio.open_connection`` (one short-lived ``Connection: close`` exchange
per request -- the server is thread-per-request anyway, so connection reuse
buys nothing), JSON in and out, the same :class:`ClientError` /
:class:`RemoteJobError` surface.  What asyncio adds is *concurrency shape*:

* every request passes through one bounded :class:`asyncio.Semaphore`, so a
  thousand-job :meth:`submit_many` or :meth:`as_completed` sweep holds at
  most ``concurrency`` sockets to the server at once;
* :meth:`as_completed` yields ``(job_id, view)`` pairs the moment each job
  turns terminal (batch status polling under the hood), instead of blocking
  on the slowest;
* :meth:`iter_events` is an async generator long-polling the event log --
  awaiting it costs no thread while the server holds the request open.

::

    client = AsyncVerifasClient(server.url)
    handles = await client.submit_many(payloads)
    async for job_id, view in client.as_completed([h.id for h in handles]):
        print(job_id, view["status"])

Python 3.9 compatible (no ``asyncio.timeout``; ``asyncio.wait_for`` bounds
each exchange).
"""

from __future__ import annotations

import asyncio
import json
from typing import Any, AsyncIterator, Dict, Iterator, List, Optional, Sequence, Tuple
from urllib.parse import quote, urlencode, urlsplit

from repro.client.http import (
    TERMINAL_STATES,
    ClientError,
    JobHandle,
    RemoteJobError,
    SpecRejectedError,
    build_submit_payload,
    default_api_key,
)
from repro.obs import format_traceparent, new_span_id, new_trace_id


class AsyncVerifasClient:
    """Asyncio client for one verification server's ``/v1`` API."""

    def __init__(
        self,
        base_url: str,
        timeout: float = 30.0,
        concurrency: int = 8,
        poll_initial: float = 0.05,
        poll_max: float = 2.0,
        poll_backoff: float = 1.6,
        push_events: bool = True,
        wait_ms: int = 10_000,
        trace_submissions: bool = True,
        api_key: Optional[str] = None,
        retry_throttled: bool = True,
        throttle_max_wait: float = 60.0,
    ):
        self.base_url = base_url.rstrip("/")
        split = urlsplit(
            self.base_url if "//" in self.base_url else f"http://{self.base_url}"
        )
        if split.scheme not in ("http", "https"):
            raise ValueError(f"unsupported URL scheme {split.scheme!r}")
        if split.hostname is None:
            raise ValueError(f"no host in base URL {base_url!r}")
        self._host = split.hostname
        self._ssl = split.scheme == "https"
        self._port = split.port if split.port is not None else (443 if self._ssl else 80)
        self._prefix = split.path.rstrip("/")
        self.timeout = timeout
        self.concurrency = max(1, int(concurrency))
        self.poll_initial = poll_initial
        self.poll_max = poll_max
        self.poll_backoff = poll_backoff
        #: Long-poll by default: the async client exists for event-driven
        #: consumption, and the server side has always supported it.
        self.push_events = push_events
        self.wait_ms = max(1, int(wait_ms))
        #: Whether submissions carry a fresh W3C ``traceparent`` header
        #: (mirrors the sync client).
        self.trace_submissions = trace_submissions
        #: API key sent as ``Authorization: Bearer`` on every request
        #: (mirrors the sync client; ``None`` means anonymous).
        self.api_key = api_key if api_key is not None else default_api_key()
        #: 429 handling (mirrors the sync client): retried after the
        #: server's ``Retry-After`` up to *throttle_max_wait* total seconds.
        self.retry_throttled = retry_throttled
        self.throttle_max_wait = throttle_max_wait
        # Created lazily inside a running loop: instantiating the client at
        # module import time (no loop yet) must work on Python 3.9, where a
        # Semaphore binds the loop that exists at construction.  Re-created
        # whenever the running loop changes, so one client object survives
        # several ``asyncio.run`` calls.
        self._semaphore: Optional[asyncio.Semaphore] = None
        self._semaphore_loop: Optional[asyncio.AbstractEventLoop] = None

    # ------------------------------------------------------------------ plumbing

    def _gate(self) -> asyncio.Semaphore:
        loop = asyncio.get_running_loop()
        if self._semaphore is None or self._semaphore_loop is not loop:
            self._semaphore = asyncio.Semaphore(self.concurrency)
            self._semaphore_loop = loop
        return self._semaphore

    async def _request(
        self,
        method: str,
        path: str,
        payload: Optional[Any] = None,
        timeout: Optional[float] = None,
        headers: Optional[Dict[str, str]] = None,
    ) -> Tuple[int, Dict[str, Any]]:
        body = json.dumps(payload).encode("utf-8") if payload is not None else b""
        auth = (
            f"Authorization: Bearer {self.api_key}\r\n" if self.api_key else ""
        )
        extra = "".join(
            f"{name}: {value}\r\n" for name, value in (headers or {}).items()
        )
        head = (
            f"{method} {self._prefix}{path} HTTP/1.1\r\n"
            f"Host: {self._host}:{self._port}\r\n"
            "Accept: application/json\r\n"
            "Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"{auth}"
            f"{extra}"
            "Connection: close\r\n"
            "\r\n"
        ).encode("ascii")
        budget = self.timeout if timeout is None else timeout
        throttle_budget = self.throttle_max_wait if self.retry_throttled else 0.0
        async with self._gate():
            while True:
                try:
                    return await asyncio.wait_for(
                        self._exchange(head + body, method, path), timeout=budget
                    )
                except asyncio.TimeoutError:
                    raise ClientError(
                        f"timed out after {budget}s on {method} {path}"
                    ) from None
                except ClientError as error:
                    retry_after = error.retry_after
                    if (
                        error.status == 429
                        and retry_after is not None
                        and retry_after <= throttle_budget
                    ):
                        # Honour the server's Retry-After instead of
                        # surfacing the 429 (mirrors the sync client).
                        throttle_budget -= retry_after
                        await asyncio.sleep(retry_after)
                        continue
                    raise
                except OSError as error:
                    raise ClientError(
                        f"cannot reach {self.base_url}: {error}"
                    ) from None

    async def _exchange(
        self, raw: bytes, method: str, path: str
    ) -> Tuple[int, Dict[str, Any]]:
        reader, writer = await asyncio.open_connection(
            self._host, self._port, ssl=True if self._ssl else None
        )
        try:
            writer.write(raw)
            await writer.drain()
            status_line = await reader.readline()
            parts = status_line.decode("latin-1").split(" ", 2)
            if len(parts) < 2 or not parts[1].isdigit():
                raise ClientError(
                    f"malformed status line {status_line!r} from {method} {path}"
                )
            status = int(parts[1])
            headers: Dict[str, str] = {}
            while True:
                line = await reader.readline()
                if line in (b"\r\n", b"\n", b""):
                    break
                name, _, value = line.decode("latin-1").partition(":")
                headers[name.strip().lower()] = value.strip()
            length = headers.get("content-length")
            if length is not None:
                data = await reader.readexactly(int(length))
            else:
                data = await reader.read()  # EOF-delimited (Connection: close)
            try:
                decoded = json.loads(data.decode("utf-8")) if data else {}
            except (ValueError, UnicodeDecodeError):
                decoded = {}
            body = decoded if isinstance(decoded, dict) else {}
            if status >= 400:
                retry_after: Optional[float] = None
                hint = body.get("retry_after")
                if isinstance(hint, (int, float)) and not isinstance(hint, bool):
                    # The body's float is more precise than the header,
                    # which HTTP rounds up to whole seconds.
                    retry_after = max(0.0, float(hint))
                elif "retry-after" in headers:
                    try:
                        retry_after = max(0.0, float(headers["retry-after"]))
                    except ValueError:
                        pass
                kind = SpecRejectedError if status == 422 else ClientError
                raise kind(
                    body.get("error", f"HTTP {status} on {method} {path}"),
                    status=status,
                    body=body,
                    retry_after=retry_after,
                )
            return status, body
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except OSError:  # pragma: no cover - peer reset during close
                pass

    def _backoff(self) -> Iterator[float]:
        delay = self.poll_initial
        while True:
            yield delay
            delay = min(self.poll_max, delay * self.poll_backoff)

    @staticmethod
    def _job_path(job_id: str) -> str:
        return f"/v1/jobs/{quote(str(job_id), safe='')}"

    # ------------------------------------------------------------------- basics

    async def healthz(self) -> Dict[str, Any]:
        return (await self._request("GET", "/v1/healthz"))[1]

    async def metrics(self) -> Dict[str, Any]:
        return (await self._request("GET", "/v1/metrics"))[1]

    # ------------------------------------------------------------------- submit

    async def submit(
        self,
        system: Dict[str, Any],
        properties: Sequence[Dict[str, Any]],
        options: Optional[Dict[str, Any]] = None,
        label: Optional[str] = None,
        ttl_seconds: Optional[float] = None,
        deadline_ms: Optional[int] = None,
        schema_version: int = 1,
    ) -> List[JobHandle]:
        """Submit one payload (canonical spec dicts); one handle per property."""
        return await self.submit_payload(
            build_submit_payload(
                system,
                properties,
                options=options,
                label=label,
                ttl_seconds=ttl_seconds,
                deadline_ms=deadline_ms,
                schema_version=schema_version,
            )
        )

    async def submit_payload(
        self, payload: Dict[str, Any], traceparent: Optional[str] = None
    ) -> List[JobHandle]:
        """Submit an already-built ``POST /v1/jobs`` payload.

        Mints and sends a fresh ``traceparent`` unless one is given (or
        :attr:`trace_submissions` is off), exactly like the sync client.
        """
        headers: Dict[str, str] = {}
        if traceparent is None and self.trace_submissions:
            traceparent = format_traceparent(new_trace_id(), new_span_id())
        if traceparent is not None:
            headers["traceparent"] = traceparent
        status, body = await self._request(
            "POST", "/v1/jobs", payload, headers=headers
        )
        if status != 202:
            raise ClientError(f"unexpected status {status} submitting jobs", status, body)
        return [JobHandle.from_dict(job) for job in body.get("jobs", [])]

    async def submit_many(
        self, payloads: Sequence[Dict[str, Any]]
    ) -> List[JobHandle]:
        """Submit every payload concurrently (bounded by the semaphore);
        returns the accepted handles flattened, in payload order."""
        results = await asyncio.gather(
            *(self.submit_payload(payload) for payload in payloads)
        )
        return [handle for handles in results for handle in handles]

    # -------------------------------------------------------------------- query

    async def job(self, job_id: str) -> Dict[str, Any]:
        """The current ``GET /v1/jobs/<id>`` view."""
        return (await self._request("GET", self._job_path(job_id)))[1]

    async def jobs(
        self, status: Optional[str] = None, limit: int = 100
    ) -> Dict[str, Any]:
        params: Dict[str, Any] = {"limit": limit}
        if status:
            params["status"] = status
        return (await self._request("GET", f"/v1/jobs?{urlencode(params)}"))[1]

    async def job_views(self, job_ids: Sequence[str]) -> Dict[str, Dict[str, Any]]:
        """Batch status ``{id: view}`` via ``GET /v1/jobs?id=a&id=b``
        (chunks of 100 ids per request; unknown ids absent)."""
        views: Dict[str, Dict[str, Any]] = {}
        ids = list(dict.fromkeys(str(job_id) for job_id in job_ids))
        chunks = [ids[start : start + 100] for start in range(0, len(ids), 100)]
        bodies = await asyncio.gather(
            *(
                self._request("GET", f"/v1/jobs?{urlencode([('id', j) for j in chunk])}")
                for chunk in chunks
            )
        )
        for _, body in bodies:
            for view in body.get("jobs", []):
                views[view["id"]] = view
        return views

    async def events(
        self,
        job_id: str,
        cursor: int = 0,
        limit: int = 500,
        wait_ms: Optional[int] = None,
    ) -> Dict[str, Any]:
        """One events page; with *wait_ms* the request long-polls."""
        params: Dict[str, Any] = {"cursor": cursor, "limit": limit}
        timeout = None
        if wait_ms is not None:
            params["wait_ms"] = max(1, int(wait_ms))
            timeout = self.timeout + params["wait_ms"] / 1000.0
        query = urlencode(params)
        return (
            await self._request(
                "GET", f"{self._job_path(job_id)}/events?{query}", timeout=timeout
            )
        )[1]

    async def trace(self, job_id: str) -> Dict[str, Any]:
        """The job's span tree: ``GET /v1/jobs/<id>/trace``."""
        return (await self._request("GET", f"{self._job_path(job_id)}/trace"))[1]

    async def cancel(self, job_id: str) -> Dict[str, Any]:
        """``DELETE /v1/jobs/<id>``: cooperative cancellation."""
        return (await self._request("DELETE", self._job_path(job_id)))[1]

    # ------------------------------------------------------------------ waiting

    async def wait(
        self,
        job_id: str,
        deadline_seconds: float = 300.0,
        raise_on_error: bool = True,
    ) -> Dict[str, Any]:
        """Poll (exponential backoff) until the job is terminal; returns its view."""
        loop = asyncio.get_event_loop()
        deadline = loop.time() + deadline_seconds
        for delay in self._backoff():
            view = await self.job(job_id)
            if view.get("status") in TERMINAL_STATES:
                if raise_on_error and view.get("status") == "error":
                    raise RemoteJobError(
                        view.get("error", f"job {job_id} failed"), body=view
                    )
                return view
            remaining = deadline - loop.time()
            if remaining <= 0:
                raise TimeoutError(
                    f"job {job_id} still {view.get('status')!r} after {deadline_seconds}s"
                )
            await asyncio.sleep(min(delay, remaining))
        raise AssertionError("unreachable")  # pragma: no cover

    async def as_completed(
        self, job_ids: Sequence[str], deadline_seconds: float = 300.0
    ) -> AsyncIterator[Tuple[str, Dict[str, Any]]]:
        """Yield ``(job_id, view)`` as each job turns terminal.

        One batch-status request per backoff round covers every pending job;
        jobs are yielded the moment their terminal view is observed --
        submission order does not gate consumption.  Raises
        :class:`ClientError` for an unknown id, :class:`TimeoutError` at the
        deadline with jobs still pending.
        """
        loop = asyncio.get_event_loop()
        deadline = loop.time() + deadline_seconds
        pending = list(dict.fromkeys(str(job_id) for job_id in job_ids))
        if not pending:
            return
        backoff = self._backoff()
        while True:
            batch = await self.job_views(pending)
            missing = [job_id for job_id in pending if job_id not in batch]
            if missing:
                raise ClientError(f"no job with id {missing[0]!r}", status=404, body={})
            still_pending = []
            finished = []
            for job_id in pending:
                view = batch[job_id]
                if view.get("status") in TERMINAL_STATES:
                    finished.append((job_id, view))
                else:
                    still_pending.append(job_id)
            pending = still_pending
            for job_id, view in finished:
                yield job_id, view
            if not pending:
                return
            if finished:
                backoff = self._backoff()  # progress: restart the backoff
            remaining = deadline - loop.time()
            if remaining <= 0:
                raise TimeoutError(
                    f"{len(pending)} job(s) still unfinished after {deadline_seconds}s"
                )
            await asyncio.sleep(min(next(backoff), remaining))

    async def wait_all(
        self, job_ids: Sequence[str], deadline_seconds: float = 300.0
    ) -> Dict[str, Dict[str, Any]]:
        """Wait for every job id; returns ``{id: terminal view}``."""
        views: Dict[str, Dict[str, Any]] = {}
        async for job_id, view in self.as_completed(
            job_ids, deadline_seconds=deadline_seconds
        ):
            views[job_id] = view
        return views

    async def iter_events(
        self,
        job_id: str,
        deadline_seconds: float = 300.0,
        poll_limit: int = 500,
        push: Optional[bool] = None,
    ) -> AsyncIterator[Dict[str, Any]]:
        """Yield the job's progress events (oldest first) until it is terminal.

        Push mode (the default) long-polls, so awaiting this generator costs
        no requests while nothing happens; poll mode backs off client-side.
        Same termination rule as the sync client: a terminal page shorter
        than *poll_limit* ends iteration with no extra round-trip.
        """
        push = self.push_events if push is None else push
        loop = asyncio.get_event_loop()
        deadline = loop.time() + deadline_seconds
        cursor = 0
        backoff = self._backoff()
        while True:
            wait_ms: Optional[int] = None
            if push:
                remaining_ms = int((deadline - loop.time()) * 1000)
                if remaining_ms <= 0:
                    raise TimeoutError(
                        f"job {job_id} still emitting after {deadline_seconds}s"
                    )
                wait_ms = min(self.wait_ms, max(1, remaining_ms))
            page = await self.events(
                job_id, cursor=cursor, limit=poll_limit, wait_ms=wait_ms
            )
            events = page.get("events", [])
            for event in events:
                cursor = max(cursor, int(event.get("seq", cursor)))
                yield event
            if page.get("terminal") and len(events) < poll_limit:
                return
            if events:
                backoff = self._backoff()
                continue
            if push:
                continue
            remaining = deadline - loop.time()
            if remaining <= 0:
                raise TimeoutError(
                    f"job {job_id} still emitting after {deadline_seconds}s"
                )
            await asyncio.sleep(min(next(backoff), remaining))
