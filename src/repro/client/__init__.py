"""The Python client library for the ``/v1`` verification API.

Pure stdlib (``urllib``): submit jobs, poll with exponential backoff, stream
progress events, cancel.  Used by ``python -m repro batch --remote`` and the
test suite, so neither has to hand-roll HTTP calls::

    from repro.client import VerifasClient

    client = VerifasClient("http://127.0.0.1:8080")
    jobs = client.submit(system_dict, properties=[prop_dict],
                         options={"timeout_seconds": 30}, deadline_ms=60_000)
    for event in client.iter_events(jobs[0].id):
        print(event["kind"], event.get("data"))
    view = client.wait(jobs[0].id)
    client.cancel(jobs[0].id)
"""

from repro.client.http import (
    ClientError,
    JobHandle,
    RemoteJobError,
    VerifasClient,
)

__all__ = [
    "ClientError",
    "JobHandle",
    "RemoteJobError",
    "VerifasClient",
]
