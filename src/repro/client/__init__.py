"""The Python client library for the ``/v1`` verification API.

Pure stdlib: submit jobs, stream progress events (long-poll push by default
in the async client, opt-in in the sync one), poll with exponential backoff
as the fallback, cancel.  Used by ``python -m repro batch --remote`` and the
test suite, so neither has to hand-roll HTTP calls.

Synchronous (``urllib``)::

    from repro.client import VerifasClient

    client = VerifasClient("http://127.0.0.1:8080")
    jobs = client.submit(system_dict, properties=[prop_dict],
                         options={"timeout_seconds": 30}, deadline_ms=60_000)
    for event in client.iter_events(jobs[0].id):
        print(event["kind"], event.get("data"))
    view = client.wait(jobs[0].id)
    client.cancel(jobs[0].id)

Asyncio (bounded-concurrency fan-out, completion-order consumption)::

    from repro.client import AsyncVerifasClient

    client = AsyncVerifasClient("http://127.0.0.1:8080", concurrency=8)
    handles = await client.submit_many(payloads)
    async for job_id, view in client.as_completed([h.id for h in handles]):
        print(job_id, view["status"])
"""

from repro.client.aio import AsyncVerifasClient
from repro.client.http import (
    ClientError,
    JobHandle,
    RemoteJobError,
    SpecRejectedError,
    VerifasClient,
    auth_headers,
    build_submit_payload,
    default_api_key,
)

__all__ = [
    "AsyncVerifasClient",
    "ClientError",
    "JobHandle",
    "RemoteJobError",
    "SpecRejectedError",
    "VerifasClient",
    "auth_headers",
    "build_submit_payload",
    "default_api_key",
]
