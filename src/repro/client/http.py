"""``VerifasClient``: a stdlib-only HTTP client for the ``/v1`` API.

The client is deliberately boring: synchronous ``urllib`` calls, JSON in and
out, exponential-backoff polling with a hard deadline.  Transport and HTTP
errors surface as :class:`ClientError`; a job that reaches the ``error``
lifecycle state surfaces as :class:`RemoteJobError` from :meth:`wait`.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from dataclasses import dataclass
from urllib.parse import quote, urlencode
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

#: Lifecycle states after which a job can never change again.
TERMINAL_STATES = ("done", "error", "cancelled")


class ClientError(Exception):
    """Transport-level or HTTP-level failure of one API call."""

    def __init__(self, message: str, status: Optional[int] = None,
                 body: Optional[Dict[str, Any]] = None):
        super().__init__(message)
        self.status = status
        self.body = body or {}


class RemoteJobError(ClientError):
    """A waited-on job finished in the ``error`` lifecycle state."""


@dataclass(frozen=True)
class JobHandle:
    """One accepted job, as returned by ``POST /v1/jobs``."""

    id: str
    fingerprint: str
    system: str
    property: str
    status: str
    url: str

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "JobHandle":
        return cls(
            id=data["id"],
            fingerprint=data["fingerprint"],
            system=data.get("system", ""),
            property=data.get("property", ""),
            status=data.get("status", "queued"),
            url=data.get("url", f"/v1/jobs/{quote(str(data['id']), safe='')}"),
        )


class VerifasClient:
    """Synchronous client for one verification server's ``/v1`` API."""

    def __init__(
        self,
        base_url: str,
        timeout: float = 30.0,
        poll_initial: float = 0.05,
        poll_max: float = 2.0,
        poll_backoff: float = 1.6,
    ):
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        #: Exponential-backoff polling parameters (first wait, cap, factor).
        self.poll_initial = poll_initial
        self.poll_max = poll_max
        self.poll_backoff = poll_backoff

    # ------------------------------------------------------------------ plumbing

    def _request(
        self, method: str, path: str, payload: Optional[Any] = None
    ) -> Tuple[int, Dict[str, Any]]:
        data = json.dumps(payload).encode("utf-8") if payload is not None else None
        request = urllib.request.Request(
            f"{self.base_url}{path}",
            data=data,
            method=method,
            headers={"Content-Type": "application/json"},
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                return response.status, json.load(response)
        except urllib.error.HTTPError as error:
            try:
                body = json.loads(error.read().decode("utf-8"))
            except (ValueError, UnicodeDecodeError):
                body = {}
            raise ClientError(
                body.get("error", f"HTTP {error.code} on {method} {path}"),
                status=error.code,
                body=body,
            ) from None
        except (urllib.error.URLError, OSError) as error:
            raise ClientError(f"cannot reach {self.base_url}: {error}") from None

    # ------------------------------------------------------------------- basics

    def healthz(self) -> Dict[str, Any]:
        return self._request("GET", "/v1/healthz")[1]

    def metrics(self) -> Dict[str, Any]:
        return self._request("GET", "/v1/metrics")[1]

    # ------------------------------------------------------------------- submit

    def submit(
        self,
        system: Dict[str, Any],
        properties: Sequence[Dict[str, Any]],
        options: Optional[Dict[str, Any]] = None,
        label: Optional[str] = None,
        ttl_seconds: Optional[float] = None,
        deadline_ms: Optional[int] = None,
        schema_version: int = 1,
    ) -> List[JobHandle]:
        """Submit one payload (canonical spec dicts); one handle per property."""
        payload: Dict[str, Any] = {
            "schema_version": schema_version,
            "system": system,
            "properties": list(properties),
        }
        if options is not None:
            payload["options"] = options
        if label is not None:
            payload["label"] = label
        if ttl_seconds is not None:
            payload["ttl_seconds"] = ttl_seconds
        if deadline_ms is not None:
            payload["deadline_ms"] = deadline_ms
        return self.submit_payload(payload)

    def submit_payload(self, payload: Dict[str, Any]) -> List[JobHandle]:
        """Submit an already-built ``POST /v1/jobs`` payload."""
        status, body = self._request("POST", "/v1/jobs", payload)
        if status != 202:
            raise ClientError(f"unexpected status {status} submitting jobs", status, body)
        return [JobHandle.from_dict(job) for job in body.get("jobs", [])]

    # -------------------------------------------------------------------- query

    @staticmethod
    def _job_path(job_id: str) -> str:
        # Percent-escape the id as a single path segment: an id containing
        # `/`, `?`, `#` or spaces (e.g. attacker-controlled) must neither
        # break the request line nor resolve to a different route.
        return f"/v1/jobs/{quote(str(job_id), safe='')}"

    def job(self, job_id: str) -> Dict[str, Any]:
        """The current ``GET /v1/jobs/<id>`` view."""
        return self._request("GET", self._job_path(job_id))[1]

    def jobs(self, status: Optional[str] = None, limit: int = 100) -> Dict[str, Any]:
        params: Dict[str, Any] = {"limit": limit}
        if status:
            params["status"] = status
        return self._request("GET", f"/v1/jobs?{urlencode(params)}")[1]

    def events(
        self, job_id: str, cursor: int = 0, limit: int = 500
    ) -> Dict[str, Any]:
        """One ``GET /v1/jobs/<id>/events`` page starting after *cursor*."""
        query = urlencode({"cursor": cursor, "limit": limit})
        return self._request("GET", f"{self._job_path(job_id)}/events?{query}")[1]

    # ------------------------------------------------------------------- cancel

    def cancel(self, job_id: str) -> Dict[str, Any]:
        """``DELETE /v1/jobs/<id>``: cooperative cancellation."""
        return self._request("DELETE", self._job_path(job_id))[1]

    # ------------------------------------------------------------------ waiting

    def _backoff(self) -> Iterator[float]:
        delay = self.poll_initial
        while True:
            yield delay
            delay = min(self.poll_max, delay * self.poll_backoff)

    def wait(
        self,
        job_id: str,
        deadline_seconds: float = 300.0,
        raise_on_error: bool = True,
    ) -> Dict[str, Any]:
        """Poll (exponential backoff) until the job is terminal; returns its view.

        Raises :class:`RemoteJobError` when the job ends in the ``error``
        state (unless *raise_on_error* is false) and :class:`TimeoutError`
        when *deadline_seconds* elapses first.
        """
        deadline = time.monotonic() + deadline_seconds
        for delay in self._backoff():
            view = self.job(job_id)
            if view.get("status") in TERMINAL_STATES:
                if raise_on_error and view.get("status") == "error":
                    raise RemoteJobError(
                        view.get("error", f"job {job_id} failed"), body=view
                    )
                return view
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise TimeoutError(
                    f"job {job_id} still {view.get('status')!r} after {deadline_seconds}s"
                )
            # Never sleep past the deadline: the loop always gets one final
            # poll at (roughly) the deadline before giving up.
            time.sleep(min(delay, remaining))
        raise AssertionError("unreachable")  # pragma: no cover

    def wait_all(
        self, job_ids: Sequence[str], deadline_seconds: float = 300.0
    ) -> Dict[str, Dict[str, Any]]:
        """Wait for every job id; returns ``{id: terminal view}``."""
        deadline = time.monotonic() + deadline_seconds
        views: Dict[str, Dict[str, Any]] = {}
        for job_id in job_ids:
            remaining = max(0.0, deadline - time.monotonic())
            views[job_id] = self.wait(
                job_id, deadline_seconds=remaining, raise_on_error=False
            )
        return views

    def iter_events(
        self,
        job_id: str,
        deadline_seconds: float = 300.0,
        poll_limit: int = 500,
    ) -> Iterator[Dict[str, Any]]:
        """Yield the job's progress events (oldest first) until it is terminal.

        Polls ``GET /v1/jobs/<id>/events`` with a cursor and exponential
        backoff (reset whenever new events arrive), then drains the final
        page after the job lands so no event is missed.
        """
        deadline = time.monotonic() + deadline_seconds
        cursor = 0
        backoff = self._backoff()
        while True:
            page = self.events(job_id, cursor=cursor, limit=poll_limit)
            for event in page.get("events", []):
                cursor = max(cursor, int(event.get("seq", cursor)))
                yield event
            if page.get("terminal") and not page.get("events"):
                return
            if page.get("events"):
                backoff = self._backoff()  # progress: restart the backoff
                continue
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise TimeoutError(f"job {job_id} still emitting after {deadline_seconds}s")
            # Never sleep past the deadline: one final page fetch happens at
            # (roughly) the deadline before giving up.
            time.sleep(min(next(backoff), remaining))
