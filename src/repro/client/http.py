"""``VerifasClient``: a stdlib-only HTTP client for the ``/v1`` API.

The client is deliberately boring: synchronous ``urllib`` calls, JSON in and
out, exponential-backoff polling with a hard deadline.  Transport and HTTP
errors surface as :class:`ClientError`; a job that reaches the ``error``
lifecycle state surfaces as :class:`RemoteJobError` from :meth:`wait`.

Event delivery has two modes.  ``push_events=True`` makes
:meth:`iter_events` *long-poll*: each page request carries ``?wait_ms=`` and
the server holds it open until events arrive or the job turns terminal, so a
job emitting N events is observed in about ``ceil(N / limit) + 1`` requests
with no client-side sleeping.  The default is fixed-cadence cursor polling
with exponential backoff -- the fallback path that works against any server
and degrades gracefully, at the cost of one request per poll tick.
(``REPRO_TEST_PUSH_EVENTS=1`` flips the default to push: the CI hook that
re-runs the e2e suites over long-poll delivery.)
"""

from __future__ import annotations

import json
import os
import time
import urllib.error
import urllib.request
from dataclasses import dataclass
from urllib.parse import quote, urlencode
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.obs import format_traceparent, new_span_id, new_trace_id
from repro.tenancy import DEFAULT_TEST_API_KEY

#: Lifecycle states after which a job can never change again.
TERMINAL_STATES = ("done", "error", "cancelled")


def default_api_key() -> Optional[str]:
    """The API key a default-constructed client should send, if any.

    ``REPRO_API_KEY`` wins; under the test hook ``REPRO_TEST_AUTH=1`` the
    bootstrap test tenant's key (``REPRO_TEST_API_KEY`` override or the
    well-known default) is used, so the existing suites run unchanged
    against an auth-enabled server.  ``None`` means anonymous.
    """
    key = os.environ.get("REPRO_API_KEY")
    if key:
        return key
    if os.environ.get("REPRO_TEST_AUTH", "") == "1":
        return os.environ.get("REPRO_TEST_API_KEY", DEFAULT_TEST_API_KEY)
    return None


def _retry_after_seconds(
    error: "urllib.error.HTTPError", body: Dict[str, Any]
) -> Optional[float]:
    """The server's retry hint, if any: the JSON body's float is preferred
    over the ``Retry-After`` header (which HTTP rounds up to whole seconds)."""
    value = body.get("retry_after")
    if isinstance(value, (int, float)) and not isinstance(value, bool):
        return max(0.0, float(value))
    header = error.headers.get("Retry-After") if error.headers else None
    if header is not None:
        try:
            return max(0.0, float(header))
        except ValueError:
            pass
    return None


def auth_headers() -> Dict[str, str]:
    """``{"Authorization": ...}`` for raw-``urllib`` callers (tests, curl
    helpers); empty when no default key applies."""
    key = default_api_key()
    return {"Authorization": f"Bearer {key}"} if key else {}


class ClientError(Exception):
    """Transport-level or HTTP-level failure of one API call.

    ``retry_after`` is set (seconds) on 429 responses that advertised one,
    after the client's own throttle-retry budget was exhausted.
    """

    def __init__(self, message: str, status: Optional[int] = None,
                 body: Optional[Dict[str, Any]] = None,
                 retry_after: Optional[float] = None):
        super().__init__(message)
        self.status = status
        self.body = body or {}
        self.retry_after = retry_after


class RemoteJobError(ClientError):
    """A waited-on job finished in the ``error`` lifecycle state."""


class SpecRejectedError(ClientError):
    """The server's static analysis rejected the submitted spec (HTTP 422).

    ``diagnostics`` carries the error-severity records from the response
    body: a list of dicts with stable ``code`` (``VAxxx``), ``severity``,
    ``message`` and ``where`` keys -- the same shape ``python -m repro lint
    --json`` emits, so one remediation path serves both.
    """

    @property
    def diagnostics(self) -> List[Dict[str, Any]]:
        diagnostics = self.body.get("diagnostics")
        return list(diagnostics) if isinstance(diagnostics, list) else []


@dataclass(frozen=True)
class JobHandle:
    """One accepted job, as returned by ``POST /v1/jobs``."""

    id: str
    fingerprint: str
    system: str
    property: str
    status: str
    url: str
    #: The distributed trace the job joined (present when the submit carried
    #: a ``traceparent`` or the server runs with tracing on).
    trace_id: Optional[str] = None

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "JobHandle":
        return cls(
            id=data["id"],
            fingerprint=data["fingerprint"],
            system=data.get("system", ""),
            property=data.get("property", ""),
            status=data.get("status", "queued"),
            url=data.get("url", f"/v1/jobs/{quote(str(data['id']), safe='')}"),
            trace_id=data.get("trace_id"),
        )


def build_submit_payload(
    system: Dict[str, Any],
    properties: Sequence[Dict[str, Any]],
    options: Optional[Dict[str, Any]] = None,
    label: Optional[str] = None,
    ttl_seconds: Optional[float] = None,
    deadline_ms: Optional[int] = None,
    schema_version: int = 1,
) -> Dict[str, Any]:
    """The ``POST /v1/jobs`` payload for these inputs (shared by both clients)."""
    payload: Dict[str, Any] = {
        "schema_version": schema_version,
        "system": system,
        "properties": list(properties),
    }
    if options is not None:
        payload["options"] = options
    if label is not None:
        payload["label"] = label
    if ttl_seconds is not None:
        payload["ttl_seconds"] = ttl_seconds
    if deadline_ms is not None:
        payload["deadline_ms"] = deadline_ms
    return payload


class VerifasClient:
    """Synchronous client for one verification server's ``/v1`` API."""

    def __init__(
        self,
        base_url: str,
        timeout: float = 30.0,
        poll_initial: float = 0.05,
        poll_max: float = 2.0,
        poll_backoff: float = 1.6,
        push_events: Optional[bool] = None,
        wait_ms: int = 10_000,
        trace_submissions: bool = True,
        api_key: Optional[str] = None,
        retry_throttled: bool = True,
        throttle_max_wait: float = 60.0,
    ):
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        #: API key sent as ``Authorization: Bearer`` on every request.
        #: Defaults from the environment (see :func:`default_api_key`);
        #: ``None`` means anonymous.
        self.api_key = api_key if api_key is not None else default_api_key()
        #: Whether 429 responses are retried after their ``Retry-After``.
        self.retry_throttled = retry_throttled
        #: Total seconds one call may spend sleeping on 429s before the
        #: :class:`ClientError` (with ``retry_after`` set) surfaces.
        self.throttle_max_wait = throttle_max_wait
        #: Whether :meth:`submit_payload` injects a W3C ``traceparent``
        #: header (a fresh trace per submission).  Costs two uuid4s and one
        #: header; against an untraced server it still stamps the job rows
        #: for /events correlation, so it defaults on.
        self.trace_submissions = trace_submissions
        #: Exponential-backoff polling parameters (first wait, cap, factor).
        self.poll_initial = poll_initial
        self.poll_max = poll_max
        self.poll_backoff = poll_backoff
        if push_events is None:
            # The documented test/ops hook: flips every default-constructed
            # client (test suites, the CLI) to long-poll delivery so the
            # same e2e suites exercise the push path end to end.
            push_events = os.environ.get("REPRO_TEST_PUSH_EVENTS", "") == "1"
        #: Whether :meth:`iter_events` long-polls by default (see module doc).
        self.push_events = push_events
        #: Long-poll window per request (the server clamps to its own cap).
        self.wait_ms = max(1, int(wait_ms))

    # ------------------------------------------------------------------ plumbing

    def _request(
        self,
        method: str,
        path: str,
        payload: Optional[Any] = None,
        timeout: Optional[float] = None,
        headers: Optional[Dict[str, str]] = None,
    ) -> Tuple[int, Dict[str, Any]]:
        data = json.dumps(payload).encode("utf-8") if payload is not None else None
        request_headers = {"Content-Type": "application/json"}
        if self.api_key:
            request_headers["Authorization"] = f"Bearer {self.api_key}"
        if headers:
            request_headers.update(headers)
        throttle_budget = self.throttle_max_wait if self.retry_throttled else 0.0
        while True:
            request = urllib.request.Request(
                f"{self.base_url}{path}",
                data=data,
                method=method,
                headers=request_headers,
            )
            try:
                with urllib.request.urlopen(
                    request, timeout=self.timeout if timeout is None else timeout
                ) as response:
                    return response.status, json.load(response)
            except urllib.error.HTTPError as error:
                try:
                    body = json.loads(error.read().decode("utf-8"))
                except (ValueError, UnicodeDecodeError):
                    body = {}
                retry_after = _retry_after_seconds(error, body)
                if (
                    error.code == 429
                    and retry_after is not None
                    and retry_after <= throttle_budget
                ):
                    # The server said exactly how long until the submit can
                    # succeed; honour it rather than surfacing the 429.
                    throttle_budget -= retry_after
                    time.sleep(retry_after)
                    continue
                kind = SpecRejectedError if error.code == 422 else ClientError
                raise kind(
                    body.get("error", f"HTTP {error.code} on {method} {path}"),
                    status=error.code,
                    body=body,
                    retry_after=retry_after,
                ) from None
            except (urllib.error.URLError, OSError) as error:
                raise ClientError(f"cannot reach {self.base_url}: {error}") from None

    # ------------------------------------------------------------------- basics

    def healthz(self) -> Dict[str, Any]:
        return self._request("GET", "/v1/healthz")[1]

    def readyz(self) -> Tuple[bool, Dict[str, Any]]:
        """``GET /v1/readyz``: ``(ready, body)`` -- a 503 is a verdict, not
        an error, so it is returned rather than raised."""
        try:
            status, body = self._request("GET", "/v1/readyz")
        except ClientError as error:
            if error.status == 503 and "checks" in error.body:
                return False, error.body
            raise
        return status == 200, body

    def metrics(self) -> Dict[str, Any]:
        return self._request("GET", "/v1/metrics")[1]

    def metrics_prometheus(self) -> str:
        """The Prometheus text exposition of ``GET /v1/metrics``."""
        request = urllib.request.Request(
            f"{self.base_url}/v1/metrics?format=prometheus", method="GET"
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                return response.read().decode("utf-8")
        except urllib.error.HTTPError as error:
            raise ClientError(
                f"HTTP {error.code} on GET /v1/metrics", status=error.code
            ) from None
        except (urllib.error.URLError, OSError) as error:
            raise ClientError(f"cannot reach {self.base_url}: {error}") from None

    # ------------------------------------------------------------------- submit

    def submit(
        self,
        system: Dict[str, Any],
        properties: Sequence[Dict[str, Any]],
        options: Optional[Dict[str, Any]] = None,
        label: Optional[str] = None,
        ttl_seconds: Optional[float] = None,
        deadline_ms: Optional[int] = None,
        schema_version: int = 1,
    ) -> List[JobHandle]:
        """Submit one payload (canonical spec dicts); one handle per property."""
        return self.submit_payload(
            build_submit_payload(
                system,
                properties,
                options=options,
                label=label,
                ttl_seconds=ttl_seconds,
                deadline_ms=deadline_ms,
                schema_version=schema_version,
            )
        )

    def submit_payload(
        self, payload: Dict[str, Any], traceparent: Optional[str] = None
    ) -> List[JobHandle]:
        """Submit an already-built ``POST /v1/jobs`` payload.

        With :attr:`trace_submissions` on (the default) and no explicit
        *traceparent*, a fresh trace context is minted and sent as the W3C
        ``traceparent`` header: the server's spans -- and, with tracing
        enabled there, the whole queue-wait/worker/search span tree --
        parent under this submission.
        """
        headers: Dict[str, str] = {}
        if traceparent is None and self.trace_submissions:
            traceparent = format_traceparent(new_trace_id(), new_span_id())
        if traceparent is not None:
            headers["traceparent"] = traceparent
        status, body = self._request("POST", "/v1/jobs", payload, headers=headers)
        if status != 202:
            raise ClientError(f"unexpected status {status} submitting jobs", status, body)
        return [JobHandle.from_dict(job) for job in body.get("jobs", [])]

    # -------------------------------------------------------------------- query

    @staticmethod
    def _job_path(job_id: str) -> str:
        # Percent-escape the id as a single path segment: an id containing
        # `/`, `?`, `#` or spaces (e.g. attacker-controlled) must neither
        # break the request line nor resolve to a different route.
        return f"/v1/jobs/{quote(str(job_id), safe='')}"

    def job(self, job_id: str) -> Dict[str, Any]:
        """The current ``GET /v1/jobs/<id>`` view."""
        return self._request("GET", self._job_path(job_id))[1]

    def jobs(self, status: Optional[str] = None, limit: int = 100) -> Dict[str, Any]:
        params: Dict[str, Any] = {"limit": limit}
        if status:
            params["status"] = status
        return self._request("GET", f"/v1/jobs?{urlencode(params)}")[1]

    def job_views(self, job_ids: Sequence[str]) -> Dict[str, Dict[str, Any]]:
        """Batch status: ``{id: view}`` via ``GET /v1/jobs?id=a&id=b``.

        One request per 100 ids (bounding the query string); results for
        done jobs are included in each view, so no follow-up GET per job is
        needed.  Unknown ids are simply absent from the mapping.
        """
        views: Dict[str, Dict[str, Any]] = {}
        ids = list(dict.fromkeys(str(job_id) for job_id in job_ids))
        for start in range(0, len(ids), 100):
            chunk = ids[start : start + 100]
            query = urlencode([("id", job_id) for job_id in chunk])
            body = self._request("GET", f"/v1/jobs?{query}")[1]
            for view in body.get("jobs", []):
                views[view["id"]] = view
        return views

    def events(
        self,
        job_id: str,
        cursor: int = 0,
        limit: int = 500,
        wait_ms: Optional[int] = None,
    ) -> Dict[str, Any]:
        """One ``GET /v1/jobs/<id>/events`` page starting after *cursor*.

        With *wait_ms* the request long-polls: the server holds it open up
        to that many milliseconds waiting for news (the HTTP timeout is
        widened to cover the window).
        """
        params: Dict[str, Any] = {"cursor": cursor, "limit": limit}
        if wait_ms is not None:
            params["wait_ms"] = max(1, int(wait_ms))
            query = urlencode(params)
            return self._request(
                "GET",
                f"{self._job_path(job_id)}/events?{query}",
                timeout=self.timeout + params["wait_ms"] / 1000.0,
            )[1]
        query = urlencode(params)
        return self._request("GET", f"{self._job_path(job_id)}/events?{query}")[1]

    def trace(self, job_id: str) -> Dict[str, Any]:
        """The job's span tree: ``GET /v1/jobs/<id>/trace``."""
        return self._request("GET", f"{self._job_path(job_id)}/trace")[1]

    # ------------------------------------------------------------------- cancel

    def cancel(self, job_id: str) -> Dict[str, Any]:
        """``DELETE /v1/jobs/<id>``: cooperative cancellation."""
        return self._request("DELETE", self._job_path(job_id))[1]

    # ------------------------------------------------------------------ waiting

    def _backoff(self) -> Iterator[float]:
        delay = self.poll_initial
        while True:
            yield delay
            delay = min(self.poll_max, delay * self.poll_backoff)

    def wait(
        self,
        job_id: str,
        deadline_seconds: float = 300.0,
        raise_on_error: bool = True,
    ) -> Dict[str, Any]:
        """Poll (exponential backoff) until the job is terminal; returns its view.

        Raises :class:`RemoteJobError` when the job ends in the ``error``
        state (unless *raise_on_error* is false) and :class:`TimeoutError`
        when *deadline_seconds* elapses first.
        """
        deadline = time.monotonic() + deadline_seconds
        for delay in self._backoff():
            view = self.job(job_id)
            if view.get("status") in TERMINAL_STATES:
                if raise_on_error and view.get("status") == "error":
                    raise RemoteJobError(
                        view.get("error", f"job {job_id} failed"), body=view
                    )
                return view
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise TimeoutError(
                    f"job {job_id} still {view.get('status')!r} after {deadline_seconds}s"
                )
            # Never sleep past the deadline: the loop always gets one final
            # poll at (roughly) the deadline before giving up.
            time.sleep(min(delay, remaining))
        raise AssertionError("unreachable")  # pragma: no cover

    def wait_all(
        self, job_ids: Sequence[str], deadline_seconds: float = 300.0
    ) -> Dict[str, Dict[str, Any]]:
        """Wait for every job id; returns ``{id: terminal view}``.

        Polls the *batch* status view (``GET /v1/jobs?id=a&id=b``): each
        backoff round is one round-trip covering every still-pending job, so
        a slow first job can no longer burn the whole deadline before the
        others are even looked at, and N jobs no longer cost N requests per
        poll.  Jobs that ended in ``error`` are returned like any other
        terminal view (no raise -- callers inspect ``status``).  Raises
        :class:`ClientError` for an unknown id and :class:`TimeoutError`
        when *deadline_seconds* elapses with jobs still unfinished.
        """
        deadline = time.monotonic() + deadline_seconds
        pending = list(dict.fromkeys(str(job_id) for job_id in job_ids))
        views: Dict[str, Dict[str, Any]] = {}
        if not pending:
            return views
        for delay in self._backoff():
            batch = self.job_views(pending)
            missing = [job_id for job_id in pending if job_id not in batch]
            if missing:
                raise ClientError(
                    f"no job with id {missing[0]!r}", status=404, body={}
                )
            still_pending = []
            for job_id in pending:
                view = batch[job_id]
                if view.get("status") in TERMINAL_STATES:
                    views[job_id] = view
                else:
                    still_pending.append(job_id)
            pending = still_pending
            if not pending:
                return views
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise TimeoutError(
                    f"{len(pending)} job(s) still unfinished after {deadline_seconds}s"
                )
            time.sleep(min(delay, remaining))
        raise AssertionError("unreachable")  # pragma: no cover

    def iter_events(
        self,
        job_id: str,
        deadline_seconds: float = 300.0,
        poll_limit: int = 500,
        push: Optional[bool] = None,
    ) -> Iterator[Dict[str, Any]]:
        """Yield the job's progress events (oldest first) until it is terminal.

        In push mode (*push*, default :attr:`push_events`) each page request
        long-polls -- the server holds it open until events arrive or the
        job turns terminal -- so the client never sleeps and a job emitting
        N events costs about ``ceil(N / poll_limit) + 1`` requests.  In poll
        mode, pages are fetched on an exponential backoff (reset whenever
        new events arrive).

        Either way iteration ends as soon as a ``terminal`` page has been
        drained *and* proved complete: a terminal page shorter than
        *poll_limit* cannot have truncated the log, so no extra empty-page
        round-trip is spent confirming it.
        """
        push = self.push_events if push is None else push
        deadline = time.monotonic() + deadline_seconds
        cursor = 0
        backoff = self._backoff()
        while True:
            wait_ms: Optional[int] = None
            if push:
                remaining_ms = int((deadline - time.monotonic()) * 1000)
                if remaining_ms <= 0:
                    raise TimeoutError(
                        f"job {job_id} still emitting after {deadline_seconds}s"
                    )
                wait_ms = min(self.wait_ms, max(1, remaining_ms))
            page = self.events(job_id, cursor=cursor, limit=poll_limit, wait_ms=wait_ms)
            events = page.get("events", [])
            for event in events:
                cursor = max(cursor, int(event.get("seq", cursor)))
                yield event
            if page.get("terminal") and len(events) < poll_limit:
                # Terminal and the page was not full: the log is drained.
                # (A full terminal page loops straight back for the rest.)
                return
            if events:
                backoff = self._backoff()  # progress: restart the backoff
                continue
            if push:
                continue  # the server already blocked for wait_ms; no sleep
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise TimeoutError(f"job {job_id} still emitting after {deadline_seconds}s")
            # Never sleep past the deadline: one final page fetch happens at
            # (roughly) the deadline before giving up.
            time.sleep(min(next(backoff), remaining))
