"""Baseline verifier used for the Table 2 comparison.

The paper compares VERIFAS against a verifier built on top of the Spin model
checker [33].  Spin itself is a C tool that cannot be bundled here, so
:mod:`repro.baseline.spinlike` provides a pure-Python stand-in with the same
characteristics that the comparison rests on: it is an *explicit-state*
enumerative model checker over a bounded abstraction of the data domain, it
does not support updatable artifact relations, and its state space grows
exponentially with the number of artifact variables, which is why it scales
poorly compared to the symbolic search.
"""

from repro.baseline.spinlike import SpinLikeResult, SpinLikeVerifier

__all__ = ["SpinLikeVerifier", "SpinLikeResult"]
