"""A Spin-like explicit-state baseline verifier.

This verifier mirrors the Spin-based implementation of [33] (the paper's
comparison point, "Spin-Opt") in spirit:

* the unbounded data domain is abstracted into a small finite domain per
  variable type: ``null``, every constant of the specification, and a few
  fresh symbolic values;
* the read-only database is abstracted away entirely -- relational atoms are
  treated as non-deterministic tests (both outcomes are explored), which is
  what a control-flow-level Promela encoding without foreign-key support does;
* updatable artifact relations are **not** supported: insertions and
  retrievals are ignored, exactly like the restricted model the Spin-based
  verifier of [33] handles;
* verification is classic explicit-state LTL model checking: the reachable
  product of the bounded-state system with the Büchi automaton of the negated
  property is built breadth-first and searched for reachable accepting cycles.

Because states are concrete valuations, the state space grows exponentially
with the number of artifact variables; this is the behaviour the Table 2
comparison demonstrates.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from repro.has.artifact_system import ArtifactSystem
from repro.has.conditions import (
    And,
    Condition,
    Const,
    Eq,
    FalseCond,
    Neq,
    Not,
    Or,
    RelationAtom,
    TrueCond,
    Var,
)
from repro.has.runs import TERMINATED_SERVICE
from repro.has.types import IdType
from repro.ltl.buchi import BuchiAutomaton, ltl_to_buchi
from repro.ltl.ltlfo import LTLFOProperty

#: How many fresh symbolic values each variable type contributes to the domain.
_FRESH_VALUES_PER_TYPE = 2


@dataclass
class SpinLikeResult:
    """Outcome of a baseline verification run."""

    outcome: str  # "satisfied", "violated" or "unknown"
    states_explored: int
    seconds: float
    failed: bool

    @property
    def violated(self) -> bool:
        return self.outcome == "violated"

    @property
    def satisfied(self) -> bool:
        return self.outcome == "satisfied"


#: A concrete baseline state: variable valuation, child activity, closed flag.
_State = Tuple[Tuple[Tuple[str, object], ...], Tuple[Tuple[str, bool], ...], bool]


class SpinLikeVerifier:
    """Explicit-state bounded-domain verifier for LTL-FO properties of a task."""

    def __init__(
        self,
        system: ArtifactSystem,
        timeout_seconds: Optional[float] = 30.0,
        max_states: int = 50_000,
    ):
        self.system = system
        self.timeout_seconds = timeout_seconds
        self.max_states = max_states

    # ------------------------------------------------------------------ domains

    def _constants(self, task_name: str) -> List[object]:
        constants: List[object] = []
        conditions: List[Condition] = [self.system.global_precondition]
        for service in self.system.internal_services(task_name):
            conditions.extend((service.pre, service.post))
        for child in self.system.children_of(task_name):
            conditions.append(self.system.opening_service(child).pre)
        conditions.append(self.system.closing_service(task_name).pre)
        for condition in conditions:
            for constant in condition.constants():
                if constant.value is not None and constant.value not in constants:
                    constants.append(constant.value)
        return constants

    def _domain(self, task_name: str, var_type, constants: Sequence[object]) -> List[object]:
        if isinstance(var_type, IdType):
            return [None] + [f"${var_type.relation}#{i}" for i in range(_FRESH_VALUES_PER_TYPE)]
        return [None] + list(constants) + [f"$val#{i}" for i in range(_FRESH_VALUES_PER_TYPE)]

    # ------------------------------------------------------------------ condition abstraction

    def _satisfiable(self, condition: Condition, valuation: Dict[str, object]) -> bool:
        """Three-valued satisfiability: relational atoms are non-deterministic."""
        verdict = self._evaluate3(condition, valuation)
        return verdict is not False

    def _evaluate3(self, condition: Condition, valuation: Dict[str, object]) -> Optional[bool]:
        if isinstance(condition, TrueCond):
            return True
        if isinstance(condition, FalseCond):
            return False
        if isinstance(condition, And):
            left = self._evaluate3(condition.left, valuation)
            right = self._evaluate3(condition.right, valuation)
            if left is False or right is False:
                return False
            if left is True and right is True:
                return True
            return None
        if isinstance(condition, Or):
            left = self._evaluate3(condition.left, valuation)
            right = self._evaluate3(condition.right, valuation)
            if left is True or right is True:
                return True
            if left is False and right is False:
                return False
            return None
        if isinstance(condition, Not):
            inner = self._evaluate3(condition.operand, valuation)
            if inner is None:
                return None
            return not inner
        if isinstance(condition, (Eq, Neq)):
            left = self._term_value(condition.left, valuation)
            right = self._term_value(condition.right, valuation)
            equal = left == right
            return equal if isinstance(condition, Eq) else not equal
        if isinstance(condition, RelationAtom):
            # The database is abstracted away: the atom may be true or false,
            # except that atoms with a null argument are definitely false.
            values = [self._term_value(term, valuation) for term in condition.args]
            if any(value is None for value in values):
                return False
            return None
        raise TypeError(f"unsupported condition {condition!r}")

    @staticmethod
    def _term_value(term, valuation: Dict[str, object]) -> object:
        if isinstance(term, Const):
            return term.value
        return valuation.get(term.name)

    # ------------------------------------------------------------------ transition system

    def _successors(
        self,
        task_name: str,
        valuation: Dict[str, object],
        children: Dict[str, bool],
        closed: bool,
        domains: Dict[str, List[object]],
    ) -> List[Tuple[str, Dict[str, object], Dict[str, bool], bool]]:
        if closed:
            return [(TERMINATED_SERVICE, dict(valuation), dict(children), True)]
        task = self.system.task(task_name)
        successors: List[Tuple[str, Dict[str, object], Dict[str, bool], bool]] = []

        def assignments(free_vars: Sequence[str]) -> Iterable[Dict[str, object]]:
            pools = [domains[name] for name in free_vars]
            for combo in itertools.product(*pools) if free_vars else [()]:
                yield dict(zip(free_vars, combo))

        any_child_active = any(children.values())

        # Internal services (artifact-relation updates are ignored, as in [33]).
        if not any_child_active:
            for service in self.system.internal_services(task_name):
                if not self._satisfiable(service.pre, valuation):
                    continue
                propagated = set(service.propagated)
                if service.update is not None:
                    propagated = set(task.input_variables)
                free_vars = [v.name for v in task.variables if v.name not in propagated]
                for assignment in assignments(free_vars):
                    successor = dict(valuation)
                    successor.update(assignment)
                    if self._satisfiable(service.post, successor):
                        successors.append((service.name, successor, dict(children), False))

        # Child openings.
        for child in self.system.children_of(task_name):
            if children.get(child):
                continue
            opening = self.system.opening_service(child)
            if self._satisfiable(opening.pre, valuation):
                updated = dict(children)
                updated[child] = True
                successors.append((opening.name, dict(valuation), updated, False))

        # Child closings: the returned variables take arbitrary domain values.
        for child in self.system.children_of(task_name):
            if not children.get(child):
                continue
            closing = self.system.closing_service(child)
            returned = sorted(set(closing.output_mapping().values()))
            updated_children = dict(children)
            updated_children[child] = False
            for assignment in assignments(returned):
                successor = dict(valuation)
                successor.update(assignment)
                successors.append((closing.name, successor, updated_children, False))

        # Own closing.
        if not any_child_active:
            closing = self.system.closing_service(task_name)
            if self._satisfiable(closing.pre, valuation):
                successors.append((closing.name, dict(valuation), dict(children), True))
        return successors

    # ------------------------------------------------------------------ LTL product

    def _proposition_assignment(
        self,
        ltl_property: LTLFOProperty,
        service: str,
        valuation: Dict[str, object],
    ) -> Tuple[Set[str], Set[str]]:
        """(definitely true, definitely false) propositions at a snapshot."""
        definitely_true: Set[str] = set()
        definitely_false: Set[str] = set()
        for proposition, condition in ltl_property.conditions.items():
            verdict = self._evaluate3(condition, valuation)
            if verdict is True:
                definitely_true.add(proposition)
            elif verdict is False:
                definitely_false.add(proposition)
        for proposition in ltl_property.service_propositions:
            if proposition == service:
                definitely_true.add(proposition)
            else:
                definitely_false.add(proposition)
        return definitely_true, definitely_false

    def _buchi_successors(
        self,
        automaton: BuchiAutomaton,
        buchi_state: int,
        definitely_true: Set[str],
        definitely_false: Set[str],
    ) -> Set[int]:
        """Büchi successors; unknown propositions may take either truth value."""
        result: Set[int] = set()
        for transition in automaton.outgoing(buchi_state):
            if transition.label.required & definitely_false:
                continue
            if transition.label.forbidden & definitely_true:
                continue
            result.add(transition.target)
        return result

    # ------------------------------------------------------------------ verification

    def verify(self, ltl_property: LTLFOProperty) -> SpinLikeResult:
        started = time.monotonic()
        deadline = started + self.timeout_seconds if self.timeout_seconds is not None else None
        task_name = ltl_property.task
        task = self.system.task(task_name)
        constants = self._constants(task_name)
        domains = {
            var.name: self._domain(task_name, var.type, constants) for var in task.variables
        }
        for global_var in ltl_property.global_variables:
            domains[global_var.name] = self._domain(task_name, global_var.type, constants)

        negated = ltl_property.formula.negated()
        automaton = ltl_to_buchi(negated)

        # Initial states: every variable null (plus every valuation of the
        # global variables), global pre-condition respected for the root task.
        initial_valuations: List[Dict[str, object]] = []
        base = {var.name: None for var in task.variables}
        global_names = list(ltl_property.global_variable_names)
        pools = [domains[name] for name in global_names]
        for combo in itertools.product(*pools) if global_names else [()]:
            valuation = dict(base)
            valuation.update(dict(zip(global_names, combo)))
            if task_name != self.system.root or self._satisfiable(
                self.system.global_precondition, valuation
            ):
                initial_valuations.append(valuation)

        opening_name = self.system.opening_service(task_name).name
        children0 = {child: False for child in self.system.children_of(task_name)}

        # Explicit product exploration.
        edges: Dict[int, Set[int]] = {}
        accepting: Set[int] = set()
        state_ids: Dict[Tuple[_State, int], int] = {}
        work: List[Tuple[_State, int]] = []
        failed = False

        def state_key(valuation: Dict[str, object], children: Dict[str, bool], closed: bool) -> _State:
            return (tuple(sorted(valuation.items(), key=lambda kv: kv[0])),
                    tuple(sorted(children.items())), closed)

        def intern(state: Tuple[_State, int]) -> int:
            if state not in state_ids:
                state_ids[state] = len(state_ids)
                edges[state_ids[state]] = set()
                if state[1] in automaton.accepting_states:
                    accepting.add(state_ids[state])
                work.append(state)
            return state_ids[state]

        for valuation in initial_valuations:
            true_props, false_props = self._proposition_assignment(
                ltl_property, opening_name, valuation
            )
            for initial in automaton.initial_states:
                for target in self._buchi_successors(automaton, initial, true_props, false_props):
                    intern((state_key(valuation, children0, False), target))

        explored = 0
        while work:
            if deadline is not None and time.monotonic() > deadline:
                failed = True
                break
            if len(state_ids) > self.max_states:
                failed = True
                break
            state = work.pop()
            state_id = state_ids[state]
            (valuation_items, children_items, closed), buchi_state = state
            valuation = dict(valuation_items)
            children = dict(children_items)
            explored += 1
            for service, next_valuation, next_children, next_closed in self._successors(
                task_name, valuation, children, closed, domains
            ):
                true_props, false_props = self._proposition_assignment(
                    ltl_property, service, next_valuation
                )
                for target in self._buchi_successors(
                    automaton, buchi_state, true_props, false_props
                ):
                    successor = (state_key(next_valuation, next_children, next_closed), target)
                    successor_id = intern(successor)
                    edges[state_id].add(successor_id)

        seconds = time.monotonic() - started
        if failed:
            return SpinLikeResult("unknown", len(state_ids), seconds, failed=True)

        violated = _has_accepting_cycle(edges, accepting)
        outcome = "violated" if violated else "satisfied"
        return SpinLikeResult(outcome, len(state_ids), seconds, failed=False)


def _has_accepting_cycle(edges: Dict[int, Set[int]], accepting: Set[int]) -> bool:
    """Whether some accepting vertex lies on a cycle (Tarjan SCC over the product graph)."""
    import sys

    sys.setrecursionlimit(max(sys.getrecursionlimit(), 4 * len(edges) + 100))
    index_counter = [0]
    index: Dict[int, int] = {}
    lowlink: Dict[int, int] = {}
    stack: List[int] = []
    on_stack: Set[int] = set()
    found = [False]

    def strongconnect(v: int) -> None:
        index[v] = lowlink[v] = index_counter[0]
        index_counter[0] += 1
        stack.append(v)
        on_stack.add(v)
        for w in edges.get(v, ()):  # successors
            if w not in index:
                strongconnect(w)
                lowlink[v] = min(lowlink[v], lowlink[w])
            elif w in on_stack:
                lowlink[v] = min(lowlink[v], index[w])
        if lowlink[v] == index[v]:
            component = []
            while True:
                w = stack.pop()
                on_stack.discard(w)
                component.append(w)
                if w == v:
                    break
            has_cycle = len(component) > 1 or (
                component and component[0] in edges.get(component[0], ())
            )
            if has_cycle and any(vertex in accepting for vertex in component):
                found[0] = True

    for vertex in list(edges):
        if vertex not in index and not found[0]:
            strongconnect(vertex)
    return found[0]
