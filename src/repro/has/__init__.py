"""The HAS* (Hierarchical Artifact System) model.

This subpackage implements Section 2 and Appendix A of the VERIFAS paper:
database schemas with acyclic foreign keys, quantifier-free first-order
conditions, task schemas with artifact variables and artifact relations,
internal / opening / closing services, artifact systems, concrete instances
and the concrete transition semantics, and a small simulator for concrete
runs (used by the test suite for differential testing against the symbolic
verifier).
"""

from repro.has.schema import Attribute, DatabaseSchema, Relation
from repro.has.types import IdType, ValueType, VarType
from repro.has.conditions import (
    And,
    Condition,
    Const,
    Eq,
    FalseCond,
    Neq,
    Not,
    NULL,
    Or,
    RelationAtom,
    Term,
    TrueCond,
    Var,
)
from repro.has.tasks import ArtifactRelation, TaskSchema, Variable
from repro.has.services import (
    ClosingService,
    Insert,
    InternalService,
    OpeningService,
    Retrieve,
    Update,
)
from repro.has.artifact_system import ArtifactSystem, SpecificationError
from repro.has.builder import ArtifactSystemBuilder, TaskBuilder
from repro.has.database import Database
from repro.has.instance import Instance
from repro.has.runs import ConcreteRunner, LocalSnapshot

__all__ = [
    "Attribute",
    "DatabaseSchema",
    "Relation",
    "IdType",
    "ValueType",
    "VarType",
    "Condition",
    "Term",
    "Var",
    "Const",
    "NULL",
    "Eq",
    "Neq",
    "RelationAtom",
    "And",
    "Or",
    "Not",
    "TrueCond",
    "FalseCond",
    "Variable",
    "ArtifactRelation",
    "TaskSchema",
    "InternalService",
    "OpeningService",
    "ClosingService",
    "Insert",
    "Retrieve",
    "Update",
    "ArtifactSystem",
    "SpecificationError",
    "ArtifactSystemBuilder",
    "TaskBuilder",
    "Database",
    "Instance",
    "ConcreteRunner",
    "LocalSnapshot",
]
