"""Database schemas with keys and acyclic foreign keys (Definition 1).

A relation ``R(ID, A1..An, F1..Fm)`` has a key attribute ``ID``, a set of
non-key (data-valued) attributes and a set of foreign-key attributes, each
referencing the key of another relation.  The schema must be *acyclic*: the
graph whose nodes are relations and whose edges follow foreign keys must not
contain a cycle.  Acyclicity is what makes the set of navigation expressions
(Section 3.2) finite.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.has.types import IdType, ValueType, VarType, VALUE


class SchemaError(ValueError):
    """Raised when a database schema is malformed (dangling or cyclic FKs, ...)."""


@dataclass(frozen=True)
class Attribute:
    """A non-key attribute of a relation.

    ``kind`` is either ``"value"`` (data attribute) or ``"fk"`` (foreign key);
    foreign keys carry the name of the referenced relation in ``target``.
    """

    name: str
    kind: str = "value"
    target: Optional[str] = None

    def __post_init__(self) -> None:
        if self.kind not in ("value", "fk"):
            raise SchemaError(f"unknown attribute kind {self.kind!r} for {self.name!r}")
        if self.kind == "fk" and not self.target:
            raise SchemaError(f"foreign key attribute {self.name!r} must name a target relation")
        if self.kind == "value" and self.target is not None:
            raise SchemaError(f"value attribute {self.name!r} must not have a target")

    @property
    def is_foreign_key(self) -> bool:
        return self.kind == "fk"

    def type_in(self, schema: "DatabaseSchema") -> VarType:
        """The type of this attribute: ``ValueType`` or the target's id type."""
        if self.is_foreign_key:
            assert self.target is not None
            return IdType(self.target)
        return VALUE


def value_attr(name: str) -> Attribute:
    """Convenience constructor for a data-valued attribute."""
    return Attribute(name, "value")


def fk_attr(name: str, target: str) -> Attribute:
    """Convenience constructor for a foreign-key attribute referencing *target*."""
    return Attribute(name, "fk", target)


@dataclass(frozen=True)
class Relation:
    """A database relation ``R(ID, A1..An, F1..Fm)``.

    The key attribute ``ID`` is implicit and always present; ``attributes``
    lists the non-key attributes (value attributes and foreign keys) in
    declaration order.  Atoms ``R(x, y1, ..., yk)`` in conditions list the id
    term first followed by one term per declared attribute, in this order.
    """

    name: str
    attributes: Tuple[Attribute, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        names = [a.name for a in self.attributes]
        if len(set(names)) != len(names):
            raise SchemaError(f"duplicate attribute names in relation {self.name!r}")
        if "ID" in names:
            raise SchemaError(
                f"relation {self.name!r} must not declare 'ID' explicitly; the key is implicit"
            )

    @property
    def arity(self) -> int:
        """Number of attributes including the implicit key."""
        return 1 + len(self.attributes)

    @property
    def attribute_names(self) -> Tuple[str, ...]:
        return tuple(a.name for a in self.attributes)

    @property
    def foreign_keys(self) -> Tuple[Attribute, ...]:
        return tuple(a for a in self.attributes if a.is_foreign_key)

    @property
    def value_attributes(self) -> Tuple[Attribute, ...]:
        return tuple(a for a in self.attributes if not a.is_foreign_key)

    def attribute(self, name: str) -> Attribute:
        for attr in self.attributes:
            if attr.name == name:
                return attr
        raise KeyError(f"relation {self.name!r} has no attribute {name!r}")

    def has_attribute(self, name: str) -> bool:
        return any(a.name == name for a in self.attributes)

    def id_type(self) -> IdType:
        return IdType(self.name)


class DatabaseSchema:
    """An acyclic database schema: a collection of relations (Definition 1)."""

    def __init__(self, relations: Iterable[Relation]):
        self._relations: Dict[str, Relation] = {}
        for relation in relations:
            if relation.name in self._relations:
                raise SchemaError(f"duplicate relation name {relation.name!r}")
            self._relations[relation.name] = relation
        self._validate_foreign_keys()
        self._check_acyclic()

    # -- construction helpers -------------------------------------------------

    @classmethod
    def from_dict(cls, spec: Dict[str, Dict[str, Optional[str]]]) -> "DatabaseSchema":
        """Build a schema from ``{relation: {attribute: None | target_relation}}``.

        A ``None`` value declares a data attribute; a string declares a
        foreign key referencing that relation.

        >>> schema = DatabaseSchema.from_dict({
        ...     "CUSTOMERS": {"name": None, "record": "CREDIT_RECORD"},
        ...     "CREDIT_RECORD": {"status": None},
        ... })
        >>> schema.relation("CUSTOMERS").attribute("record").is_foreign_key
        True
        """
        relations = []
        for rel_name, attrs in spec.items():
            attributes = tuple(
                fk_attr(attr, target) if target else value_attr(attr)
                for attr, target in attrs.items()
            )
            relations.append(Relation(rel_name, attributes))
        return cls(relations)

    # -- validation ------------------------------------------------------------

    def _validate_foreign_keys(self) -> None:
        for relation in self._relations.values():
            for attr in relation.foreign_keys:
                if attr.target not in self._relations:
                    raise SchemaError(
                        f"foreign key {relation.name}.{attr.name} references unknown "
                        f"relation {attr.target!r}"
                    )

    def _check_acyclic(self) -> None:
        # Depth-first search over the foreign-key graph, detecting back edges.
        WHITE, GRAY, BLACK = 0, 1, 2
        color = {name: WHITE for name in self._relations}

        def visit(name: str, stack: List[str]) -> None:
            color[name] = GRAY
            stack.append(name)
            for attr in self._relations[name].foreign_keys:
                target = attr.target
                assert target is not None
                if color[target] == GRAY:
                    cycle = " -> ".join(stack + [target])
                    raise SchemaError(f"foreign keys form a cycle: {cycle}")
                if color[target] == WHITE:
                    visit(target, stack)
            stack.pop()
            color[name] = BLACK

        for name in self._relations:
            if color[name] == WHITE:
                visit(name, [])

    # -- accessors ------------------------------------------------------------

    @property
    def relations(self) -> Tuple[Relation, ...]:
        return tuple(self._relations.values())

    @property
    def relation_names(self) -> Tuple[str, ...]:
        return tuple(self._relations)

    def relation(self, name: str) -> Relation:
        try:
            return self._relations[name]
        except KeyError:
            raise KeyError(f"unknown relation {name!r}") from None

    def has_relation(self, name: str) -> bool:
        return name in self._relations

    def attribute_type(self, relation_name: str, attribute_name: str) -> VarType:
        """Type of ``relation.attribute`` (ValueType or target relation's IdType)."""
        return self.relation(relation_name).attribute(attribute_name).type_in(self)

    def navigation_depth(self) -> int:
        """Length of the longest foreign-key chain in the schema.

        This bounds the length of navigation expressions (Section 3.2).
        """
        memo: Dict[str, int] = {}

        def depth(name: str) -> int:
            if name in memo:
                return memo[name]
            relation = self._relations[name]
            best = 0
            for attr in relation.foreign_keys:
                assert attr.target is not None
                best = max(best, 1 + depth(attr.target))
            memo[name] = best
            return best

        return max((depth(name) for name in self._relations), default=0)

    def __eq__(self, other: object) -> bool:
        """Structural equality: same relations with the same attributes, in order."""
        if not isinstance(other, DatabaseSchema):
            return NotImplemented
        return tuple(self._relations.values()) == tuple(other._relations.values())

    #: Schemas are compared structurally but hashed by identity (they are
    #: never used as dict keys across instances).
    __hash__ = object.__hash__

    def __contains__(self, name: object) -> bool:
        return isinstance(name, str) and name in self._relations

    def __len__(self) -> int:
        return len(self._relations)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DatabaseSchema({list(self._relations)})"

    def describe(self) -> str:
        """A human-readable, multi-line description of the schema."""
        lines = []
        for relation in self.relations:
            parts = ["ID"]
            for attr in relation.attributes:
                if attr.is_foreign_key:
                    parts.append(f"{attr.name} -> {attr.target}")
                else:
                    parts.append(attr.name)
            lines.append(f"{relation.name}({', '.join(parts)})")
        return "\n".join(lines)
