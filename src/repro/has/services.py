"""Services: internal services and opening / closing services (Definitions 10 and 26).

* An :class:`InternalService` of a task updates the task's artifact variables
  (guarded by a pre-condition, constrained by a post-condition) and may insert
  a tuple into, or retrieve a tuple from, one of the task's artifact
  relations.
* An :class:`OpeningService` activates a child task, passing a tuple of the
  parent's variables as the child's input variables.
* A :class:`ClosingService` closes a child task (guarded by a condition on the
  child's variables) and copies the child's output variables back into
  variables of the parent.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, Optional, Sequence, Tuple, Union

from repro.has.conditions import Condition, TrueCond


class ServiceError(ValueError):
    """Raised when a service definition violates the model's restrictions."""


@dataclass(frozen=True)
class Insert:
    """Insert the current value of ``variables`` as a tuple into ``relation``.

    ``variables[i]`` provides the value of the relation's i-th attribute.
    """

    relation: str
    variables: Tuple[str, ...]

    def __init__(self, relation: str, variables: Iterable[str]):
        object.__setattr__(self, "relation", relation)
        object.__setattr__(self, "variables", tuple(variables))

    def __str__(self) -> str:
        return f"+{self.relation}({', '.join(self.variables)})"


@dataclass(frozen=True)
class Retrieve:
    """Remove a nondeterministically chosen tuple from ``relation``.

    The removed tuple's components become the next values of ``variables``.
    """

    relation: str
    variables: Tuple[str, ...]

    def __init__(self, relation: str, variables: Iterable[str]):
        object.__setattr__(self, "relation", relation)
        object.__setattr__(self, "variables", tuple(variables))

    def __str__(self) -> str:
        return f"-{self.relation}({', '.join(self.variables)})"


Update = Union[Insert, Retrieve]


@dataclass(frozen=True)
class InternalService:
    """An internal service ``σ = (π, ψ, ȳ, δ)`` of a task (Definition 10).

    * ``pre`` (π) guards applicability (evaluated on the current instance).
    * ``post`` (ψ) constrains the next values of the task's variables.
    * ``propagated`` (ȳ) lists the variables whose values are preserved; the
      task's input variables are always propagated.
    * ``update`` (δ) is an optional insertion into / retrieval from one of the
      task's artifact relations.  When present, only the input variables may
      be propagated (the model's restriction).
    """

    name: str
    task: str
    pre: Condition = TrueCond()
    post: Condition = TrueCond()
    propagated: FrozenSet[str] = frozenset()
    update: Optional[Update] = None

    def __init__(
        self,
        name: str,
        task: str,
        pre: Condition = TrueCond(),
        post: Condition = TrueCond(),
        propagated: Iterable[str] = (),
        update: Optional[Update] = None,
    ):
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "task", task)
        object.__setattr__(self, "pre", pre)
        object.__setattr__(self, "post", post)
        object.__setattr__(self, "propagated", frozenset(propagated))
        object.__setattr__(self, "update", update)

    @property
    def is_insert(self) -> bool:
        return isinstance(self.update, Insert)

    @property
    def is_retrieve(self) -> bool:
        return isinstance(self.update, Retrieve)

    def __str__(self) -> str:
        return f"{self.task}.{self.name}"


@dataclass(frozen=True)
class OpeningService:
    """The opening service ``σ^o_T`` of a task (Definition 26(i)).

    ``pre`` is a condition over the *parent's* variables; ``input_map`` sends
    each input variable of the child to the parent variable whose value it
    receives.  For the root task the pre-condition is the system's global
    pre-condition and the input map is empty.
    """

    task: str
    pre: Condition = TrueCond()
    input_map: Tuple[Tuple[str, str], ...] = ()

    def __init__(
        self,
        task: str,
        pre: Condition = TrueCond(),
        input_map: Union[Dict[str, str], Iterable[Tuple[str, str]]] = (),
    ):
        object.__setattr__(self, "task", task)
        object.__setattr__(self, "pre", pre)
        if isinstance(input_map, dict):
            pairs = tuple(sorted(input_map.items()))
        else:
            pairs = tuple(input_map)
        object.__setattr__(self, "input_map", pairs)

    @property
    def name(self) -> str:
        return f"open_{self.task}"

    def input_mapping(self) -> Dict[str, str]:
        """Child input variable -> parent variable."""
        return dict(self.input_map)

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class ClosingService:
    """The closing service ``σ^c_T`` of a task (Definition 26(ii)).

    ``pre`` is a condition over the *child's* variables; ``output_map`` sends
    each output variable of the child to the parent variable that receives its
    value when the child returns.  For the root task the pre-condition is
    ``false`` (the root never returns).
    """

    task: str
    pre: Condition = TrueCond()
    output_map: Tuple[Tuple[str, str], ...] = ()

    def __init__(
        self,
        task: str,
        pre: Condition = TrueCond(),
        output_map: Union[Dict[str, str], Iterable[Tuple[str, str]]] = (),
    ):
        object.__setattr__(self, "task", task)
        object.__setattr__(self, "pre", pre)
        if isinstance(output_map, dict):
            pairs = tuple(sorted(output_map.items()))
        else:
            pairs = tuple(output_map)
        object.__setattr__(self, "output_map", pairs)

    @property
    def name(self) -> str:
        return f"close_{self.task}"

    def output_mapping(self) -> Dict[str, str]:
        """Child output variable -> parent variable."""
        return dict(self.output_map)

    def __str__(self) -> str:
        return self.name


Service = Union[InternalService, OpeningService, ClosingService]
