"""Concrete database instances of a :class:`~repro.has.schema.DatabaseSchema`.

A :class:`Database` is a finite instance of the read-only database: for each
relation a finite set of tuples, satisfying the key constraint (one tuple per
id) and all foreign-key inclusion dependencies.  It is used by the concrete
run simulator and by the differential tests; the symbolic verifier itself
never materialises a database.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from repro.has.schema import DatabaseSchema, Relation


class DatabaseError(ValueError):
    """Raised when a concrete database violates key or foreign-key constraints."""


class Database:
    """A finite, constraint-satisfying instance of a database schema."""

    def __init__(
        self,
        schema: DatabaseSchema,
        tuples: Mapping[str, Iterable[Sequence[object]]] = (),
    ):
        self.schema = schema
        self._rows: Dict[str, Dict[object, Tuple[object, ...]]] = {
            name: {} for name in schema.relation_names
        }
        if tuples:
            for relation_name, rows in dict(tuples).items():
                for row in rows:
                    self.insert(relation_name, row)
        self.validate()

    # -- mutation --------------------------------------------------------------

    def insert(self, relation_name: str, row: Sequence[object]) -> None:
        """Insert ``row = (id, attr1, ..., attrK)`` into *relation_name*."""
        relation = self.schema.relation(relation_name)
        row = tuple(row)
        if len(row) != relation.arity:
            raise DatabaseError(
                f"tuple {row!r} has arity {len(row)}, relation {relation_name!r} expects "
                f"{relation.arity}"
            )
        key = row[0]
        if key is None:
            raise DatabaseError("database tuples may not have a null id")
        existing = self._rows[relation_name].get(key)
        if existing is not None and existing != row:
            raise DatabaseError(
                f"key violation in {relation_name!r}: id {key!r} already maps to {existing!r}"
            )
        self._rows[relation_name][key] = row

    # -- validation ------------------------------------------------------------

    def validate(self) -> None:
        """Check all foreign-key inclusion dependencies."""
        for relation_name, rows in self._rows.items():
            relation = self.schema.relation(relation_name)
            for row in rows.values():
                for position, attr in enumerate(relation.attributes, start=1):
                    if attr.is_foreign_key and row[position] is not None:
                        target = attr.target
                        assert target is not None
                        if row[position] not in self._rows[target]:
                            raise DatabaseError(
                                f"foreign key violation: {relation_name}.{attr.name} value "
                                f"{row[position]!r} has no matching {target} id"
                            )

    # -- queries ---------------------------------------------------------------

    def contains_tuple(self, relation: str, values: Sequence[object]) -> bool:
        """Whether the relation contains exactly this tuple (id first)."""
        rows = self._rows.get(relation)
        if rows is None:
            return False
        key = values[0]
        row = rows.get(key)
        return row is not None and row == tuple(values)

    def lookup(self, relation: str, key: object) -> Optional[Tuple[object, ...]]:
        """The tuple with the given id, or ``None``."""
        return self._rows.get(relation, {}).get(key)

    def attribute_of(self, relation: str, key: object, attribute: str) -> object:
        """Value of ``relation.attribute`` for the tuple with the given id.

        Returns ``None`` when the id is not present (mirrors navigation to a
        dangling reference, which cannot happen for non-null foreign keys).
        """
        row = self.lookup(relation, key)
        if row is None:
            return None
        rel = self.schema.relation(relation)
        index = 1 + list(rel.attribute_names).index(attribute)
        return row[index]

    def rows(self, relation: str) -> Tuple[Tuple[object, ...], ...]:
        return tuple(self._rows[relation].values())

    def ids(self, relation: str) -> Tuple[object, ...]:
        return tuple(self._rows[relation].keys())

    def active_domain(self) -> Set[object]:
        """All values occurring anywhere in the database."""
        domain: Set[object] = set()
        for rows in self._rows.values():
            for row in rows.values():
                domain.update(v for v in row if v is not None)
        return domain

    def values_of_type(self, relation: Optional[str]) -> Tuple[object, ...]:
        """Candidate values for a variable: ids of *relation*, or all data values."""
        if relation is not None:
            return self.ids(relation)
        values: List[object] = []
        for rel_name, rows in self._rows.items():
            rel = self.schema.relation(rel_name)
            for row in rows.values():
                for position, attr in enumerate(rel.attributes, start=1):
                    if not attr.is_foreign_key and row[position] is not None:
                        values.append(row[position])
        return tuple(dict.fromkeys(values))

    def __len__(self) -> int:
        return sum(len(rows) for rows in self._rows.values())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        sizes = {name: len(rows) for name, rows in self._rows.items()}
        return f"Database({sizes})"
