"""Concrete instances of an artifact system and the concrete transition relation.

An :class:`Instance` (Definition 7) is a tuple ``(ν, stg, D, S)``: a valuation
of all tasks' artifact variables, the active/inactive stage of every task, a
read-only database and the contents of every artifact relation.  The module
implements the concrete transition relation of Definition 27 (Appendix A):
internal services, opening services and closing services.

The concrete semantics is not used by the symbolic verifier; it powers the
simulator in :mod:`repro.has.runs`, which the test-suite uses to cross-check
the symbolic search against explicitly enumerated runs on small databases.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, replace
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from repro.has.artifact_system import ArtifactSystem
from repro.has.conditions import Condition
from repro.has.database import Database
from repro.has.services import ClosingService, Insert, InternalService, OpeningService, Retrieve
from repro.has.tasks import TaskSchema
from repro.has.types import IdType


@dataclass(frozen=True)
class Instance:
    """A concrete snapshot of an artifact system run.

    ``valuations[task][var]`` is the current value of an artifact variable
    (``None`` encodes ``null``); ``stages[task]`` is ``True`` when the task is
    active; ``relations[(task, relation)]`` is the multiset (stored as a
    tuple) of tuples currently in an artifact relation.
    """

    valuations: Mapping[str, Mapping[str, object]]
    stages: Mapping[str, bool]
    relations: Mapping[Tuple[str, str], Tuple[Tuple[object, ...], ...]]

    def valuation(self, task: str) -> Dict[str, object]:
        return dict(self.valuations[task])

    def is_active(self, task: str) -> bool:
        return bool(self.stages[task])

    def relation_contents(self, task: str, relation: str) -> Tuple[Tuple[object, ...], ...]:
        return self.relations.get((task, relation), ())

    def with_updates(
        self,
        valuations: Optional[Mapping[str, Mapping[str, object]]] = None,
        stages: Optional[Mapping[str, bool]] = None,
        relations: Optional[Mapping[Tuple[str, str], Tuple[Tuple[object, ...], ...]]] = None,
    ) -> "Instance":
        new_valuations = {t: dict(v) for t, v in self.valuations.items()}
        if valuations:
            for task, vals in valuations.items():
                new_valuations[task] = dict(vals)
        new_stages = dict(self.stages)
        if stages:
            new_stages.update(stages)
        new_relations = dict(self.relations)
        if relations:
            new_relations.update(relations)
        return Instance(new_valuations, new_stages, new_relations)


def initial_instance(system: ArtifactSystem) -> Instance:
    """The initial instance: root active, everything null, relations empty."""
    valuations = {
        task.name: {var.name: None for var in task.variables} for task in system.tasks
    }
    stages = {task.name: task.name == system.root for task in system.tasks}
    relations: Dict[Tuple[str, str], Tuple[Tuple[object, ...], ...]] = {}
    for task in system.tasks:
        for rel in task.artifact_relations:
            relations[(task.name, rel.name)] = ()
    return Instance(valuations, stages, relations)


class TransitionEngine:
    """Enumerates concrete successors of an instance under each service.

    Because variable domains are infinite, non-propagated variables are
    re-assigned from a finite candidate pool: the database's values of the
    right type, the constants mentioned in the specification, and ``null``.
    This bounded-domain semantics is sufficient for differential testing.
    """

    def __init__(self, system: ArtifactSystem, database: Database, extra_constants: Iterable[object] = ()):
        self.system = system
        self.database = database
        self._extra_constants = tuple(extra_constants)

    # -- candidate values -------------------------------------------------------

    def candidate_values(self, task: TaskSchema, var_name: str) -> Tuple[object, ...]:
        var = task.variable(var_name)
        if isinstance(var.type, IdType):
            values: Tuple[object, ...] = self.database.ids(var.type.relation)
        else:
            constants = [c for c in self._spec_constants() if isinstance(c, (str, int, float))]
            values = tuple(dict.fromkeys(tuple(self.database.values_of_type(None)) + tuple(constants)))
        return (None,) + values

    def _spec_constants(self) -> Tuple[object, ...]:
        constants: List[object] = list(self._extra_constants)
        for service in self.system.all_internal_services():
            for condition in (service.pre, service.post):
                constants.extend(c.value for c in condition.constants() if c.value is not None)
        for task_name in self.system.task_names:
            for condition in (
                self.system.opening_service(task_name).pre,
                self.system.closing_service(task_name).pre,
            ):
                constants.extend(c.value for c in condition.constants() if c.value is not None)
        constants.extend(
            c.value for c in self.system.global_precondition.constants() if c.value is not None
        )
        return tuple(dict.fromkeys(constants))

    # -- successor enumeration ---------------------------------------------------

    def internal_successors(
        self, instance: Instance, service: InternalService, limit: int = 2000
    ) -> List[Instance]:
        """All successors of *instance* under an internal service (bounded)."""
        task = self.system.task(service.task)
        if not instance.is_active(task.name):
            return []
        if any(instance.is_active(child) for child in self.system.children_of(task.name)):
            return []
        valuation = instance.valuation(task.name)
        if not service.pre.evaluate(valuation, self.database):
            return []

        propagated = set(service.propagated)
        free_vars = [v.name for v in task.variables if v.name not in propagated]
        pools = [self.candidate_values(task, v) for v in free_vars]
        successors: List[Instance] = []
        count = 0
        for combo in itertools.product(*pools) if free_vars else [()]:
            count += 1
            if count > limit:
                break
            next_valuation = dict(valuation)
            for var_name, value in zip(free_vars, combo):
                next_valuation[var_name] = value
            if not service.post.evaluate(next_valuation, self.database):
                continue
            successors.extend(
                self._apply_update(instance, task, service, valuation, next_valuation)
            )
        return successors

    def _apply_update(
        self,
        instance: Instance,
        task: TaskSchema,
        service: InternalService,
        old_valuation: Dict[str, object],
        new_valuation: Dict[str, object],
    ) -> List[Instance]:
        if service.update is None:
            return [instance.with_updates(valuations={task.name: new_valuation})]
        key = (task.name, service.update.relation)
        contents = list(instance.relation_contents(task.name, service.update.relation))
        if isinstance(service.update, Insert):
            inserted = tuple(old_valuation[v] for v in service.update.variables)
            return [
                instance.with_updates(
                    valuations={task.name: new_valuation},
                    relations={key: tuple(contents) + (inserted,)},
                )
            ]
        assert isinstance(service.update, Retrieve)
        successors = []
        for index, row in enumerate(contents):
            retrieved_valuation = dict(new_valuation)
            for var_name, value in zip(service.update.variables, row):
                retrieved_valuation[var_name] = value
            if not service.post.evaluate(retrieved_valuation, self.database):
                continue
            remaining = tuple(contents[:index] + contents[index + 1 :])
            successors.append(
                instance.with_updates(
                    valuations={task.name: retrieved_valuation},
                    relations={key: remaining},
                )
            )
        return successors

    def opening_successors(self, instance: Instance, child: str) -> List[Instance]:
        """Successors that open the child task *child*."""
        parent_name = self.system.parent_of(child)
        if parent_name is None:
            return []
        if instance.is_active(child) or not instance.is_active(parent_name):
            return []
        opening = self.system.opening_service(child)
        parent_valuation = instance.valuation(parent_name)
        if not opening.pre.evaluate(parent_valuation, self.database):
            return []
        child_task = self.system.task(child)
        child_valuation = {var.name: None for var in child_task.variables}
        for child_var, parent_var in opening.input_mapping().items():
            child_valuation[child_var] = parent_valuation[parent_var]
        relations = {
            (child, rel.name): () for rel in child_task.artifact_relations
        }
        return [
            instance.with_updates(
                valuations={child: child_valuation},
                stages={child: True},
                relations=relations,
            )
        ]

    def closing_successors(self, instance: Instance, child: str) -> List[Instance]:
        """Successors that close the (currently active) child task *child*."""
        parent_name = self.system.parent_of(child)
        if parent_name is None:
            return []
        if not instance.is_active(child):
            return []
        if any(instance.is_active(grandchild) for grandchild in self.system.children_of(child)):
            return []
        closing = self.system.closing_service(child)
        child_valuation = instance.valuation(child)
        if not closing.pre.evaluate(child_valuation, self.database):
            return []
        parent_valuation = instance.valuation(parent_name)
        for child_var, parent_var in closing.output_mapping().items():
            parent_valuation[parent_var] = child_valuation[child_var]
        child_task = self.system.task(child)
        relations = {
            (child, rel.name): () for rel in child_task.artifact_relations
        }
        return [
            instance.with_updates(
                valuations={parent_name: parent_valuation},
                stages={child: False},
                relations=relations,
            )
        ]
