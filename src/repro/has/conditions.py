"""Quantifier-free first-order conditions over artifact variables.

Conditions (Section 2 of the paper) are quantifier-free FO formulas over the
database schema and equality, whose terms are artifact variables and
constants (including ``null``).  They appear as service pre/post-conditions,
opening/closing guards, the global pre-condition and as the FO component of
LTL-FO properties.

The module provides:

* a small term language (:class:`Var`, :class:`Const`, the ``NULL`` constant),
* a condition AST (:class:`Eq`, :class:`Neq`, :class:`RelationAtom`,
  :class:`And`, :class:`Or`, :class:`Not`, :class:`TrueCond`,
  :class:`FalseCond`),
* negation normal form and disjunctive normal form conversion,
* concrete evaluation against a valuation and a :class:`~repro.has.database.Database`,
* variable collection and variable renaming (used when instantiating
  properties and when generating synthetic workflows).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple, Union


# ---------------------------------------------------------------------------
# Terms
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Var:
    """An artifact variable occurrence (identified by name)."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Const:
    """A constant. ``Const(None)`` is the special ``null`` constant."""

    value: Union[str, int, float, None]

    def __str__(self) -> str:
        if self.value is None:
            return "null"
        if isinstance(self.value, str):
            return f'"{self.value}"'
        return str(self.value)

    @property
    def is_null(self) -> bool:
        return self.value is None


Term = Union[Var, Const]

#: The special ``null`` constant used as default initialisation value.
NULL = Const(None)


def as_term(value: Union[Term, str, int, float, None]) -> Term:
    """Coerce a Python value into a term.

    Strings starting and ending with a double quote become string constants;
    any other string becomes a variable; numbers and ``None`` become
    constants.  Existing terms pass through unchanged.
    """
    if isinstance(value, (Var, Const)):
        return value
    if value is None:
        return NULL
    if isinstance(value, (int, float)):
        return Const(value)
    if isinstance(value, str):
        if len(value) >= 2 and value.startswith('"') and value.endswith('"'):
            return Const(value[1:-1])
        return Var(value)
    raise TypeError(f"cannot interpret {value!r} as a term")


# ---------------------------------------------------------------------------
# Conditions
# ---------------------------------------------------------------------------


class Condition:
    """Base class of all condition AST nodes.

    Conditions are immutable; boolean connectives can be formed with the
    ``&``, ``|`` and ``~`` operators.
    """

    def __and__(self, other: "Condition") -> "Condition":
        return And(self, other)

    def __or__(self, other: "Condition") -> "Condition":
        return Or(self, other)

    def __invert__(self) -> "Condition":
        return Not(self)

    # -- structural queries -------------------------------------------------

    def variables(self) -> Set[str]:
        """Names of all variables occurring in the condition."""
        raise NotImplementedError

    def constants(self) -> Set[Const]:
        """All (non-null and null) constants occurring in the condition."""
        raise NotImplementedError

    def atoms(self) -> List["Condition"]:
        """All atomic subformulas (Eq / Neq / RelationAtom / True / False)."""
        raise NotImplementedError

    # -- transformations -----------------------------------------------------

    def rename(self, mapping: Dict[str, str]) -> "Condition":
        """Rename variables according to *mapping* (missing names unchanged)."""
        raise NotImplementedError

    def substitute(self, mapping: Dict[str, Term]) -> "Condition":
        """Replace variables by arbitrary terms."""
        raise NotImplementedError

    def nnf(self, negate: bool = False) -> "Condition":
        """Negation normal form; with ``negate=True``, the NNF of the negation."""
        raise NotImplementedError

    def dnf(self) -> List[Tuple["Literal", ...]]:
        """Disjunctive normal form of the NNF, as a list of literal tuples.

        Each tuple is a conjunction of literals; the condition is equivalent
        to the disjunction of those conjunctions.  An empty list means the
        condition is unsatisfiable (``False``); a list containing an empty
        tuple means it is valid (``True``).
        """
        return _dnf(self.nnf())

    # -- concrete evaluation ---------------------------------------------------

    def evaluate(self, valuation: Dict[str, object], database: "DatabaseLike") -> bool:
        """Evaluate the condition under *valuation* against *database*.

        ``valuation`` maps variable names to concrete values (``None`` for
        ``null``).  Relational atoms with a ``null`` argument are false, as
        required by the paper (null never occurs in database relations).
        """
        raise NotImplementedError

    # -- misc -----------------------------------------------------------------

    def __str__(self) -> str:  # pragma: no cover - subclasses override
        raise NotImplementedError


class DatabaseLike:
    """Protocol for concrete condition evaluation (see :class:`repro.has.database.Database`)."""

    def contains_tuple(self, relation: str, values: Sequence[object]) -> bool:  # pragma: no cover
        raise NotImplementedError


def _term_value(term: Term, valuation: Dict[str, object]) -> object:
    if isinstance(term, Const):
        return term.value
    if term.name not in valuation:
        raise KeyError(f"variable {term.name!r} is not bound in the valuation")
    return valuation[term.name]


@dataclass(frozen=True)
class TrueCond(Condition):
    """The condition that always holds."""

    def variables(self) -> Set[str]:
        return set()

    def constants(self) -> Set[Const]:
        return set()

    def atoms(self) -> List[Condition]:
        return [self]

    def rename(self, mapping: Dict[str, str]) -> Condition:
        return self

    def substitute(self, mapping: Dict[str, Term]) -> Condition:
        return self

    def nnf(self, negate: bool = False) -> Condition:
        return FalseCond() if negate else self

    def evaluate(self, valuation: Dict[str, object], database: DatabaseLike) -> bool:
        return True

    def __str__(self) -> str:
        return "true"


@dataclass(frozen=True)
class FalseCond(Condition):
    """The condition that never holds."""

    def variables(self) -> Set[str]:
        return set()

    def constants(self) -> Set[Const]:
        return set()

    def atoms(self) -> List[Condition]:
        return [self]

    def rename(self, mapping: Dict[str, str]) -> Condition:
        return self

    def substitute(self, mapping: Dict[str, Term]) -> Condition:
        return self

    def nnf(self, negate: bool = False) -> Condition:
        return TrueCond() if negate else self

    def evaluate(self, valuation: Dict[str, object], database: DatabaseLike) -> bool:
        return False

    def __str__(self) -> str:
        return "false"


@dataclass(frozen=True)
class Eq(Condition):
    """Equality between two terms (``x = y``, ``x = "c"``, ``x = null``)."""

    left: Term
    right: Term

    def variables(self) -> Set[str]:
        return {t.name for t in (self.left, self.right) if isinstance(t, Var)}

    def constants(self) -> Set[Const]:
        return {t for t in (self.left, self.right) if isinstance(t, Const)}

    def atoms(self) -> List[Condition]:
        return [self]

    def rename(self, mapping: Dict[str, str]) -> Condition:
        return Eq(_rename_term(self.left, mapping), _rename_term(self.right, mapping))

    def substitute(self, mapping: Dict[str, Term]) -> Condition:
        return Eq(_subst_term(self.left, mapping), _subst_term(self.right, mapping))

    def nnf(self, negate: bool = False) -> Condition:
        return Neq(self.left, self.right) if negate else self

    def evaluate(self, valuation: Dict[str, object], database: DatabaseLike) -> bool:
        return _term_value(self.left, valuation) == _term_value(self.right, valuation)

    def __str__(self) -> str:
        return f"{self.left} = {self.right}"


@dataclass(frozen=True)
class Neq(Condition):
    """Disequality between two terms."""

    left: Term
    right: Term

    def variables(self) -> Set[str]:
        return {t.name for t in (self.left, self.right) if isinstance(t, Var)}

    def constants(self) -> Set[Const]:
        return {t for t in (self.left, self.right) if isinstance(t, Const)}

    def atoms(self) -> List[Condition]:
        return [self]

    def rename(self, mapping: Dict[str, str]) -> Condition:
        return Neq(_rename_term(self.left, mapping), _rename_term(self.right, mapping))

    def substitute(self, mapping: Dict[str, Term]) -> Condition:
        return Neq(_subst_term(self.left, mapping), _subst_term(self.right, mapping))

    def nnf(self, negate: bool = False) -> Condition:
        return Eq(self.left, self.right) if negate else self

    def evaluate(self, valuation: Dict[str, object], database: DatabaseLike) -> bool:
        return _term_value(self.left, valuation) != _term_value(self.right, valuation)

    def __str__(self) -> str:
        return f"{self.left} != {self.right}"


@dataclass(frozen=True)
class RelationAtom(Condition):
    """A relational atom ``R(id_term, a1, ..., ak)``.

    The first argument is the key (id) position; the remaining arguments
    correspond, in declaration order, to the relation's non-key attributes
    (value attributes and foreign keys).
    """

    relation: str
    args: Tuple[Term, ...]

    def __init__(self, relation: str, args: Iterable[Union[Term, str, int, float, None]]):
        object.__setattr__(self, "relation", relation)
        object.__setattr__(self, "args", tuple(as_term(a) for a in args))
        if not self.args:
            raise ValueError(f"relational atom {relation} needs at least the id argument")

    @property
    def id_term(self) -> Term:
        return self.args[0]

    @property
    def attribute_terms(self) -> Tuple[Term, ...]:
        return self.args[1:]

    def variables(self) -> Set[str]:
        return {t.name for t in self.args if isinstance(t, Var)}

    def constants(self) -> Set[Const]:
        return {t for t in self.args if isinstance(t, Const)}

    def atoms(self) -> List[Condition]:
        return [self]

    def rename(self, mapping: Dict[str, str]) -> Condition:
        return RelationAtom(self.relation, [_rename_term(t, mapping) for t in self.args])

    def substitute(self, mapping: Dict[str, Term]) -> Condition:
        return RelationAtom(self.relation, [_subst_term(t, mapping) for t in self.args])

    def nnf(self, negate: bool = False) -> Condition:
        return Not(self) if negate else self

    def evaluate(self, valuation: Dict[str, object], database: DatabaseLike) -> bool:
        values = [_term_value(t, valuation) for t in self.args]
        if any(v is None for v in values):
            return False
        return database.contains_tuple(self.relation, values)

    def __str__(self) -> str:
        return f"{self.relation}({', '.join(str(a) for a in self.args)})"


@dataclass(frozen=True)
class Not(Condition):
    """Negation.  In NNF, negation only wraps relational atoms."""

    operand: Condition

    def variables(self) -> Set[str]:
        return self.operand.variables()

    def constants(self) -> Set[Const]:
        return self.operand.constants()

    def atoms(self) -> List[Condition]:
        return self.operand.atoms()

    def rename(self, mapping: Dict[str, str]) -> Condition:
        return Not(self.operand.rename(mapping))

    def substitute(self, mapping: Dict[str, Term]) -> Condition:
        return Not(self.operand.substitute(mapping))

    def nnf(self, negate: bool = False) -> Condition:
        return self.operand.nnf(not negate)

    def evaluate(self, valuation: Dict[str, object], database: DatabaseLike) -> bool:
        return not self.operand.evaluate(valuation, database)

    def __str__(self) -> str:
        return f"not({self.operand})"


@dataclass(frozen=True)
class And(Condition):
    """Conjunction of two conditions."""

    left: Condition
    right: Condition

    def variables(self) -> Set[str]:
        return self.left.variables() | self.right.variables()

    def constants(self) -> Set[Const]:
        return self.left.constants() | self.right.constants()

    def atoms(self) -> List[Condition]:
        return self.left.atoms() + self.right.atoms()

    def rename(self, mapping: Dict[str, str]) -> Condition:
        return And(self.left.rename(mapping), self.right.rename(mapping))

    def substitute(self, mapping: Dict[str, Term]) -> Condition:
        return And(self.left.substitute(mapping), self.right.substitute(mapping))

    def nnf(self, negate: bool = False) -> Condition:
        if negate:
            return Or(self.left.nnf(True), self.right.nnf(True))
        return And(self.left.nnf(False), self.right.nnf(False))

    def evaluate(self, valuation: Dict[str, object], database: DatabaseLike) -> bool:
        return self.left.evaluate(valuation, database) and self.right.evaluate(valuation, database)

    def __str__(self) -> str:
        return f"({self.left} and {self.right})"


@dataclass(frozen=True)
class Or(Condition):
    """Disjunction of two conditions."""

    left: Condition
    right: Condition

    def variables(self) -> Set[str]:
        return self.left.variables() | self.right.variables()

    def constants(self) -> Set[Const]:
        return self.left.constants() | self.right.constants()

    def atoms(self) -> List[Condition]:
        return self.left.atoms() + self.right.atoms()

    def rename(self, mapping: Dict[str, str]) -> Condition:
        return Or(self.left.rename(mapping), self.right.rename(mapping))

    def substitute(self, mapping: Dict[str, Term]) -> Condition:
        return Or(self.left.substitute(mapping), self.right.substitute(mapping))

    def nnf(self, negate: bool = False) -> Condition:
        if negate:
            return And(self.left.nnf(True), self.right.nnf(True))
        return Or(self.left.nnf(False), self.right.nnf(False))

    def evaluate(self, valuation: Dict[str, object], database: DatabaseLike) -> bool:
        return self.left.evaluate(valuation, database) or self.right.evaluate(valuation, database)

    def __str__(self) -> str:
        return f"({self.left} or {self.right})"


#: A literal in NNF / DNF: an (in)equality, a relational atom, or a negated
#: relational atom.
Literal = Union[Eq, Neq, RelationAtom, Not, TrueCond, FalseCond]


def _rename_term(term: Term, mapping: Dict[str, str]) -> Term:
    if isinstance(term, Var) and term.name in mapping:
        return Var(mapping[term.name])
    return term


def _subst_term(term: Term, mapping: Dict[str, Term]) -> Term:
    if isinstance(term, Var) and term.name in mapping:
        return mapping[term.name]
    return term


# ---------------------------------------------------------------------------
# Helpers: conjunction / disjunction of many operands, DNF
# ---------------------------------------------------------------------------


def conjunction(conditions: Iterable[Condition]) -> Condition:
    """Conjunction of an arbitrary number of conditions (``true`` if empty)."""
    result: Optional[Condition] = None
    for condition in conditions:
        result = condition if result is None else And(result, condition)
    return result if result is not None else TrueCond()


def disjunction(conditions: Iterable[Condition]) -> Condition:
    """Disjunction of an arbitrary number of conditions (``false`` if empty)."""
    result: Optional[Condition] = None
    for condition in conditions:
        result = condition if result is None else Or(result, condition)
    return result if result is not None else FalseCond()


def _dnf(nnf_condition: Condition) -> List[Tuple[Literal, ...]]:
    """DNF of a condition already in negation normal form."""
    if isinstance(nnf_condition, TrueCond):
        return [()]
    if isinstance(nnf_condition, FalseCond):
        return []
    if isinstance(nnf_condition, (Eq, Neq, RelationAtom)):
        return [(nnf_condition,)]
    if isinstance(nnf_condition, Not):
        # In NNF, negation only wraps relational atoms.
        if not isinstance(nnf_condition.operand, RelationAtom):
            raise ValueError(f"condition not in NNF: {nnf_condition}")
        return [(nnf_condition,)]
    if isinstance(nnf_condition, Or):
        return _dnf(nnf_condition.left) + _dnf(nnf_condition.right)
    if isinstance(nnf_condition, And):
        left = _dnf(nnf_condition.left)
        right = _dnf(nnf_condition.right)
        return [l + r for l, r in itertools.product(left, right)]
    raise TypeError(f"unexpected condition node {nnf_condition!r}")
