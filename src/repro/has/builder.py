"""Fluent builders for HAS* specifications.

Writing an :class:`~repro.has.artifact_system.ArtifactSystem` by hand requires
assembling tasks, services and hierarchy mappings; the builders in this module
offer a compact, declarative way to do that, used extensively by the example
programs and the benchmark workflow suites.

Example (a single-task system)::

    builder = ArtifactSystemBuilder("demo", schema)
    task = builder.task("Main")
    task.id_variable("cust_id", "CUSTOMERS")
    task.variable("status")
    task.internal_service("init", pre=Eq(Var("status"), NULL),
                          post=Eq(Var("status"), Const("Init")))
    system = builder.build()
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.has.artifact_system import ArtifactSystem
from repro.has.conditions import Condition, FalseCond, TrueCond
from repro.has.schema import DatabaseSchema
from repro.has.services import (
    ClosingService,
    Insert,
    InternalService,
    OpeningService,
    Retrieve,
    Update,
)
from repro.has.tasks import ArtifactRelation, TaskSchema, Variable
from repro.has.types import IdType, VALUE, VarType


class TaskBuilder:
    """Accumulates the definition of one task; obtained from :class:`ArtifactSystemBuilder.task`."""

    def __init__(self, builder: "ArtifactSystemBuilder", name: str, parent: Optional[str]):
        self._builder = builder
        self.name = name
        self.parent = parent
        self._variables: List[Variable] = []
        self._relations: List[ArtifactRelation] = []
        self._input: List[str] = []
        self._output: List[str] = []
        self._services: List[InternalService] = []
        self._opening_pre: Condition = TrueCond()
        self._closing_pre: Optional[Condition] = None
        self._input_map: Dict[str, str] = {}
        self._output_map: Dict[str, str] = {}

    # -- variables ---------------------------------------------------------------

    def variable(self, name: str, input: bool = False, output: bool = False) -> "TaskBuilder":
        """Declare a data variable."""
        return self._add_variable(Variable(name, VALUE), input, output)

    def id_variable(
        self, name: str, relation: str, input: bool = False, output: bool = False
    ) -> "TaskBuilder":
        """Declare an id variable ranging over the ids of *relation*."""
        return self._add_variable(Variable(name, IdType(relation)), input, output)

    def _add_variable(self, variable: Variable, input: bool, output: bool) -> "TaskBuilder":
        self._variables.append(variable)
        if input:
            self._input.append(variable.name)
        if output:
            self._output.append(variable.name)
        return self

    def artifact_relation(self, name: str, attributes: Sequence[str]) -> "TaskBuilder":
        """Declare an artifact relation whose attributes copy the types of existing variables."""
        attrs = []
        declared = {v.name: v for v in self._variables}
        for attr_name in attributes:
            if attr_name not in declared:
                raise KeyError(
                    f"artifact relation {name!r}: attribute {attr_name!r} must match an "
                    f"already-declared variable of task {self.name!r}"
                )
            attrs.append(Variable(attr_name, declared[attr_name].type))
        self._relations.append(ArtifactRelation(name, attrs))
        return self

    # -- services -----------------------------------------------------------------

    def internal_service(
        self,
        name: str,
        pre: Condition = TrueCond(),
        post: Condition = TrueCond(),
        propagated: Iterable[str] = (),
        insert: Optional[Tuple[str, Sequence[str]]] = None,
        retrieve: Optional[Tuple[str, Sequence[str]]] = None,
    ) -> "TaskBuilder":
        """Declare an internal service.

        ``insert`` / ``retrieve`` are ``(relation, variables)`` pairs; at most
        one may be given.  When one is given, the propagated set defaults to
        the task's input variables, as the model requires.
        """
        update: Optional[Update] = None
        if insert is not None and retrieve is not None:
            raise ValueError(f"service {name!r}: at most one of insert/retrieve may be given")
        if insert is not None:
            update = Insert(insert[0], insert[1])
        if retrieve is not None:
            update = Retrieve(retrieve[0], retrieve[1])
        propagated = set(propagated) | set(self._input)
        if update is not None:
            propagated = set(self._input)
        self._services.append(
            InternalService(name, self.name, pre=pre, post=post, propagated=propagated, update=update)
        )
        return self

    def opening(self, pre: Condition = TrueCond(), input_map: Optional[Dict[str, str]] = None) -> "TaskBuilder":
        """Set the opening guard (a condition over the parent's variables) and input map."""
        self._opening_pre = pre
        if input_map is not None:
            self._input_map = dict(input_map)
        return self

    def closing(self, pre: Condition = TrueCond(), output_map: Optional[Dict[str, str]] = None) -> "TaskBuilder":
        """Set the closing guard (a condition over this task's variables) and output map."""
        self._closing_pre = pre
        if output_map is not None:
            self._output_map = dict(output_map)
        return self

    # -- assembly -------------------------------------------------------------------

    def _task_schema(self) -> TaskSchema:
        return TaskSchema(
            self.name,
            self._variables,
            self._relations,
            input_variables=self._input,
            output_variables=self._output,
        )

    def _opening_service(self) -> OpeningService:
        input_map = dict(self._input_map)
        if not input_map and self._input and self.parent is not None:
            # Default: input variables map to the parent's variables of the same name.
            input_map = {name: name for name in self._input}
        return OpeningService(self.name, self._opening_pre, input_map)

    def _closing_service(self, is_root: bool) -> ClosingService:
        pre = self._closing_pre
        if pre is None:
            pre = FalseCond() if is_root else TrueCond()
        output_map = dict(self._output_map)
        if not output_map and self._output and not is_root:
            output_map = {name: name for name in self._output}
        return ClosingService(self.name, pre, output_map)


class ArtifactSystemBuilder:
    """Top-level builder: declare tasks (with parents), then :meth:`build`.

    When no global pre-condition is given, the builder generates one that
    initialises every variable of the root task to ``null`` -- the same
    convention as the paper's running example ("all variables are initialized
    to null by the global pre-condition").  Pass an explicit condition to
    override this (the paper's semantics allows any initial valuation that
    satisfies Π).
    """

    def __init__(
        self,
        name: str,
        schema: DatabaseSchema,
        global_precondition: Optional[Condition] = None,
    ):
        self.name = name
        self.schema = schema
        self.global_precondition = global_precondition
        self._tasks: Dict[str, TaskBuilder] = {}
        self._order: List[str] = []

    def task(self, name: str, parent: Optional[str] = None) -> TaskBuilder:
        """Declare a task.  The first task declared without a parent is the root."""
        if name in self._tasks:
            raise ValueError(f"task {name!r} already declared")
        if parent is not None and parent not in self._tasks:
            raise ValueError(f"parent task {parent!r} must be declared before {name!r}")
        builder = TaskBuilder(self, name, parent)
        self._tasks[name] = builder
        self._order.append(name)
        return builder

    def build(self) -> ArtifactSystem:
        """Assemble and validate the artifact system."""
        tasks = [self._tasks[name]._task_schema() for name in self._order]
        hierarchy = {name: self._tasks[name].parent for name in self._order}
        root_candidates = [name for name, parent in hierarchy.items() if parent is None]
        root = root_candidates[0] if root_candidates else None
        internal = [s for name in self._order for s in self._tasks[name]._services]
        opening = [self._tasks[name]._opening_service() for name in self._order]
        closing = [self._tasks[name]._closing_service(name == root) for name in self._order]
        global_precondition = self.global_precondition
        if global_precondition is None and root is not None:
            from repro.has.conditions import NULL, Eq, Var, conjunction

            global_precondition = conjunction(
                Eq(Var(variable.name), NULL)
                for variable in self._tasks[root]._variables
            )
        return ArtifactSystem(
            schema=self.schema,
            tasks=tasks,
            hierarchy=hierarchy,
            internal_services=internal,
            opening_services=opening,
            closing_services=closing,
            global_precondition=global_precondition or TrueCond(),
            name=self.name,
        )
