"""Type system for artifact variables and attributes.

The HAS* model distinguishes two kinds of values (Section 2 of the paper):

* *data values* drawn from the infinite domain ``DOM_val`` -- modelled by
  :class:`ValueType`;
* *identifiers* drawn from per-relation infinite domains ``Dom(R.ID)`` --
  modelled by :class:`IdType`, which records the relation whose IDs the
  variable or attribute ranges over.

Both kinds of variables may additionally hold the special constant ``null``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union


@dataclass(frozen=True)
class ValueType:
    """The type of non-id variables and non-key attributes (``DOM_val``)."""

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return "ValueType()"

    def __str__(self) -> str:
        return "value"


@dataclass(frozen=True)
class IdType:
    """The type of id variables / key and foreign-key attributes.

    ``IdType("CUSTOMERS")`` is the type of identifiers of the ``CUSTOMERS``
    relation, i.e. the domain ``Dom(CUSTOMERS.ID)`` of the paper.
    """

    relation: str

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"IdType({self.relation!r})"

    def __str__(self) -> str:
        return f"{self.relation}.ID"


VarType = Union[ValueType, IdType]

VALUE = ValueType()


def is_id_type(var_type: VarType) -> bool:
    """Return ``True`` when *var_type* is an :class:`IdType`."""
    return isinstance(var_type, IdType)


def types_compatible(left: VarType, right: VarType) -> bool:
    """Whether two expressions of these types may ever be equal.

    Identifiers of different relations come from disjoint domains and can
    therefore never be equal; identifiers and data values are likewise
    incomparable.  ``null`` is handled separately by the condition layer.
    """
    return left == right
