"""Task schemas: artifact variables, artifact relations, input/output variables.

A task schema (Definition 3) is a tuple ``(x̄, S, x̄_in, x̄_out)`` where ``x̄``
is a sequence of typed artifact variables, ``S`` a set of artifact relations
local to the task, and ``x̄_in`` / ``x̄_out`` the subsequences of input and
output variables used when the task is opened / closed by its parent.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.has.types import IdType, ValueType, VarType, VALUE, is_id_type


class TaskError(ValueError):
    """Raised when a task schema is malformed."""


@dataclass(frozen=True)
class Variable:
    """A typed artifact variable.

    ``Variable("cust_id", IdType("CUSTOMERS"))`` is an id variable ranging
    over ``Dom(CUSTOMERS.ID) ∪ {null}``; ``Variable("status")`` is a data
    variable ranging over ``DOM_val ∪ {null}``.
    """

    name: str
    type: VarType = VALUE

    @property
    def is_id(self) -> bool:
        return is_id_type(self.type)

    def __str__(self) -> str:
        return f"{self.name}: {self.type}"


@dataclass(frozen=True)
class ArtifactRelation:
    """An updatable artifact relation local to a task.

    Tuples inserted into the relation have one component per attribute;
    attribute types mirror variable types (data values or ids of a specific
    database relation).
    """

    name: str
    attributes: Tuple[Variable, ...]

    def __init__(self, name: str, attributes: Iterable[Variable]):
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "attributes", tuple(attributes))
        names = [a.name for a in self.attributes]
        if len(set(names)) != len(names):
            raise TaskError(f"duplicate attribute names in artifact relation {name!r}")
        if not self.attributes:
            raise TaskError(f"artifact relation {name!r} needs at least one attribute")

    @property
    def attribute_names(self) -> Tuple[str, ...]:
        return tuple(a.name for a in self.attributes)

    @property
    def arity(self) -> int:
        return len(self.attributes)

    def attribute(self, name: str) -> Variable:
        for attr in self.attributes:
            if attr.name == name:
                return attr
        raise KeyError(f"artifact relation {self.name!r} has no attribute {name!r}")

    def __str__(self) -> str:
        return f"{self.name}({', '.join(a.name for a in self.attributes)})"


class TaskSchema:
    """A task schema ``T = (x̄, S, x̄_in, x̄_out)`` (Definition 3)."""

    def __init__(
        self,
        name: str,
        variables: Sequence[Variable],
        artifact_relations: Sequence[ArtifactRelation] = (),
        input_variables: Sequence[str] = (),
        output_variables: Sequence[str] = (),
    ):
        self.name = name
        self._variables: Dict[str, Variable] = {}
        for var in variables:
            if var.name in self._variables:
                raise TaskError(f"duplicate variable {var.name!r} in task {name!r}")
            self._variables[var.name] = var
        self._relations: Dict[str, ArtifactRelation] = {}
        for rel in artifact_relations:
            if rel.name in self._relations:
                raise TaskError(f"duplicate artifact relation {rel.name!r} in task {name!r}")
            self._relations[rel.name] = rel
        self.input_variables: Tuple[str, ...] = tuple(input_variables)
        self.output_variables: Tuple[str, ...] = tuple(output_variables)
        for var_name in self.input_variables + self.output_variables:
            if var_name not in self._variables:
                raise TaskError(
                    f"input/output variable {var_name!r} is not a variable of task {name!r}"
                )
        if len(set(self.input_variables)) != len(self.input_variables):
            raise TaskError(f"duplicate input variables in task {name!r}")
        if len(set(self.output_variables)) != len(self.output_variables):
            raise TaskError(f"duplicate output variables in task {name!r}")

    # -- accessors ------------------------------------------------------------

    @property
    def variables(self) -> Tuple[Variable, ...]:
        return tuple(self._variables.values())

    @property
    def variable_names(self) -> Tuple[str, ...]:
        return tuple(self._variables)

    @property
    def id_variables(self) -> Tuple[Variable, ...]:
        return tuple(v for v in self._variables.values() if v.is_id)

    @property
    def value_variables(self) -> Tuple[Variable, ...]:
        return tuple(v for v in self._variables.values() if not v.is_id)

    @property
    def artifact_relations(self) -> Tuple[ArtifactRelation, ...]:
        return tuple(self._relations.values())

    @property
    def artifact_relation_names(self) -> Tuple[str, ...]:
        return tuple(self._relations)

    def variable(self, name: str) -> Variable:
        try:
            return self._variables[name]
        except KeyError:
            raise KeyError(f"task {self.name!r} has no variable {name!r}") from None

    def has_variable(self, name: str) -> bool:
        return name in self._variables

    def artifact_relation(self, name: str) -> ArtifactRelation:
        try:
            return self._relations[name]
        except KeyError:
            raise KeyError(f"task {self.name!r} has no artifact relation {name!r}") from None

    def has_artifact_relation(self, name: str) -> bool:
        return name in self._relations

    def variable_type(self, name: str) -> VarType:
        return self.variable(name).type

    def __eq__(self, other: object) -> bool:
        """Structural equality: same name, variables, relations and I/O lists."""
        if not isinstance(other, TaskSchema):
            return NotImplemented
        return (
            self.name == other.name
            and self.variables == other.variables
            and self.artifact_relations == other.artifact_relations
            and self.input_variables == other.input_variables
            and self.output_variables == other.output_variables
        )

    __hash__ = object.__hash__

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TaskSchema({self.name!r}, vars={list(self._variables)}, "
            f"relations={list(self._relations)})"
        )
