"""Artifact systems: a hierarchy of tasks over a database schema (Definitions 5, 13).

An :class:`ArtifactSystem` bundles

* an acyclic :class:`~repro.has.schema.DatabaseSchema`,
* a rooted tree of :class:`~repro.has.tasks.TaskSchema` objects,
* the internal services of each task and the opening / closing services of
  every task, and
* the global pre-condition Π over the root task's variables.

Construction validates the definitional restrictions of the HAS* model: the
hierarchy is a tree, conditions only mention variables of the right task,
input variables are always propagated, services with an artifact-relation
update propagate exactly the input variables, update tuples are type-correct,
and opening/closing maps are type-correct 1-1 mappings.

Note on variable names: the paper formally requires variable names to be
pairwise disjoint across tasks but reuses names in its examples "for
convenience".  We follow the examples: every task is its own namespace, so the
same name may appear in several tasks without ambiguity (conditions are always
interpreted relative to a single task).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from repro.has.conditions import Condition, FalseCond, TrueCond
from repro.has.schema import DatabaseSchema
from repro.has.services import (
    ClosingService,
    Insert,
    InternalService,
    OpeningService,
    Retrieve,
)
from repro.has.tasks import TaskSchema, Variable
from repro.has.types import IdType, VarType


class SpecificationError(ValueError):
    """Raised when an artifact system violates the HAS* well-formedness rules."""


class ArtifactSystem:
    """A HAS* specification ``Γ = (A, Σ, Π)`` (Definition 13)."""

    def __init__(
        self,
        schema: DatabaseSchema,
        tasks: Sequence[TaskSchema],
        hierarchy: Mapping[str, Optional[str]],
        internal_services: Sequence[InternalService],
        opening_services: Sequence[OpeningService] = (),
        closing_services: Sequence[ClosingService] = (),
        global_precondition: Condition = TrueCond(),
        name: str = "artifact-system",
    ):
        self.name = name
        self.schema = schema
        self._tasks: Dict[str, TaskSchema] = {}
        for task in tasks:
            if task.name in self._tasks:
                raise SpecificationError(f"duplicate task name {task.name!r}")
            self._tasks[task.name] = task

        self._parent: Dict[str, Optional[str]] = dict(hierarchy)
        self._children: Dict[str, List[str]] = {name: [] for name in self._tasks}
        self._root = self._build_hierarchy()

        self._internal: Dict[str, List[InternalService]] = {name: [] for name in self._tasks}
        for service in internal_services:
            if service.task not in self._tasks:
                raise SpecificationError(
                    f"internal service {service.name!r} refers to unknown task {service.task!r}"
                )
            self._internal[service.task].append(service)

        self._opening: Dict[str, OpeningService] = {}
        for service in opening_services:
            if service.task not in self._tasks:
                raise SpecificationError(
                    f"opening service refers to unknown task {service.task!r}"
                )
            if service.task in self._opening:
                raise SpecificationError(f"duplicate opening service for task {service.task!r}")
            self._opening[service.task] = service

        self._closing: Dict[str, ClosingService] = {}
        for service in closing_services:
            if service.task not in self._tasks:
                raise SpecificationError(
                    f"closing service refers to unknown task {service.task!r}"
                )
            if service.task in self._closing:
                raise SpecificationError(f"duplicate closing service for task {service.task!r}")
            self._closing[service.task] = service

        # Default opening/closing services where omitted: the root opens with
        # the global pre-condition and never closes; other tasks open and close
        # unconditionally with empty variable maps.
        for task_name in self._tasks:
            if task_name not in self._opening:
                if task_name == self._root:
                    self._opening[task_name] = OpeningService(task_name, TrueCond())
                else:
                    self._opening[task_name] = OpeningService(task_name, TrueCond())
            if task_name not in self._closing:
                if task_name == self._root:
                    self._closing[task_name] = ClosingService(task_name, FalseCond())
                else:
                    self._closing[task_name] = ClosingService(task_name, TrueCond())

        self.global_precondition = global_precondition
        self._validate()

    # ------------------------------------------------------------------ tree

    def _build_hierarchy(self) -> str:
        roots = []
        for task_name in self._tasks:
            if task_name not in self._parent:
                raise SpecificationError(f"task {task_name!r} missing from the hierarchy mapping")
            parent = self._parent[task_name]
            if parent is None:
                roots.append(task_name)
            else:
                if parent not in self._tasks:
                    raise SpecificationError(
                        f"task {task_name!r} has unknown parent {parent!r}"
                    )
                self._children[parent].append(task_name)
        for extra in self._parent:
            if extra not in self._tasks:
                raise SpecificationError(f"hierarchy mentions unknown task {extra!r}")
        if len(roots) != 1:
            raise SpecificationError(
                f"the task hierarchy must have exactly one root, found {roots!r}"
            )
        root = roots[0]
        # Check the hierarchy is a tree (every task reachable from the root,
        # no cycles).
        visited: Set[str] = set()
        stack = [root]
        while stack:
            current = stack.pop()
            if current in visited:
                raise SpecificationError("the task hierarchy contains a cycle")
            visited.add(current)
            stack.extend(self._children[current])
        if visited != set(self._tasks):
            missing = set(self._tasks) - visited
            raise SpecificationError(f"tasks unreachable from the root: {sorted(missing)}")
        return root

    # -------------------------------------------------------------- validation

    def _validate(self) -> None:
        self._validate_variable_types()
        for task_name, services in self._internal.items():
            task = self._tasks[task_name]
            names = [s.name for s in services]
            if len(set(names)) != len(names):
                raise SpecificationError(f"duplicate internal service names in task {task_name!r}")
            for service in services:
                self._validate_internal(task, service)
        for task_name, opening in self._opening.items():
            self._validate_opening(task_name, opening)
        for task_name, closing in self._closing.items():
            self._validate_closing(task_name, closing)
        self._validate_condition(self.global_precondition, self._tasks[self._root], "global pre-condition")

    def _validate_variable_types(self) -> None:
        for task in self._tasks.values():
            for var in task.variables:
                if isinstance(var.type, IdType) and var.type.relation not in self.schema:
                    raise SpecificationError(
                        f"variable {task.name}.{var.name} has id type of unknown relation "
                        f"{var.type.relation!r}"
                    )
            for rel in task.artifact_relations:
                for attr in rel.attributes:
                    if isinstance(attr.type, IdType) and attr.type.relation not in self.schema:
                        raise SpecificationError(
                            f"artifact relation {task.name}.{rel.name} attribute {attr.name!r} "
                            f"has id type of unknown relation {attr.type.relation!r}"
                        )

    def _validate_condition(self, condition: Condition, task: TaskSchema, context: str) -> None:
        unknown = condition.variables() - set(task.variable_names)
        if unknown:
            raise SpecificationError(
                f"{context} mentions variables {sorted(unknown)} that are not variables of "
                f"task {task.name!r}"
            )
        for atom in condition.atoms():
            relation = getattr(atom, "relation", None)
            if relation is None:
                continue
            if not self.schema.has_relation(relation):
                raise SpecificationError(
                    f"{context} uses unknown database relation {relation!r}"
                )
            expected = self.schema.relation(relation).arity
            if len(atom.args) != expected:
                raise SpecificationError(
                    f"{context}: atom {atom} has {len(atom.args)} arguments, "
                    f"relation {relation!r} has arity {expected}"
                )

    def _validate_internal(self, task: TaskSchema, service: InternalService) -> None:
        context = f"service {task.name}.{service.name}"
        self._validate_condition(service.pre, task, f"{context} pre-condition")
        self._validate_condition(service.post, task, f"{context} post-condition")
        unknown = service.propagated - set(task.variable_names)
        if unknown:
            raise SpecificationError(
                f"{context} propagates unknown variables {sorted(unknown)}"
            )
        if not set(task.input_variables) <= service.propagated | set():
            # Input variables are always propagated; tolerate specifications
            # that omit them by adding them implicitly would hide errors, so
            # we require them to be listed only when the task has inputs.
            missing = set(task.input_variables) - service.propagated
            if missing:
                raise SpecificationError(
                    f"{context} must propagate the input variables {sorted(missing)}"
                )
        if service.update is not None:
            if service.propagated != frozenset(task.input_variables):
                raise SpecificationError(
                    f"{context} has an artifact-relation update, so its propagated set must "
                    f"equal the task's input variables"
                )
            update = service.update
            if not task.has_artifact_relation(update.relation):
                raise SpecificationError(
                    f"{context} updates unknown artifact relation {update.relation!r}"
                )
            relation = task.artifact_relation(update.relation)
            if len(update.variables) != relation.arity:
                raise SpecificationError(
                    f"{context}: update {update} has {len(update.variables)} variables, "
                    f"artifact relation {relation.name!r} has arity {relation.arity}"
                )
            for var_name, attr in zip(update.variables, relation.attributes):
                if not task.has_variable(var_name):
                    raise SpecificationError(
                        f"{context}: update uses unknown variable {var_name!r}"
                    )
                if task.variable_type(var_name) != attr.type:
                    raise SpecificationError(
                        f"{context}: update variable {var_name!r} has type "
                        f"{task.variable_type(var_name)} but attribute {attr.name!r} has type "
                        f"{attr.type}"
                    )

    def _validate_opening(self, task_name: str, service: OpeningService) -> None:
        task = self._tasks[task_name]
        context = f"opening service of {task_name!r}"
        if task_name == self._root:
            if service.input_map:
                raise SpecificationError(f"{context}: the root task takes no input variables")
            self._validate_condition(service.pre, task, f"{context} pre-condition")
            return
        parent = self._tasks[self.parent_of(task_name)]
        self._validate_condition(service.pre, parent, f"{context} pre-condition")
        mapping = service.input_mapping()
        if set(mapping) != set(task.input_variables):
            raise SpecificationError(
                f"{context}: input map must cover exactly the input variables "
                f"{list(task.input_variables)}, got {sorted(mapping)}"
            )
        if len(set(mapping.values())) != len(mapping):
            raise SpecificationError(f"{context}: input map must be 1-1")
        for child_var, parent_var in mapping.items():
            if not parent.has_variable(parent_var):
                raise SpecificationError(
                    f"{context}: parent variable {parent_var!r} does not exist"
                )
            if parent.variable_type(parent_var) != task.variable_type(child_var):
                raise SpecificationError(
                    f"{context}: type mismatch passing {parent_var!r} to {child_var!r}"
                )

    def _validate_closing(self, task_name: str, service: ClosingService) -> None:
        task = self._tasks[task_name]
        context = f"closing service of {task_name!r}"
        self._validate_condition(service.pre, task, f"{context} pre-condition")
        if task_name == self._root:
            if service.output_map:
                raise SpecificationError(f"{context}: the root task returns no output variables")
            return
        parent = self._tasks[self.parent_of(task_name)]
        mapping = service.output_mapping()
        if set(mapping) != set(task.output_variables):
            raise SpecificationError(
                f"{context}: output map must cover exactly the output variables "
                f"{list(task.output_variables)}, got {sorted(mapping)}"
            )
        if len(set(mapping.values())) != len(mapping):
            raise SpecificationError(f"{context}: output map must be 1-1")
        returned_parent_vars = set(mapping.values())
        if returned_parent_vars & set(parent.input_variables):
            raise SpecificationError(
                f"{context}: returned variables may not overlap the parent's input variables"
            )
        for child_var, parent_var in mapping.items():
            if not parent.has_variable(parent_var):
                raise SpecificationError(
                    f"{context}: parent variable {parent_var!r} does not exist"
                )
            if parent.variable_type(parent_var) != task.variable_type(child_var):
                raise SpecificationError(
                    f"{context}: type mismatch returning {child_var!r} into {parent_var!r}"
                )

    # -------------------------------------------------------------- accessors

    @property
    def root(self) -> str:
        """Name of the root task T1."""
        return self._root

    @property
    def task_names(self) -> Tuple[str, ...]:
        return tuple(self._tasks)

    @property
    def tasks(self) -> Tuple[TaskSchema, ...]:
        return tuple(self._tasks.values())

    def task(self, name: str) -> TaskSchema:
        try:
            return self._tasks[name]
        except KeyError:
            raise KeyError(f"unknown task {name!r}") from None

    def has_task(self, name: str) -> bool:
        return name in self._tasks

    def parent_of(self, task_name: str) -> Optional[str]:
        return self._parent[task_name]

    def children_of(self, task_name: str) -> Tuple[str, ...]:
        return tuple(self._children[task_name])

    def descendants_of(self, task_name: str) -> Tuple[str, ...]:
        """All strict descendants of *task_name* in pre-order."""
        result: List[str] = []
        stack = list(self._children[task_name])
        while stack:
            current = stack.pop(0)
            result.append(current)
            stack = list(self._children[current]) + stack
        return tuple(result)

    def internal_services(self, task_name: str) -> Tuple[InternalService, ...]:
        return tuple(self._internal[task_name])

    def all_internal_services(self) -> Tuple[InternalService, ...]:
        return tuple(s for services in self._internal.values() for s in services)

    def opening_service(self, task_name: str) -> OpeningService:
        return self._opening[task_name]

    def closing_service(self, task_name: str) -> ClosingService:
        return self._closing[task_name]

    def observable_service_names(self, task_name: str) -> Tuple[str, ...]:
        """Names of the services observable in local runs of *task_name* (Σ^obs_T).

        These are the task's internal services, its own opening and closing
        services, and the opening and closing services of its children.
        """
        names = [s.name for s in self._internal[task_name]]
        names.append(self._opening[task_name].name)
        names.append(self._closing[task_name].name)
        for child in self._children[task_name]:
            names.append(self._opening[child].name)
            names.append(self._closing[child].name)
        return tuple(names)

    # -------------------------------------------------------------- statistics

    def statistics(self) -> Dict[str, float]:
        """Size statistics in the format of Table 1 of the paper."""
        n_services = sum(len(s) for s in self._internal.values()) + 2 * len(self._tasks)
        n_variables = sum(len(t.variables) for t in self._tasks.values())
        return {
            "relations": len(self.schema),
            "tasks": len(self._tasks),
            "variables": n_variables,
            "services": n_services,
        }

    def __eq__(self, other: object) -> bool:
        """Structural equality over all declared components (used by spec round-trips)."""
        if not isinstance(other, ArtifactSystem):
            return NotImplemented
        return (
            self.name == other.name
            and self.schema == other.schema
            and self.tasks == other.tasks
            and self._parent == other._parent
            and self._internal == other._internal
            and self._opening == other._opening
            and self._closing == other._closing
            and self.global_precondition == other.global_precondition
        )

    __hash__ = object.__hash__

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ArtifactSystem({self.name!r}, tasks={list(self._tasks)})"
