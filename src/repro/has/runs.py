"""Simulation of concrete local runs of a task.

The verifier reasons about *local runs* of a task (the subsequence of a global
run consisting of the task's observable transitions).  For testing we simulate
local runs directly: starting from the opening of the task under verification,
we repeatedly apply observable services (internal services, children opening /
closing, and the task's own closing service) on a concrete database.

The simulator abstracts the behaviour of child tasks exactly like the symbolic
verifier does: when a child closes, its returned variables receive arbitrary
values from the candidate pool (all possible child behaviours are allowed).
This makes random concrete local runs a sound sample of the runs the verifier
explores, which is what the differential tests rely on.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.has.artifact_system import ArtifactSystem
from repro.has.database import Database
from repro.has.instance import Instance, TransitionEngine, initial_instance
from repro.has.services import InternalService
from repro.has.tasks import TaskSchema
from repro.has.types import IdType

#: Reserved service name used for the terminal stutter step after a task closes.
TERMINATED_SERVICE = "__terminated__"


@dataclass(frozen=True)
class LocalSnapshot:
    """One snapshot of a local run: the service applied and the resulting valuation."""

    service: str
    valuation: Dict[str, object]
    child_stages: Dict[str, bool]

    def value(self, variable: str) -> object:
        return self.valuation[variable]


@dataclass
class LocalRun:
    """A finite prefix of a local run of the verified task."""

    task: str
    snapshots: List[LocalSnapshot]
    closed: bool = False

    def services(self) -> List[str]:
        return [s.service for s in self.snapshots]

    def __len__(self) -> int:
        return len(self.snapshots)


class ConcreteRunner:
    """Enumerates / samples concrete local runs of one task on a concrete database."""

    def __init__(
        self,
        system: ArtifactSystem,
        database: Database,
        task: Optional[str] = None,
        extra_constants: Iterable[object] = (),
        branch_limit: int = 400,
    ):
        self.system = system
        self.database = database
        self.task_name = task or system.root
        self.task = system.task(self.task_name)
        self.engine = TransitionEngine(system, database, extra_constants)
        self.branch_limit = branch_limit

    # -- initial snapshots -------------------------------------------------------

    def initial_snapshots(self) -> List[LocalSnapshot]:
        """Snapshots produced by the opening service of the verified task."""
        opening = self.system.opening_service(self.task_name)
        snapshots = []
        if self.task_name == self.system.root:
            valuation = {var.name: None for var in self.task.variables}
            if self.system.global_precondition.evaluate(valuation, self.database):
                snapshots.append(LocalSnapshot(opening.name, valuation, self._inactive_children()))
            # The global pre-condition may constrain variables away from null;
            # try candidate assignments for the variables it mentions.
            mentioned = sorted(self.system.global_precondition.variables())
            if mentioned:
                snapshots.extend(self._satisfying_openings(opening.name, mentioned))
        else:
            # Input variables come from the parent: any candidate values.
            mentioned = list(self.task.input_variables)
            valuation = {var.name: None for var in self.task.variables}
            snapshots.append(LocalSnapshot(opening.name, valuation, self._inactive_children()))
            if mentioned:
                snapshots.extend(self._satisfying_openings(opening.name, mentioned, check_pre=False))
        return snapshots

    def _satisfying_openings(
        self, service_name: str, variables: Sequence[str], check_pre: bool = True
    ) -> List[LocalSnapshot]:
        import itertools

        pools = [self.engine.candidate_values(self.task, v) for v in variables]
        snapshots = []
        count = 0
        for combo in itertools.product(*pools):
            count += 1
            if count > self.branch_limit:
                break
            valuation = {var.name: None for var in self.task.variables}
            for var_name, value in zip(variables, combo):
                valuation[var_name] = value
            if check_pre and not self.system.global_precondition.evaluate(valuation, self.database):
                continue
            snapshots.append(LocalSnapshot(service_name, valuation, self._inactive_children()))
        return snapshots

    def _inactive_children(self) -> Dict[str, bool]:
        return {child: False for child in self.system.children_of(self.task_name)}

    # -- successor enumeration -----------------------------------------------------

    def successors(self, snapshot: LocalSnapshot, run_closed: bool = False) -> List[LocalSnapshot]:
        """All observable successors of a local snapshot (bounded enumeration)."""
        if run_closed:
            return [LocalSnapshot(TERMINATED_SERVICE, dict(snapshot.valuation), dict(snapshot.child_stages))]
        result: List[LocalSnapshot] = []
        result.extend(self._internal_successors(snapshot))
        result.extend(self._child_open_successors(snapshot))
        result.extend(self._child_close_successors(snapshot))
        result.extend(self._own_close_successors(snapshot))
        return result

    def _instance_from_snapshot(self, snapshot: LocalSnapshot, relation_contents) -> Instance:
        base = initial_instance(self.system)
        stages = {name: False for name in self.system.task_names}
        stages[self.task_name] = True
        stages.update(snapshot.child_stages)
        return base.with_updates(
            valuations={self.task_name: snapshot.valuation},
            stages=stages,
            relations=relation_contents,
        )

    def _internal_successors(self, snapshot: LocalSnapshot) -> List[LocalSnapshot]:
        if any(snapshot.child_stages.values()):
            return []
        result = []
        valuation = dict(snapshot.valuation)
        for service in self.system.internal_services(self.task_name):
            if not service.pre.evaluate(valuation, self.database):
                continue
            propagated = set(service.propagated)
            free_vars = [v.name for v in self.task.variables if v.name not in propagated]
            import itertools

            pools = [self.engine.candidate_values(self.task, v) for v in free_vars]
            count = 0
            for combo in itertools.product(*pools) if free_vars else [()]:
                count += 1
                if count > self.branch_limit:
                    break
                next_valuation = dict(valuation)
                for var_name, value in zip(free_vars, combo):
                    next_valuation[var_name] = value
                if not service.post.evaluate(next_valuation, self.database):
                    continue
                result.append(
                    LocalSnapshot(service.name, next_valuation, dict(snapshot.child_stages))
                )
        return result

    def _child_open_successors(self, snapshot: LocalSnapshot) -> List[LocalSnapshot]:
        result = []
        for child in self.system.children_of(self.task_name):
            if snapshot.child_stages.get(child):
                continue
            opening = self.system.opening_service(child)
            if not opening.pre.evaluate(snapshot.valuation, self.database):
                continue
            stages = dict(snapshot.child_stages)
            stages[child] = True
            result.append(LocalSnapshot(opening.name, dict(snapshot.valuation), stages))
        return result

    def _child_close_successors(self, snapshot: LocalSnapshot) -> List[LocalSnapshot]:
        import itertools

        result = []
        for child in self.system.children_of(self.task_name):
            if not snapshot.child_stages.get(child):
                continue
            closing = self.system.closing_service(child)
            returned_parent_vars = sorted(set(closing.output_mapping().values()))
            stages = dict(snapshot.child_stages)
            stages[child] = False
            if not returned_parent_vars:
                result.append(LocalSnapshot(closing.name, dict(snapshot.valuation), stages))
                continue
            pools = [self.engine.candidate_values(self.task, v) for v in returned_parent_vars]
            count = 0
            for combo in itertools.product(*pools):
                count += 1
                if count > self.branch_limit:
                    break
                valuation = dict(snapshot.valuation)
                for var_name, value in zip(returned_parent_vars, combo):
                    valuation[var_name] = value
                result.append(LocalSnapshot(closing.name, valuation, stages))
        return result

    def _own_close_successors(self, snapshot: LocalSnapshot) -> List[LocalSnapshot]:
        if any(snapshot.child_stages.values()):
            return []
        closing = self.system.closing_service(self.task_name)
        if not closing.pre.evaluate(snapshot.valuation, self.database):
            return []
        return [LocalSnapshot(closing.name, dict(snapshot.valuation), dict(snapshot.child_stages))]

    # -- random sampling --------------------------------------------------------------

    def random_local_run(self, rng: random.Random, max_length: int = 12) -> LocalRun:
        """Sample one local run prefix uniformly over the bounded successor sets.

        Artifact-relation updates are ignored by this sampler (the snapshot
        keeps only the variable valuation), which keeps it sound for
        properties over variables and services.
        """
        initials = self.initial_snapshots()
        if not initials:
            return LocalRun(self.task_name, [], closed=False)
        snapshot = rng.choice(initials)
        run = LocalRun(self.task_name, [snapshot])
        closing_name = self.system.closing_service(self.task_name).name
        for _ in range(max_length - 1):
            if run.closed:
                break
            choices = self.successors(snapshot)
            if not choices:
                break
            snapshot = rng.choice(choices)
            run.snapshots.append(snapshot)
            if snapshot.service == closing_name:
                run.closed = True
        return run
