"""Content fingerprints of canonical spec dicts.

The verification service caches results under a fingerprint of the *content*
of a job -- the canonical dict forms of the artifact system, the property and
the verifier options -- so two jobs with structurally identical inputs share
one verification run even when the objects were built independently.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Mapping


def canonical_json(data: Any) -> str:
    """Deterministic JSON: sorted keys, no whitespace, no NaN/Infinity."""
    return json.dumps(
        data, sort_keys=True, separators=(",", ":"), ensure_ascii=True, allow_nan=False
    )


def fingerprint(data: Any) -> str:
    """Hex SHA-256 of the canonical JSON form of *data*."""
    return hashlib.sha256(canonical_json(data).encode("utf-8")).hexdigest()


def job_fingerprint(
    system_dict: Mapping[str, Any],
    property_dict: Mapping[str, Any],
    options_dict: Mapping[str, Any],
) -> str:
    """The cache key of one (system, property, options) verification job."""
    return fingerprint(
        {"system": system_dict, "property": property_dict, "options": options_dict}
    )
