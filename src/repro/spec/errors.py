"""Errors raised by the spec serialization layer."""

from __future__ import annotations


class SpecError(ValueError):
    """Raised when a spec document is malformed or cannot be decoded."""


class SpecVersionError(SpecError):
    """Raised when a spec document was written by an incompatible schema version."""

    def __init__(self, found: object, supported: int):
        super().__init__(
            f"spec document has schema_version={found!r}; this build supports "
            f"versions 1..{supported}"
        )
        self.found = found
        self.supported = supported
