"""Versioned spec documents: an artifact system plus its properties, on disk.

A :class:`SpecBundle` is the unit the CLI and the verification service work
with: one HAS* specification together with the LTL-FO properties to verify
against it.  The file format is a plain JSON (or YAML, when PyYAML is
available) document::

    {
      "schema_version": 1,
      "generator": "repro 1.0.0",
      "system": { ... canonical ArtifactSystem dict ... },
      "properties": [ ... canonical LTLFOProperty dicts ... ]
    }

Compatibility rules (documented for users in ``README.md``):

* ``schema_version`` is a major version.  Readers accept any document with
  ``schema_version <= SCHEMA_VERSION`` and reject newer documents with
  :class:`~repro.spec.errors.SpecVersionError`.
* Unknown keys anywhere in the document are ignored, so fields may be added
  (with defaults) without a version bump.
* Removing or retyping a field requires bumping ``SCHEMA_VERSION``.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Union

from repro.has.artifact_system import ArtifactSystem
from repro.ltl.ltlfo import LTLFOProperty
from repro.spec.codec import (
    SCHEMA_VERSION,
    dump_property,
    dump_system,
    load_property,
    load_system,
)
from repro.spec.errors import SpecError, SpecVersionError

try:  # PyYAML is optional; JSON is the dependency-free default.
    import yaml as _yaml
except ImportError:  # pragma: no cover - depends on the environment
    _yaml = None


def _generator() -> str:
    from repro import __version__

    return f"repro {__version__}"


@dataclass
class SpecBundle:
    """One artifact system plus the LTL-FO properties to verify against it."""

    system: ArtifactSystem
    properties: List[LTLFOProperty] = field(default_factory=list)

    # ---------------------------------------------------------------- queries

    def property_named(self, name: str) -> LTLFOProperty:
        for ltl_property in self.properties:
            if ltl_property.name == name:
                return ltl_property
        raise KeyError(
            f"spec bundle has no property named {name!r}; available: "
            f"{[p.name for p in self.properties]}"
        )

    # ------------------------------------------------------------------ dicts

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema_version": SCHEMA_VERSION,
            "generator": _generator(),
            "system": dump_system(self.system),
            "properties": [dump_property(p) for p in self.properties],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any], validate: bool = True) -> "SpecBundle":
        if not isinstance(data, Mapping):
            raise SpecError(f"spec document must be a mapping, got {type(data).__name__}")
        version = data.get("schema_version", 1)
        if not isinstance(version, int) or version < 1 or version > SCHEMA_VERSION:
            raise SpecVersionError(version, SCHEMA_VERSION)
        system_data = data.get("system")
        if system_data is None:
            raise SpecError("spec document has no 'system' section")
        system = load_system(system_data)
        properties = [load_property(p) for p in data.get("properties", ())]
        if validate:
            _cross_validate_properties(system, properties)
        return cls(system=system, properties=properties)

    # ------------------------------------------------------------------ text

    def dumps(self, format: str = "json") -> str:
        if format == "json":
            return json.dumps(self.to_dict(), indent=2, sort_keys=False) + "\n"
        if format == "yaml":
            if _yaml is None:
                raise SpecError("YAML support requires PyYAML, which is not installed")
            return _yaml.safe_dump(self.to_dict(), sort_keys=False)
        raise SpecError(f"unknown spec format {format!r} (expected 'json' or 'yaml')")

    @classmethod
    def loads(cls, text: str, format: str = "json", validate: bool = True) -> "SpecBundle":
        if format == "json":
            try:
                data = json.loads(text)
            except json.JSONDecodeError as error:
                raise SpecError(f"malformed JSON spec document: {error}") from None
        elif format == "yaml":
            if _yaml is None:
                raise SpecError("YAML support requires PyYAML, which is not installed")
            try:
                data = _yaml.safe_load(text)
            except _yaml.YAMLError as error:
                raise SpecError(f"malformed YAML spec document: {error}") from None
        else:
            raise SpecError(f"unknown spec format {format!r} (expected 'json' or 'yaml')")
        return cls.from_dict(data, validate=validate)

    # ------------------------------------------------------------------ files

    def save(self, path: Union[str, os.PathLike], format: Optional[str] = None) -> None:
        """Write the bundle to *path*; the format is inferred from the extension."""
        format = format or _format_for(path)
        text = self.dumps(format)  # serialize first: a dumps() error must not truncate the file
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(text)

    @classmethod
    def load(
        cls,
        path: Union[str, os.PathLike],
        format: Optional[str] = None,
        validate: bool = True,
    ) -> "SpecBundle":
        """Read a bundle from *path*; the format is inferred from the extension."""
        format = format or _format_for(path)
        with open(path, "r", encoding="utf-8") as handle:
            return cls.loads(handle.read(), format, validate=validate)


def _cross_validate_properties(system: ArtifactSystem, properties: Sequence[LTLFOProperty]) -> None:
    """Reject properties that reference tasks or relations absent from the
    system -- precisely at load time, instead of as a deep KeyError half-way
    through the search.  Only the would-crash codes are load-fatal; the other
    analyzer findings stay advisory (``python -m repro lint``) or are caught
    by the verifier's own setup validation with equally precise messages."""
    from repro.analysis.analyzer import analyze_property

    messages = []
    for ltl_property in properties:
        for diagnostic in analyze_property(system, ltl_property):
            if diagnostic.code in ("VA102", "VA103", "VA104"):
                messages.append(f"{diagnostic.code}: {diagnostic.message}")
    if messages:
        raise SpecError("spec document is inconsistent: " + "; ".join(messages))


def _format_for(path: Union[str, os.PathLike]) -> str:
    extension = os.path.splitext(os.fspath(path))[1].lower()
    if extension in (".yaml", ".yml"):
        return "yaml"
    return "json"


# Convenience module-level helpers mirroring json.dump / json.load -----------


def save_spec(
    system: ArtifactSystem,
    path: Union[str, os.PathLike],
    properties: Sequence[LTLFOProperty] = (),
    format: Optional[str] = None,
) -> None:
    """Write *system* (and optional properties) as a spec file."""
    SpecBundle(system, list(properties)).save(path, format)


def load_spec(
    path: Union[str, os.PathLike],
    format: Optional[str] = None,
    validate: bool = True,
) -> SpecBundle:
    """Read a spec file into a :class:`SpecBundle`.

    With ``validate=False`` the cross-reference checks are skipped so tooling
    (notably ``python -m repro lint``) can load a broken spec and report the
    full analyzer diagnostics instead of the first fatal error.
    """
    return SpecBundle.load(path, format, validate=validate)
