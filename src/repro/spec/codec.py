"""Dict codecs for the HAS* model and LTL-FO properties (schema version 1).

Every model object maps to a plain, JSON-compatible dict (``dump_*``) and back
(``load_*``).  The dict forms are *canonical*: dumping the same object always
produces the same dict, and ``load(dump(x)) == x`` holds structurally for all
objects.  The codecs are the foundation of :mod:`repro.spec.bundle` (file
round-trips) and :mod:`repro.spec.fingerprint` (content-addressed caching in
:mod:`repro.service`).

Forward compatibility follows the versioned-artifact rules documented in
``README.md``: loaders ignore unknown keys (so a newer minor revision may add
fields with defaults) and treat absent optional keys as their defaults.  Only
a major-version bump (``SCHEMA_VERSION``) may remove or retype a field.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional, Union

from repro.has.artifact_system import ArtifactSystem
from repro.has.conditions import (
    And,
    Condition,
    Const,
    Eq,
    FalseCond,
    Neq,
    Not,
    Or,
    RelationAtom,
    Term,
    TrueCond,
    Var,
)
from repro.has.schema import Attribute, DatabaseSchema, Relation
from repro.has.services import (
    ClosingService,
    Insert,
    InternalService,
    OpeningService,
    Retrieve,
    Update,
)
from repro.has.tasks import ArtifactRelation, TaskSchema, Variable
from repro.has.types import IdType, VALUE, VarType
from repro.ltl.ltlfo import GlobalVariable, LTLFOProperty
from repro.ltl.parser import parse_ltl
from repro.spec.errors import SpecError

#: Major version of the spec document schema.  Bumped only on breaking
#: changes (removing or retyping a field); additions ride on the same version.
SCHEMA_VERSION = 1


def _require(mapping: Mapping[str, Any], key: str, context: str) -> Any:
    try:
        return mapping[key]
    except (KeyError, TypeError):
        raise SpecError(f"{context}: missing required key {key!r}") from None


# ---------------------------------------------------------------------------
# Types and terms
# ---------------------------------------------------------------------------


def dump_type(var_type: VarType) -> str:
    """``ValueType`` -> ``"value"``; ``IdType(R)`` -> ``"id:R"``."""
    if isinstance(var_type, IdType):
        return f"id:{var_type.relation}"
    return "value"


def load_type(text: str) -> VarType:
    if text == "value":
        return VALUE
    if isinstance(text, str) and text.startswith("id:") and len(text) > 3:
        return IdType(text[3:])
    raise SpecError(f"unknown variable type {text!r}")


def dump_term(term: Term) -> Dict[str, Any]:
    if isinstance(term, Var):
        return {"var": term.name}
    if isinstance(term, Const):
        return {"const": term.value}
    raise SpecError(f"cannot serialize term {term!r}")


def load_term(data: Mapping[str, Any]) -> Term:
    if not isinstance(data, Mapping):
        raise SpecError(f"term must be a mapping, got {data!r}")
    if "var" in data:
        return Var(data["var"])
    if "const" in data:
        value = data["const"]
        if value is not None and not isinstance(value, (str, int, float)):
            raise SpecError(f"constant value {value!r} is not JSON-scalar")
        return Const(value)
    raise SpecError(f"term must have a 'var' or 'const' key, got {dict(data)!r}")


# ---------------------------------------------------------------------------
# Conditions
# ---------------------------------------------------------------------------


def dump_condition(condition: Condition) -> Dict[str, Any]:
    """Tagged-dict form of a quantifier-free FO condition."""
    if isinstance(condition, TrueCond):
        return {"op": "true"}
    if isinstance(condition, FalseCond):
        return {"op": "false"}
    if isinstance(condition, Eq):
        return {"op": "eq", "left": dump_term(condition.left), "right": dump_term(condition.right)}
    if isinstance(condition, Neq):
        return {"op": "neq", "left": dump_term(condition.left), "right": dump_term(condition.right)}
    if isinstance(condition, RelationAtom):
        return {
            "op": "atom",
            "relation": condition.relation,
            "args": [dump_term(t) for t in condition.args],
        }
    if isinstance(condition, Not):
        return {"op": "not", "operand": dump_condition(condition.operand)}
    if isinstance(condition, And):
        return {
            "op": "and",
            "left": dump_condition(condition.left),
            "right": dump_condition(condition.right),
        }
    if isinstance(condition, Or):
        return {
            "op": "or",
            "left": dump_condition(condition.left),
            "right": dump_condition(condition.right),
        }
    raise SpecError(f"cannot serialize condition {condition!r}")


def load_condition(data: Mapping[str, Any]) -> Condition:
    op = _require(data, "op", "condition")
    if op == "true":
        return TrueCond()
    if op == "false":
        return FalseCond()
    if op in ("eq", "neq"):
        left = load_term(_require(data, "left", f"condition {op!r}"))
        right = load_term(_require(data, "right", f"condition {op!r}"))
        return Eq(left, right) if op == "eq" else Neq(left, right)
    if op == "atom":
        relation = _require(data, "relation", "relational atom")
        args = [load_term(t) for t in _require(data, "args", "relational atom")]
        return RelationAtom(relation, args)
    if op == "not":
        return Not(load_condition(_require(data, "operand", "negation")))
    if op in ("and", "or"):
        left = load_condition(_require(data, "left", f"condition {op!r}"))
        right = load_condition(_require(data, "right", f"condition {op!r}"))
        return And(left, right) if op == "and" else Or(left, right)
    raise SpecError(f"unknown condition operator {op!r}")


# ---------------------------------------------------------------------------
# Database schema
# ---------------------------------------------------------------------------


def dump_schema(schema: DatabaseSchema) -> Dict[str, Any]:
    relations = []
    for relation in schema.relations:
        attributes = []
        for attr in relation.attributes:
            entry: Dict[str, Any] = {"name": attr.name, "kind": attr.kind}
            if attr.target is not None:
                entry["target"] = attr.target
            attributes.append(entry)
        relations.append({"name": relation.name, "attributes": attributes})
    return {"relations": relations}


def load_schema(data: Mapping[str, Any]) -> DatabaseSchema:
    relations = []
    for entry in _require(data, "relations", "database schema"):
        attributes = tuple(
            Attribute(
                _require(attr, "name", "attribute"),
                attr.get("kind", "value"),
                attr.get("target"),
            )
            for attr in entry.get("attributes", ())
        )
        relations.append(Relation(_require(entry, "name", "relation"), attributes))
    return DatabaseSchema(relations)


# ---------------------------------------------------------------------------
# Tasks
# ---------------------------------------------------------------------------


def dump_variable(variable: Variable) -> Dict[str, Any]:
    return {"name": variable.name, "type": dump_type(variable.type)}


def load_variable(data: Mapping[str, Any]) -> Variable:
    return Variable(
        _require(data, "name", "variable"), load_type(data.get("type", "value"))
    )


def dump_task(task: TaskSchema) -> Dict[str, Any]:
    return {
        "name": task.name,
        "variables": [dump_variable(v) for v in task.variables],
        "artifact_relations": [
            {"name": rel.name, "attributes": [dump_variable(a) for a in rel.attributes]}
            for rel in task.artifact_relations
        ],
        "input_variables": list(task.input_variables),
        "output_variables": list(task.output_variables),
    }


def load_task(data: Mapping[str, Any]) -> TaskSchema:
    relations = [
        ArtifactRelation(
            _require(rel, "name", "artifact relation"),
            [load_variable(a) for a in _require(rel, "attributes", "artifact relation")],
        )
        for rel in data.get("artifact_relations", ())
    ]
    return TaskSchema(
        _require(data, "name", "task"),
        [load_variable(v) for v in data.get("variables", ())],
        relations,
        input_variables=data.get("input_variables", ()),
        output_variables=data.get("output_variables", ()),
    )


# ---------------------------------------------------------------------------
# Services
# ---------------------------------------------------------------------------


def dump_internal_service(service: InternalService) -> Dict[str, Any]:
    update: Optional[Dict[str, Any]] = None
    if service.update is not None:
        update = {
            "kind": "insert" if isinstance(service.update, Insert) else "retrieve",
            "relation": service.update.relation,
            "variables": list(service.update.variables),
        }
    return {
        "name": service.name,
        "task": service.task,
        "pre": dump_condition(service.pre),
        "post": dump_condition(service.post),
        "propagated": sorted(service.propagated),
        "update": update,
    }


def load_internal_service(data: Mapping[str, Any]) -> InternalService:
    update: Optional[Update] = None
    update_data = data.get("update")
    if update_data is not None:
        kind = _require(update_data, "kind", "service update")
        relation = _require(update_data, "relation", "service update")
        variables = _require(update_data, "variables", "service update")
        if kind == "insert":
            update = Insert(relation, variables)
        elif kind == "retrieve":
            update = Retrieve(relation, variables)
        else:
            raise SpecError(f"unknown update kind {kind!r}")
    return InternalService(
        _require(data, "name", "internal service"),
        _require(data, "task", "internal service"),
        pre=load_condition(data.get("pre", {"op": "true"})),
        post=load_condition(data.get("post", {"op": "true"})),
        propagated=data.get("propagated", ()),
        update=update,
    )


def dump_opening_service(service: OpeningService) -> Dict[str, Any]:
    return {
        "task": service.task,
        "pre": dump_condition(service.pre),
        "input_map": [list(pair) for pair in service.input_map],
    }


def load_opening_service(data: Mapping[str, Any]) -> OpeningService:
    return OpeningService(
        _require(data, "task", "opening service"),
        pre=load_condition(data.get("pre", {"op": "true"})),
        input_map=[tuple(pair) for pair in data.get("input_map", ())],
    )


def dump_closing_service(service: ClosingService) -> Dict[str, Any]:
    return {
        "task": service.task,
        "pre": dump_condition(service.pre),
        "output_map": [list(pair) for pair in service.output_map],
    }


def load_closing_service(data: Mapping[str, Any]) -> ClosingService:
    return ClosingService(
        _require(data, "task", "closing service"),
        pre=load_condition(data.get("pre", {"op": "true"})),
        output_map=[tuple(pair) for pair in data.get("output_map", ())],
    )


# ---------------------------------------------------------------------------
# Artifact systems
# ---------------------------------------------------------------------------


def dump_system(system: ArtifactSystem) -> Dict[str, Any]:
    """The canonical dict form of a full HAS* specification."""
    return {
        "name": system.name,
        "schema": dump_schema(system.schema),
        "tasks": [dump_task(task) for task in system.tasks],
        "hierarchy": {name: system.parent_of(name) for name in system.task_names},
        "internal_services": [
            dump_internal_service(s) for s in system.all_internal_services()
        ],
        "opening_services": [
            dump_opening_service(system.opening_service(name)) for name in system.task_names
        ],
        "closing_services": [
            dump_closing_service(system.closing_service(name)) for name in system.task_names
        ],
        "global_precondition": dump_condition(system.global_precondition),
    }


def load_system(data: Mapping[str, Any]) -> ArtifactSystem:
    """Rebuild an :class:`ArtifactSystem` from its canonical dict form.

    Re-runs full HAS* validation, so a hand-edited spec file that violates the
    model's restrictions fails with the same
    :class:`~repro.has.artifact_system.SpecificationError` a programmatic
    construction would raise.
    """
    return ArtifactSystem(
        schema=load_schema(_require(data, "schema", "artifact system")),
        tasks=[load_task(t) for t in _require(data, "tasks", "artifact system")],
        hierarchy=_require(data, "hierarchy", "artifact system"),
        internal_services=[
            load_internal_service(s) for s in data.get("internal_services", ())
        ],
        opening_services=[
            load_opening_service(s) for s in data.get("opening_services", ())
        ],
        closing_services=[
            load_closing_service(s) for s in data.get("closing_services", ())
        ],
        global_precondition=load_condition(
            data.get("global_precondition", {"op": "true"})
        ),
        name=data.get("name", "artifact-system"),
    )


# ---------------------------------------------------------------------------
# LTL-FO properties
# ---------------------------------------------------------------------------


def dump_property(ltl_property: LTLFOProperty) -> Dict[str, Any]:
    """Canonical dict form of an LTL-FO property.

    The LTL skeleton is stored as text: ``str(formula)`` is fully
    parenthesized and parses back to a structurally identical formula.
    """
    return {
        "name": ltl_property.name,
        "task": ltl_property.task,
        "formula": str(ltl_property.formula),
        "conditions": {
            proposition: dump_condition(condition)
            for proposition, condition in sorted(ltl_property.conditions.items())
        },
        "global_variables": [
            {"name": v.name, "type": dump_type(v.type)}
            for v in ltl_property.global_variables
        ],
    }


def load_property(data: Mapping[str, Any]) -> LTLFOProperty:
    formula_text = _require(data, "formula", "LTL-FO property")
    try:
        formula = parse_ltl(formula_text)
    except ValueError as error:
        raise SpecError(f"cannot parse LTL formula {formula_text!r}: {error}") from None
    return LTLFOProperty(
        _require(data, "task", "LTL-FO property"),
        formula,
        conditions={
            proposition: load_condition(condition)
            for proposition, condition in data.get("conditions", {}).items()
        },
        global_variables=[
            GlobalVariable(
                _require(v, "name", "global variable"),
                load_type(v.get("type", "value")),
            )
            for v in data.get("global_variables", ())
        ],
        name=data.get("name"),
    )
