"""Versioned serialization of HAS* specifications and LTL-FO properties.

This subpackage is deliberately lightweight and dependency-free (PyYAML is
used only when present, for ``.yaml`` files): it defines canonical dict forms
for every model object, a versioned on-disk bundle format, and content
fingerprints used by the :mod:`repro.service` result cache.

Typical usage::

    from repro.spec import SpecBundle, save_spec, load_spec

    save_spec(system, "workflow.spec.json", properties=[prop1, prop2])
    bundle = load_spec("workflow.spec.json")
    assert bundle.system == system
"""

from repro.spec.codec import (
    SCHEMA_VERSION,
    dump_condition,
    dump_property,
    dump_schema,
    dump_system,
    dump_task,
    load_condition,
    load_property,
    load_schema,
    load_system,
    load_task,
)
from repro.spec.bundle import SpecBundle, load_spec, save_spec
from repro.spec.errors import SpecError, SpecVersionError
from repro.spec.fingerprint import canonical_json, fingerprint, job_fingerprint

__all__ = [
    "SCHEMA_VERSION",
    "SpecBundle",
    "SpecError",
    "SpecVersionError",
    "save_spec",
    "load_spec",
    "dump_system",
    "load_system",
    "dump_task",
    "load_task",
    "dump_schema",
    "load_schema",
    "dump_condition",
    "load_condition",
    "dump_property",
    "load_property",
    "canonical_json",
    "fingerprint",
    "job_fingerprint",
]
