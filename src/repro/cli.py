"""The ``python -m repro`` command line: verify, batch, export-spec.

Examples::

    # Export a built-in real-world workflow as a spec file (with 6 generated
    # LTL-FO properties attached):
    python -m repro export-spec order-fulfillment -o order.spec.json --with-properties 6

    # Statically analyse a spec without verifying it (exit 1 on errors --
    # the same specs the server rejects at submit time with HTTP 422):
    python -m repro lint order.spec.json --json

    # Verify one property (or all properties) of a spec file:
    python -m repro verify order.spec.json --property always
    python -m repro verify order.spec.json --workers 4

    # Batch-verify several spec files across a worker pool:
    python -m repro batch specs/*.spec.json --workers 4 --json

    # Same, but on a remote verification server (the /v1 API):
    python -m repro batch specs/*.spec.json --remote http://127.0.0.1:8080

    # Run the verification server (HTTP JSON API over a persistent store,
    # multi-process workers by default; --worker-model thread to opt out):
    python -m repro serve --port 8080 --workers 4 --store jobs.db

    # Scale out: several servers share one store (WAL) -- one queue, shared
    # results, cross-server cancellation -- each with a unique --server-id:
    python -m repro serve --port 8080 --store shared.db --server-id a
    python -m repro serve --port 8081 --store shared.db --server-id b

    # Trace a job end to end (submit with tracing on, then render the span
    # waterfall: client submit -> HTTP handler -> queue wait -> worker ->
    # search phases with per-phase timing):
    python -m repro serve --trace --store jobs.db
    python -m repro trace 7f3a... --url http://127.0.0.1:8080
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional, Sequence

from repro.core.options import VerifierOptions
from repro.service import BatchReport, VerificationService, jobs_from_bundle
from repro.spec import SpecBundle, SpecError, load_spec, save_spec


def _add_option_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help="per-property wall-clock timeout (default: none)",
    )
    parser.add_argument(
        "--max-states", type=int, default=None, metavar="N",
        help="per-property state budget (default: %s)" % VerifierOptions().max_states,
    )
    parser.add_argument(
        "--no-repeated-reachability", action="store_true",
        help="reachability-only mode (skip the repeated-reachability phase)",
    )
    parser.add_argument(
        "--no-static-pruning", action="store_true", dest="no_static_pruning",
        help="disable the repro.analysis pre-search pruning pass (kill switch;"
             " equivalent to REPRO_STATIC_PRUNING=0 on the server)",
    )
    parser.add_argument(
        "--no-dataflow-pruning", action="store_true", dest="no_dataflow_pruning",
        help="disable the in-search dataflow pruning pass (kill switch;"
             " equivalent to REPRO_DATAFLOW_PRUNING=0 on the server)",
    )


def _options_from(args: argparse.Namespace) -> VerifierOptions:
    options = VerifierOptions()
    if args.timeout is not None:
        options = options.with_(timeout_seconds=args.timeout)
    if args.max_states is not None:
        options = options.with_(max_states=args.max_states)
    if args.no_repeated_reachability:
        options = options.with_(check_repeated_reachability=False)
    if args.no_static_pruning:
        options = options.with_(static_pruning=False)
    if args.no_dataflow_pruning:
        options = options.with_(dataflow_pruning=False)
    return options


def _exit_code_for(report: BatchReport) -> int:
    """1 if anything is violated, 2 if anything is unknown, else 0.

    An UNKNOWN outcome (timeout / state-budget hit) must not exit 0: scripts
    would read a never-completed verification as proof the properties hold.
    """
    if any(r.result.violated for r in report.job_results):
        return 1
    if any(r.result.unknown for r in report.job_results):
        return 2
    return 0


def _print_report(report: BatchReport, as_json: bool) -> None:
    if as_json:
        json.dump(report.as_dict(), sys.stdout, indent=2)
        sys.stdout.write("\n")
        return
    for job_result in report.job_results:
        result = job_result.result
        source = "cache" if job_result.cache_hit else f"{result.stats.total_seconds:.3f}s"
        print(
            f"  {job_result.job.system_name:24s} {job_result.job.property_name:40.40s} "
            f"{result.outcome.value:10s} [{source}]"
        )
        if result.violated and result.counterexample:
            services = " -> ".join(result.counterexample.services()[:8])
            print(f"      counterexample: {services}")
    hits = report.cache_hits
    outcome_text = ", ".join(f"{k}: {v}" for k, v in sorted(report.outcomes.items()))
    print(f"  {report.total} job(s), {hits} cache hit(s) -- {outcome_text}")


def _cmd_verify(args: argparse.Namespace) -> int:
    bundle = load_spec(args.spec)
    if not bundle.properties:
        print(f"error: {args.spec} contains no properties to verify", file=sys.stderr)
        return 2
    names: Optional[List[str]] = args.property or None
    try:
        jobs = jobs_from_bundle(bundle, options=_options_from(args), property_names=names)
    except KeyError as error:
        print(f"error: {error.args[0]}", file=sys.stderr)
        return 2
    service = VerificationService()
    report = BatchReport(service.run_batch(jobs, workers=args.workers))
    _print_report(report, args.json)
    return _exit_code_for(report)


def _cmd_batch(args: argparse.Namespace) -> int:
    options = _options_from(args)
    jobs = []
    for path in args.specs:
        bundle = load_spec(path)
        if not bundle.properties:
            print(f"warning: {path} contains no properties, skipping", file=sys.stderr)
            continue
        jobs.extend(jobs_from_bundle(bundle, options=options))
    if not jobs:
        print("error: no verification jobs found in the given spec files", file=sys.stderr)
        return 2
    if args.remote:
        return _run_remote_batch(args, jobs)
    service = VerificationService()
    report = BatchReport(service.run_batch(jobs, workers=args.workers))
    _print_report(report, args.json)
    return _exit_code_for(report)


def _run_remote_batch(args: argparse.Namespace, jobs) -> int:
    """Run a batch on a remote ``/v1`` server via :mod:`repro.client`."""
    from repro.client import ClientError, VerifasClient
    from repro.core.stats import SearchStatistics
    from repro.core.verifier import VerificationOutcome, VerificationResult
    from repro.service import JobResult

    client = VerifasClient(args.remote)
    try:
        handles = [
            client.submit(
                job.system_dict,
                [job.property_dict],
                options=job.options_dict,
                label=job.label,
                ttl_seconds=args.ttl,
                deadline_ms=args.deadline_ms,
            )[0]
            for job in jobs
        ]
        views = client.wait_all([h.id for h in handles], deadline_seconds=args.wait)
    except (ClientError, TimeoutError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    job_results = []
    for job, handle in zip(jobs, handles):
        view = views[handle.id]
        if view.get("status") == "error":
            print(
                f"error: remote job {handle.id} ({job.describe()}) failed: "
                f"{view.get('error', 'unknown error')}",
                file=sys.stderr,
            )
            return 2
        data = view.get("result")
        if data is not None:
            result = VerificationResult.from_dict(data)
        else:
            # Cancelled before any work landed: no partial result to show.
            result = VerificationResult(
                outcome=VerificationOutcome.UNKNOWN,
                property_name=job.property_name,
                task=job.property_dict.get("task", ""),
                stats=SearchStatistics(cancelled=True),
            )
        job_results.append(JobResult(job, result, cache_hit=bool(view.get("cache_hit"))))
    report = BatchReport(job_results)
    _print_report(report, args.json)
    return _exit_code_for(report)


def _cmd_lint(args: argparse.Namespace) -> int:
    """Static analysis without verification.

    Exit codes mirror the verify contract: 0 when the spec is clean or has
    warnings only, 1 when any error-severity diagnostic fires (such a spec is
    rejected at submit time with HTTP 422), 2 when the spec cannot be loaded
    at all.
    """
    from repro.analysis import analyze

    # validate=False: a property referencing an unknown task/relation must
    # surface as VA-coded diagnostics here, not as the load-time SpecError
    # that protects every other entry point.
    bundle = load_spec(args.spec, validate=False)
    report = analyze(bundle.system, bundle.properties)
    if args.json:
        json.dump(report.as_dict(), sys.stdout, indent=2)
        sys.stdout.write("\n")
        return 1 if report.has_errors else 0
    for diagnostic in report.diagnostics:
        print(diagnostic.render())
    errors, warnings = len(report.errors), len(report.warnings)
    print(
        f"{args.spec}: {errors} error(s), {warnings} warning(s) -- "
        f"{len(bundle.system.task_names)} task(s), {len(bundle.properties)} propert(ies)"
    )
    return 1 if report.has_errors else 0


def _cmd_export_spec(args: argparse.Namespace) -> int:
    from repro.benchmark.properties import LTL_TEMPLATES, generate_properties
    from repro.benchmark.realworld import REAL_WORKFLOW_FACTORIES

    factory = REAL_WORKFLOW_FACTORIES.get(args.workflow)
    if factory is None:
        print(
            f"error: unknown workflow {args.workflow!r}; available: "
            f"{', '.join(sorted(REAL_WORKFLOW_FACTORIES))}",
            file=sys.stderr,
        )
        return 2
    system = factory()
    properties = []
    if args.with_properties:
        count = max(1, min(args.with_properties, len(LTL_TEMPLATES)))
        properties = generate_properties(system, templates=LTL_TEMPLATES[:count])
    save_spec(system, args.output, properties=properties)
    print(
        f"wrote {args.output}: system {system.name!r} "
        f"({len(system.task_names)} tasks, {len(properties)} properties)"
    )
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import sqlite3

    from repro.server import VerificationServer

    try:
        server = VerificationServer(
            store_path=args.store,
            host=args.host,
            port=args.port,
            workers=args.workers,
            default_options=_options_from(args),
            quiet=args.quiet,
            worker_model=args.worker_model,
            max_jobs_per_worker=args.max_jobs_per_worker,
            server_id=args.server_id,
            sweep_interval=args.sweep_interval,
            heartbeat_interval=args.heartbeat_interval,
            stale_heartbeat_seconds=args.stale_after,
            event_log_stream=sys.stderr if args.log_events else None,
            trace_enabled=True if args.trace else None,
            auth_enabled=True if args.auth else None,
        )
    except sqlite3.Error as error:
        print(f"error: cannot open job store {args.store!r}: {error}", file=sys.stderr)
        return 2
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    identity = f" as {args.server_id!r}" if args.server_id else ""
    print(
        f"verification server{identity}: store {args.store!r},"
        f" {args.workers} worker(s)",
        flush=True,
    )
    print(f"  {server.recovery.summary()}", flush=True)
    try:
        server.start()
    except OSError as error:
        print(f"error: cannot listen on {args.host}:{args.port}: {error}", file=sys.stderr)
        server.stop()
        return 2
    if server.worker_fallback_error is not None:
        print(
            f"  warning: process workers unavailable ({server.worker_fallback_error}); "
            "running thread workers instead",
            flush=True,
        )
    print(f"  {server.worker_model} worker model", flush=True)
    print(f"  listening on {server.url} (Ctrl-C to stop)", flush=True)
    server.serve_forever()  # blocks; Ctrl-C stops gracefully
    print("shut down (queued jobs stay persisted)")
    return 0


def _cmd_tenant(args: argparse.Namespace) -> int:
    """Tenant lifecycle against the store file (no running server needed:
    servers sharing the store observe changes within their cache TTL)."""
    import sqlite3

    from repro.server import JobStore
    from repro.tenancy import TenantRegistry

    try:
        store = JobStore(args.store)
    except sqlite3.Error as error:
        print(f"error: cannot open job store {args.store!r}: {error}", file=sys.stderr)
        return 2
    try:
        registry = TenantRegistry(store)
        if args.tenant_command == "create":
            try:
                tenant, api_key = registry.create(
                    args.name,
                    weight=args.weight,
                    rate_limit=args.rate_limit,
                    burst=args.burst,
                    max_pending=args.max_pending,
                )
            except ValueError as error:
                print(f"error: {error}", file=sys.stderr)
                return 2
            if args.json:
                print(json.dumps({**tenant.as_dict(), "api_key": api_key}, indent=2))
            else:
                print(f"tenant {tenant.name!r} created (id {tenant.id})")
                print(f"  api key: {api_key}")
                print("  (shown once -- only a salted hash is stored)")
            return 0
        if args.tenant_command == "list":
            tenants = registry.list()
            if args.json:
                print(json.dumps([t.as_dict() for t in tenants], indent=2))
                return 0
            if not tenants:
                print("no tenants")
                return 0
            for tenant in tenants:
                limits = []
                if tenant.rate_limit is not None:
                    limits.append(f"rate {tenant.rate_limit}/s")
                if tenant.max_pending is not None:
                    limits.append(f"max-pending {tenant.max_pending}")
                state = " REVOKED" if tenant.revoked else ""
                print(
                    f"  {tenant.name:24s} id {tenant.id}  key vk_{tenant.key_id}.***"
                    f"  weight {tenant.weight:g}"
                    + (f"  ({', '.join(limits)})" if limits else "")
                    + state
                )
            return 0
        if args.tenant_command == "revoke":
            if registry.revoke(args.name):
                print(f"tenant {args.name!r} revoked (existing jobs keep running)")
                return 0
            print(f"error: no tenant named {args.name!r}", file=sys.stderr)
            return 2
        raise AssertionError("unreachable")  # pragma: no cover
    finally:
        store.close()


def _cmd_trace(args: argparse.Namespace) -> int:
    import json as _json

    from repro.client import ClientError, VerifasClient
    from repro.obs import render_trace

    client = VerifasClient(args.url)
    try:
        view = client.trace(args.job_id)
    except ClientError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    if args.json:
        print(_json.dumps(view, indent=2))
        return 0
    print(render_trace(view, width=args.width))
    if not view.get("spans"):
        print(
            "hint: the server records spans only when started with tracing on"
            " (repro serve --trace, or REPRO_TRACE=1)",
            file=sys.stderr,
        )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="VERIFAS reproduction: verify LTL-FO properties of artifact systems.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    verify = subparsers.add_parser(
        "verify", help="verify properties of one spec file"
    )
    verify.add_argument("spec", help="path to a spec file (.json / .yaml)")
    verify.add_argument(
        "--property", action="append", metavar="NAME",
        help="verify only this property (repeatable; default: all)",
    )
    verify.add_argument("--workers", type=int, default=1, metavar="N")
    verify.add_argument("--json", action="store_true", help="machine-readable output")
    _add_option_flags(verify)
    verify.set_defaults(handler=_cmd_verify)

    batch = subparsers.add_parser(
        "batch", help="verify all properties of several spec files on a worker pool"
    )
    batch.add_argument("specs", nargs="+", help="spec files (.json / .yaml)")
    batch.add_argument("--workers", type=int, default=4, metavar="N")
    batch.add_argument("--json", action="store_true", help="machine-readable output")
    batch.add_argument(
        "--remote", metavar="URL", default=None,
        help="submit to a verification server's /v1 API instead of running locally",
    )
    batch.add_argument(
        "--ttl", type=float, default=None, metavar="SECONDS", dest="ttl",
        help="with --remote: expire the remote job records this long after they finish",
    )
    batch.add_argument(
        "--deadline-ms", type=int, default=None, metavar="MS", dest="deadline_ms",
        help="with --remote: per-job wall-clock deadline enforced by the server",
    )
    batch.add_argument(
        "--wait", type=float, default=600.0, metavar="SECONDS",
        help="with --remote: how long to wait for remote jobs (default: 600)",
    )
    _add_option_flags(batch)
    batch.set_defaults(handler=_cmd_batch)

    lint = subparsers.add_parser(
        "lint", help="statically analyse a spec file without verifying it"
    )
    lint.add_argument("spec", help="path to a spec file (.json / .yaml)")
    lint.add_argument("--json", action="store_true",
                      help="machine-readable output (diagnostics + static facts)")
    lint.set_defaults(handler=_cmd_lint)

    export = subparsers.add_parser(
        "export-spec", help="export a built-in real-world workflow as a spec file"
    )
    export.add_argument("workflow", help="workflow name, e.g. order-fulfillment")
    export.add_argument("-o", "--output", required=True, help="output path (.json / .yaml)")
    export.add_argument(
        "--with-properties", type=int, default=0, metavar="N",
        help="attach N generated LTL-FO template properties (default: 0)",
    )
    export.set_defaults(handler=_cmd_export_spec)

    serve = subparsers.add_parser(
        "serve", help="run the verification server (HTTP JSON API, persistent store)"
    )
    serve.add_argument("--host", default="127.0.0.1", metavar="ADDR")
    serve.add_argument("--port", type=int, default=8080, metavar="PORT",
                       help="listen port (0 picks a free port; default: 8080)")
    serve.add_argument("--workers", type=int, default=2, metavar="N",
                       help="verification workers (default: 2)")
    serve.add_argument(
        "--worker-model", choices=("thread", "process"), default="process",
        help="process: one OS process per worker -- CPU-bound searches run truly in"
             " parallel, with cross-process cancellation, crash requeue and recycling;"
             " thread: in-process workers sharing the GIL.  process degrades to"
             " thread automatically in sandboxes that cannot spawn (default: process)",
    )
    serve.add_argument(
        "--max-jobs-per-worker", type=int, default=32, metavar="K",
        help="recycle a worker process after K jobs (process model; default: 32)",
    )
    serve.add_argument("--store", default="repro-jobs.db", metavar="PATH",
                       help="SQLite job/result store (default: repro-jobs.db)")
    serve.add_argument(
        "--server-id", default=None, metavar="ID", dest="server_id",
        help="unique identity of this server in a shared-store deployment: several"
             " `serve` processes may point at the same --store (it runs in WAL mode)"
             " and share one queue, provided each gets a DISTINCT id.  Worker claims"
             " are attributed to the id, startup recovery requeues only this server's"
             " own previous claims, and cancellations propagate between servers"
             " (default: none -- single-server mode)",
    )
    serve.add_argument(
        "--sweep-interval", type=float, default=2.0, metavar="SECONDS",
        help="how often the sweeper expires TTL'd jobs and rescues stale claims"
             " (default: 2.0)",
    )
    serve.add_argument(
        "--heartbeat-interval", type=float, default=1.0, metavar="SECONDS",
        help="how often workers refresh their claims' liveness stamps (default: 1.0)",
    )
    serve.add_argument(
        "--stale-after", type=float, default=15.0, metavar="SECONDS", dest="stale_after",
        help="heartbeat age past which a running job's owner is presumed dead and the"
             " job is requeued -- must comfortably exceed --heartbeat-interval and"
             " --sweep-interval (default: 15.0)",
    )
    serve.add_argument(
        "--log-events", action="store_true", dest="log_events",
        help="write one line per server event (job lifecycle, worker crashes,"
             " sweeps) to stderr via the event bus's log sink",
    )
    serve.add_argument(
        "--auth", action="store_true", dest="auth",
        help="require tenant API keys (Authorization: Bearer vk_...) on every"
             " job route; create keys with `repro tenant create --store ...`."
             "  Off by default: the zero-config anonymous API stays as is",
    )
    serve.add_argument(
        "--trace", action="store_true", dest="trace",
        help="record distributed-trace spans for every job (client submit, HTTP"
             " handler, queue wait, worker execution, search phases); view them"
             " with `repro trace <job-id>`.  Equivalent to REPRO_TRACE=1",
    )
    serve.add_argument("--quiet", action="store_true",
                       help="suppress per-request access logging")
    _add_option_flags(serve)
    serve.set_defaults(handler=_cmd_serve)

    tenant = subparsers.add_parser(
        "tenant",
        help="manage tenants of an auth-enabled server (keys, quotas, weights)",
    )
    tenant_sub = tenant.add_subparsers(dest="tenant_command", required=True)
    tenant_create = tenant_sub.add_parser(
        "create", help="create a tenant; prints its API key ONCE"
    )
    tenant_create.add_argument("name", help="unique tenant name")
    tenant_create.add_argument("--store", default="repro-jobs.db", metavar="PATH",
                               help="the server's job store (default: repro-jobs.db)")
    tenant_create.add_argument(
        "--weight", type=float, default=1.0, metavar="W",
        help="fair-share weight: a weight-4 tenant's queued jobs are claimed"
             " twice as often as a weight-2 one's under contention (default: 1.0)",
    )
    tenant_create.add_argument(
        "--rate-limit", type=float, default=None, metavar="PER_SEC", dest="rate_limit",
        help="max sustained job submissions per second (default: unlimited)",
    )
    tenant_create.add_argument(
        "--burst", type=float, default=None, metavar="N",
        help="token-bucket burst size (default: the --rate-limit value)",
    )
    tenant_create.add_argument(
        "--max-pending", type=int, default=None, metavar="N", dest="max_pending",
        help="max queued+running jobs at once, across all servers on the store"
             " (default: unlimited)",
    )
    tenant_create.add_argument("--json", action="store_true",
                               help="machine-readable output (includes the api key)")
    tenant_list = tenant_sub.add_parser("list", help="list tenants (keys redacted)")
    tenant_list.add_argument("--store", default="repro-jobs.db", metavar="PATH")
    tenant_list.add_argument("--json", action="store_true")
    tenant_revoke = tenant_sub.add_parser(
        "revoke", help="revoke a tenant's API key (requests answer 403)"
    )
    tenant_revoke.add_argument("name", metavar="NAME_OR_ID")
    tenant_revoke.add_argument("--store", default="repro-jobs.db", metavar="PATH")
    tenant.set_defaults(handler=_cmd_tenant)

    trace = subparsers.add_parser(
        "trace",
        help="render the span waterfall of a job run on a --trace server",
    )
    trace.add_argument("job_id", metavar="JOB-ID")
    trace.add_argument("--url", default="http://127.0.0.1:8080", metavar="URL",
                       help="server base URL (default: http://127.0.0.1:8080)")
    trace.add_argument("--json", action="store_true",
                       help="print the raw trace view as JSON instead of the waterfall")
    trace.add_argument("--width", type=int, default=100, metavar="COLS",
                       help="waterfall width in columns (default: 100)")
    trace.set_defaults(handler=_cmd_trace)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    from repro.has.artifact_system import SpecificationError

    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except FileNotFoundError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except (SpecError, SpecificationError) as error:
        # SpecificationError: a spec file that parses but describes an
        # invalid HAS* system (load_system re-runs full model validation).
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
