"""ASCII waterfall rendering for span trees (``python -m repro trace``).

Pure functions over the ``GET /v1/jobs/<id>/trace`` payload so the renderer
is unit-testable without a server.  The waterfall shows each span as a bar
positioned and scaled against the whole trace, indented by tree depth;
spans carrying a ``phases`` attribute (the hot-loop aggregates from
``SearchStatistics.phase_seconds``) get a per-phase breakdown underneath.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

__all__ = ["build_tree", "render_trace"]

_REMOTE_NAME = "client (remote)"


def build_tree(spans: List[Dict[str, Any]]) -> List[Dict[str, Any]]:
    """Arrange flat span dicts into a forest of ``{"span", "children"}`` nodes.

    Spans whose ``parent_id`` is not in the set (e.g. the client's own span,
    never reported to the server) are grouped under a synthesised remote
    placeholder so the tree still shows where the trace began.
    """
    by_id: Dict[str, Dict[str, Any]] = {}
    nodes: List[Dict[str, Any]] = []
    for span in spans:
        node = {"span": span, "children": []}
        nodes.append(node)
        span_id = span.get("span_id")
        if span_id:
            by_id[span_id] = node

    roots: List[Dict[str, Any]] = []
    virtual: Dict[str, Dict[str, Any]] = {}
    for node in nodes:
        parent_id = node["span"].get("parent_id")
        if parent_id and parent_id in by_id:
            by_id[parent_id]["children"].append(node)
        elif parent_id:
            placeholder = virtual.get(parent_id)
            if placeholder is None:
                placeholder = {
                    "span": {
                        "span_id": parent_id,
                        "parent_id": None,
                        "name": _REMOTE_NAME,
                        "start_time": node["span"].get("start_time", 0.0),
                        "duration": 0.0,
                        "status": "ok",
                        "attrs": {"remote": True},
                    },
                    "children": [],
                }
                virtual[parent_id] = placeholder
                roots.append(placeholder)
            placeholder["children"].append(node)
        else:
            roots.append(node)

    def _sort(forest: List[Dict[str, Any]]) -> None:
        forest.sort(key=lambda n: (n["span"].get("start_time", 0.0)))
        for entry in forest:
            _sort(entry["children"])
            if entry["span"].get("name") == _REMOTE_NAME:
                # Stretch the placeholder over its children for the bar.
                starts = [c["span"].get("start_time", 0.0) for c in entry["children"]]
                ends = [
                    c["span"].get("start_time", 0.0) + (c["span"].get("duration") or 0.0)
                    for c in entry["children"]
                ]
                if starts:
                    entry["span"]["start_time"] = min(starts)
                    entry["span"]["duration"] = max(ends) - min(starts)

    _sort(roots)
    return roots


def _fmt_seconds(seconds: float) -> str:
    if seconds < 0.001:
        return f"{seconds * 1e6:.0f}µs"
    if seconds < 1.0:
        return f"{seconds * 1e3:.1f}ms"
    return f"{seconds:.2f}s"


def _bar(start: float, duration: float, t0: float, extent: float, width: int) -> str:
    if extent <= 0.0:
        return "▐" + "█" * 1 + "▌"
    left = int(round((start - t0) / extent * width))
    length = max(1, int(round(duration / extent * width)))
    left = min(left, width - 1)
    length = min(length, width - left)
    return " " * left + "█" * length


def render_trace(view: Dict[str, Any], width: int = 100) -> str:
    """Render the trace view as an indented ASCII waterfall."""
    spans = view.get("spans") or []
    header = (
        f"trace {view.get('trace_id') or '<none>'}"
        f"  job {view.get('id') or '?'}"
        f"  status={view.get('status') or '?'}"
        f"  spans={len(spans)}"
    )
    if not spans:
        return header + "\n  (no spans recorded -- was the server started with tracing on?)"

    roots = build_tree(spans)
    t0 = min(s.get("start_time", 0.0) for s in spans)
    t1 = max(s.get("start_time", 0.0) + (s.get("duration") or 0.0) for s in spans)
    extent = t1 - t0

    label_rows: List[tuple] = []

    def _walk(node: Dict[str, Any], depth: int) -> None:
        span = node["span"]
        marker = " !" if span.get("status") != "ok" else ""
        label = "  " * depth + span.get("name", "?") + marker
        label_rows.append((label, span, depth))
        for child in node["children"]:
            _walk(child, depth + 1)

    for root in roots:
        _walk(root, 0)

    label_width = max(len(label) for label, _, _ in label_rows)
    bar_width = max(20, width - label_width - 14)

    lines = [header, ""]
    for label, span, depth in label_rows:
        duration = span.get("duration") or 0.0
        bar = _bar(span.get("start_time", 0.0), duration, t0, extent, bar_width)
        dur_text = "" if span.get("attrs", {}).get("remote") else _fmt_seconds(duration)
        lines.append(f"{label:<{label_width}}  {bar:<{bar_width}}  {dur_text}")
        reason = _failure_note(span)
        if reason:
            lines.append("  " * depth + f"  ↳ {reason}")
        phases = span.get("attrs", {}).get("phases")
        if isinstance(phases, dict) and phases:
            lines.extend(_phase_lines(phases, depth + 1, label_width, duration))
    return "\n".join(lines)


def _failure_note(span: Dict[str, Any]) -> Optional[str]:
    if span.get("status") == "ok":
        return None
    attrs = span.get("attrs", {})
    detail = attrs.get("reason") or attrs.get("error") or span.get("status")
    return f"status={span.get('status')}: {detail}"


def _phase_lines(
    phases: Dict[str, Any], depth: int, label_width: int, parent_duration: float
) -> List[str]:
    """Flamegraph-style cumulative breakdown of hot-loop phase aggregates."""
    lines: List[str] = []
    total = parent_duration or sum(
        entry.get("seconds", 0.0) for entry in phases.values() if isinstance(entry, dict)
    )
    for name in sorted(
        phases, key=lambda n: -(phases[n].get("seconds", 0.0) if isinstance(phases[n], dict) else 0.0)
    ):
        entry = phases[name]
        if not isinstance(entry, dict):
            continue
        seconds = entry.get("seconds", 0.0)
        count = entry.get("count", 0)
        share = (seconds / total * 100.0) if total > 0 else 0.0
        ticks = max(1, int(round(share / 5.0))) if seconds > 0 else 0
        label = "  " * depth + f"· {name}"
        lines.append(
            f"{label:<{label_width}}  {'▒' * ticks:<20}  "
            f"{_fmt_seconds(seconds)} ({share:.0f}%, {count}×)"
        )
    return lines
