"""Stdlib-only tracing primitives: spans, a process-wide tracer, W3C context.

The observability layer is deliberately dependency-free and decoupled from
the rest of the stack: a :class:`Span` is plain data, a :class:`Tracer`
hands finished spans to an *exporter* callable, and context propagates as a
W3C ``traceparent`` header (``00-<trace_id>-<span_id>-<flags>``).  The
server wires the exporter to its event bus (see
:class:`repro.events.TraceSink`); worker children wire it to the parent
pipe; tests wire it to a list.

Durations are measured on ``time.monotonic()`` so wall-clock steps cannot
produce negative spans; ``start_time`` is a wall-clock epoch stamp used
only for display and cross-process ordering.

When tracing is disabled the tracer returns a single shared no-op span, so
instrumented code pays one attribute check and no allocation per span --
the guarantee `benchmarks/bench_trace.py` pins.
"""

from __future__ import annotations

import re
import threading
import time
import uuid
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional

__all__ = [
    "Span",
    "TraceContext",
    "TraceScope",
    "Tracer",
    "format_traceparent",
    "new_span_id",
    "new_trace_id",
    "parse_traceparent",
]

_TRACEPARENT_RE = re.compile(
    r"^(?P<version>[0-9a-f]{2})-(?P<trace_id>[0-9a-f]{32})"
    r"-(?P<span_id>[0-9a-f]{16})-(?P<flags>[0-9a-f]{2})$"
)


def new_trace_id() -> str:
    """A fresh 32-hex-digit trace id."""
    return uuid.uuid4().hex


def new_span_id() -> str:
    """A fresh 16-hex-digit span id."""
    return uuid.uuid4().hex[:16]


@dataclass(frozen=True)
class TraceContext:
    """The propagated part of a trace: which trace, and the current parent."""

    trace_id: str
    span_id: str

    def traceparent(self) -> str:
        return format_traceparent(self.trace_id, self.span_id)


def format_traceparent(trace_id: str, span_id: str) -> str:
    """Render a W3C ``traceparent`` header value (always sampled)."""
    return f"00-{trace_id}-{span_id}-01"


def parse_traceparent(header: Optional[str]) -> Optional[TraceContext]:
    """Parse a ``traceparent`` header; ``None`` for missing or malformed.

    Malformed input must never raise: an unparseable header simply starts a
    new root trace at the receiver (the W3C-recommended behaviour).
    """
    if not header:
        return None
    match = _TRACEPARENT_RE.match(header.strip().lower())
    if match is None:
        return None
    trace_id = match.group("trace_id")
    span_id = match.group("span_id")
    # All-zero ids are explicitly invalid per the spec.
    if set(trace_id) == {"0"} or set(span_id) == {"0"}:
        return None
    return TraceContext(trace_id=trace_id, span_id=span_id)


@dataclass
class Span:
    """One timed operation in a trace.

    ``start_time`` is a wall-clock epoch stamp; ``duration`` is measured on
    the monotonic clock between :meth:`start` and :meth:`end`, so a
    wall-clock step mid-span cannot corrupt it.  ``duration`` is ``None``
    while the span is open.
    """

    trace_id: str
    span_id: str
    name: str
    parent_id: Optional[str] = None
    job_id: Optional[str] = None
    start_time: float = 0.0
    duration: Optional[float] = None
    status: str = "ok"
    attrs: Dict[str, Any] = field(default_factory=dict)
    _t0: Optional[float] = field(default=None, repr=False, compare=False)

    def start(self) -> "Span":
        self.start_time = time.time()
        self._t0 = time.monotonic()
        return self

    def end(self) -> "Span":
        if self.duration is None:
            self.duration = (
                time.monotonic() - self._t0 if self._t0 is not None else 0.0
            )
        return self

    def set_error(self, message: str, reason: Optional[str] = None) -> None:
        self.status = "error"
        self.attrs["error"] = message
        if reason is not None:
            self.attrs["reason"] = reason

    def set_attr(self, key: str, value: Any) -> None:
        self.attrs[key] = value

    def context(self) -> TraceContext:
        return TraceContext(trace_id=self.trace_id, span_id=self.span_id)

    def traceparent(self) -> str:
        return format_traceparent(self.trace_id, self.span_id)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "job_id": self.job_id,
            "name": self.name,
            "start_time": self.start_time,
            "duration": self.duration if self.duration is not None else 0.0,
            "status": self.status,
            "attrs": dict(self.attrs),
        }


class _NoopSpan:
    """Shared do-nothing span handed out by a disabled tracer."""

    __slots__ = ()
    trace_id = ""
    span_id = ""
    parent_id = None
    name = ""
    status = "ok"
    attrs: Dict[str, Any] = {}

    def start(self) -> "_NoopSpan":
        return self

    def end(self) -> "_NoopSpan":
        return self

    def set_error(self, message: str, reason: Optional[str] = None) -> None:
        pass

    def set_attr(self, key: str, value: Any) -> None:
        pass

    def context(self) -> None:
        return None

    def __setitem__(self, key: str, value: Any) -> None:
        pass


_NOOP_SPAN = _NoopSpan()


class Tracer:
    """Process-wide span factory.

    ``exporter`` is called with each finished :class:`Span`; exceptions it
    raises are swallowed (tracing must never take the traced code down).
    A disabled tracer creates no spans and allocates nothing.
    """

    def __init__(
        self,
        enabled: bool = False,
        exporter: Optional[Callable[[Span], None]] = None,
    ) -> None:
        self.enabled = bool(enabled)
        self._exporters: List[Callable[[Span], None]] = []
        if exporter is not None:
            self._exporters.append(exporter)
        self._lock = threading.Lock()

    def add_exporter(self, exporter: Callable[[Span], None]) -> None:
        with self._lock:
            self._exporters.append(exporter)

    def start_span(
        self,
        name: str,
        parent: Optional[TraceContext] = None,
        trace_id: Optional[str] = None,
        job_id: Optional[str] = None,
        **attrs: Any,
    ) -> Any:
        """Create and start a span (or the shared no-op when disabled).

        The parent is taken from ``parent`` when given; ``trace_id`` forces
        membership in an existing trace with no recorded parent (used for
        root server spans continuing a client-initiated trace).
        """
        if not self.enabled:
            return _NOOP_SPAN
        if parent is not None:
            tid = parent.trace_id
            parent_id: Optional[str] = parent.span_id
        else:
            tid = trace_id or new_trace_id()
            parent_id = None
        span = Span(
            trace_id=tid,
            span_id=new_span_id(),
            name=name,
            parent_id=parent_id,
            job_id=job_id,
            attrs=dict(attrs),
        )
        return span.start()

    def finish(self, span: Any) -> None:
        """End *span* and hand it to the exporters (no-op spans excluded)."""
        if span is _NOOP_SPAN or not isinstance(span, Span):
            return
        span.end()
        with self._lock:
            exporters = list(self._exporters)
        for exporter in exporters:
            try:
                exporter(span)
            except Exception:  # noqa: BLE001 - tracing never propagates
                pass

    @contextmanager
    def span(
        self,
        name: str,
        parent: Optional[TraceContext] = None,
        trace_id: Optional[str] = None,
        job_id: Optional[str] = None,
        **attrs: Any,
    ) -> Iterator[Any]:
        span = self.start_span(
            name, parent=parent, trace_id=trace_id, job_id=job_id, **attrs
        )
        try:
            yield span
        except BaseException as exc:
            span.set_error(f"{type(exc).__name__}: {exc}")
            raise
        finally:
            self.finish(span)

    def record_span(
        self,
        name: str,
        trace_id: str,
        parent_id: Optional[str],
        start_time: float,
        duration: float,
        job_id: Optional[str] = None,
        status: str = "ok",
        **attrs: Any,
    ) -> None:
        """Record an already-elapsed span retroactively (e.g. queue wait)."""
        if not self.enabled:
            return
        span = Span(
            trace_id=trace_id,
            span_id=new_span_id(),
            name=name,
            parent_id=parent_id,
            job_id=job_id,
            start_time=start_time,
            duration=max(0.0, duration),
            status=status,
            attrs=dict(attrs),
        )
        self.finish(span)


class TraceScope:
    """Nested-span helper satisfying ``SearchControl``'s ``trace`` duck type.

    Maintains the current parent as spans open and close, so single-threaded
    instrumented code (one search runs on one thread) gets a correctly
    nested tree without threading context through every call.
    """

    def __init__(
        self,
        tracer: Tracer,
        parent: Optional[TraceContext] = None,
        job_id: Optional[str] = None,
    ) -> None:
        self._tracer = tracer
        self._parents: List[Optional[TraceContext]] = [parent]
        self._job_id = job_id

    @contextmanager
    def span(self, name: str, **attrs: Any) -> Iterator[Any]:
        span = self._tracer.start_span(
            name, parent=self._parents[-1], job_id=self._job_id, **attrs
        )
        context = span.context()
        self._parents.append(context if context is not None else self._parents[-1])
        try:
            yield span
        except BaseException as exc:
            span.set_error(f"{type(exc).__name__}: {exc}")
            raise
        finally:
            self._parents.pop()
            self._tracer.finish(span)
