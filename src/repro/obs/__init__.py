"""``repro.obs`` -- stdlib-only tracing and profiling.

Spans flow client → HTTP handler → store → worker → Karp-Miller search and
persist in the job store's ``spans`` table; ``python -m repro trace``
renders the resulting tree as an ASCII waterfall.  See ``trace.py`` for
the primitives and ``render.py`` for the presentation layer.
"""

from repro.obs.render import build_tree, render_trace
from repro.obs.trace import (
    Span,
    TraceContext,
    TraceScope,
    Tracer,
    format_traceparent,
    new_span_id,
    new_trace_id,
    parse_traceparent,
)

__all__ = [
    "Span",
    "TraceContext",
    "TraceScope",
    "Tracer",
    "build_tree",
    "format_traceparent",
    "new_span_id",
    "new_trace_id",
    "parse_traceparent",
    "render_trace",
]
