"""Static analysis of HAS* specifications and LTL-FO properties.

``repro.analysis`` is the cheap static front-end of the verifier (the
pre-search counterpart of the Section 3.7 constraint-graph analysis in
:mod:`repro.core.static_analysis`, which works on flattened constraints
*during* the search).  It produces

* structured, severity-ranked :class:`Diagnostic` records with stable
  ``VAxxx`` codes -- surfaced by ``python -m repro lint``, rejected at
  ``POST /v1/jobs`` submit time (HTTP 422) when error-ranked, and persisted
  on the job row when warning-ranked -- and
* a :class:`StaticFacts` summary (statically reachable tasks, constant
  bindings, trivially-decided property verdicts) that the verifier consumes
  as a pre-search pruning pass under the ``VerifierOptions.static_pruning``
  kill-switch.

Every pruning fact is *sound*: a task is only reported statically closed
when its opening guard is unsatisfiable under plain equality reasoning
(see :func:`statically_unsatisfiable`), so skipping it cannot change any
verdict -- audited by a differential test against the unpruned search.
"""

from repro.analysis.diagnostics import (
    CODE_NAMES,
    ERROR,
    INFO,
    WARNING,
    Diagnostic,
    SpecRejectedError,
    sort_diagnostics,
)
from repro.analysis.analyzer import (
    AnalysisReport,
    StaticFacts,
    analyze,
    analyze_property,
    analyze_system,
    compute_static_facts,
)
from repro.analysis.dataflow import (
    DataflowFacts,
    ServiceFootprint,
    TaskDataflow,
    compute_dataflow_facts,
)
from repro.analysis.satisfiability import (
    statically_unsatisfiable,
    statically_unsatisfiable_under,
)

__all__ = [
    "AnalysisReport",
    "CODE_NAMES",
    "DataflowFacts",
    "Diagnostic",
    "ERROR",
    "INFO",
    "ServiceFootprint",
    "SpecRejectedError",
    "StaticFacts",
    "TaskDataflow",
    "WARNING",
    "analyze",
    "analyze_property",
    "analyze_system",
    "compute_dataflow_facts",
    "compute_static_facts",
    "sort_diagnostics",
    "statically_unsatisfiable",
    "statically_unsatisfiable_under",
]
