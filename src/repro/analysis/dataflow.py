"""Forward dataflow analysis over the task/service graph.

A forward abstract-interpretation pass computing, per task, an
over-approximate *enablement summary* for the task's local symbolic runs:

* an abstract **constant environment**: variable -> constant bindings that
  hold in *every* reachable symbolic state of the task's own verification
  search.  Seeded from the forced constant bindings of the global
  pre-condition (root) / the null-initialisation of non-input variables
  (non-root, Definition 26), and propagated through service pre- and
  post-conditions with the same union-find equality congruence the symbolic
  evaluator implements (:func:`repro.analysis.satisfiability.analyse_disjunct`);
* a **service-enablement lattice**: statically-dead services (never fire in
  any run), services enabled at most once, and mutually-exclusive service
  pairs (never enabled in the same state);
* a **may-write / must-read variable footprint** per internal service.

Soundness contract (what makes the in-search pruning verdict- and
state-count-preserving):

* every binding ``v = c`` of a task's ``constant_env`` is a constraint
  literally present in every reachable partial isomorphism type of that
  task's search: the initial types establish it (forced by the global
  pre-condition / the null initialisation), projections preserve it
  (``PartialIsoType.project`` keeps var = const constraints among kept
  roots, and a variable only survives in the environment if it is
  propagated -- i.e. kept -- by every possibly-enabled service), and every
  post-condition extension re-establishes it (the environment drops any
  variable some possibly-enabled writer does not definitely pin back);
* a service is reported **dead** only when, for every reachable state, the
  symbolic ``extend`` of its pre-condition (or, under the propagated-subset
  of the environment, its post-condition) fails on *every* DNF disjunct by
  plain equality reasoning -- it produces zero symbolic moves, so skipping
  it changes neither verdicts nor explored-state counts;
* the at-most-once and mutual-exclusion facts are informational (they are
  *not* used for pruning: suppressing a still-legal second firing would
  change explored-state counts).

Determinism: every fact is computed with sorted / declaration-order
iteration only -- the summaries feed diagnostics and (indirectly) result
fingerprints, so iteration-order-dependent output would be a bug.  The
``DF001`` rule of ``tools/lint_invariants.py`` gates this module on it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Sequence, Set, Tuple

from repro.analysis.satisfiability import (
    analyse_disjunct,
    binding_literals,
    statically_unsatisfiable,
    statically_unsatisfiable_under,
)
from repro.has.artifact_system import ArtifactSystem
from repro.has.conditions import And, Condition, Eq, Neq
from repro.has.conditions import Const as CondConst
from repro.has.services import Insert, InternalService, Retrieve

#: Sentinel distinguishing "no forced binding" from a forced ``null`` binding.
_MISSING: Any = object()

#: Pairwise mutual-exclusion tests multiply the two pre-conditions' DNFs;
#: pairs whose product would exceed this many disjuncts are skipped (the
#: fact is informational, so under-reporting is always safe).
_PAIRWISE_DNF_CAP = 64


# ---------------------------------------------------------------------------
# Condition-level helpers
# ---------------------------------------------------------------------------


def satisfiable_disjunct_bindings(
    condition: Condition, assumptions: Mapping[str, Any]
) -> List[Dict[str, Any]]:
    """Per-disjunct forced bindings of ``condition ∧ assumptions``.

    One entry per DNF disjunct that is *satisfiable* under the assumed
    ``var = const`` bindings; an empty list means the condition can never
    hold while the assumptions do.
    """
    extra = binding_literals(assumptions)
    result: List[Dict[str, Any]] = []
    for disjunct in condition.dnf():
        forced = analyse_disjunct(list(disjunct) + extra)
        if forced is not None:
            result.append(forced)
    return result


def forced_bindings_under(
    condition: Condition, assumptions: Mapping[str, Any]
) -> Dict[str, Any]:
    """Variable -> constant bindings forced by *every* satisfiable disjunct
    of ``condition ∧ assumptions`` (congruence-closed, unlike the plain
    literal intersection of PR 9's ``_forced_constant_bindings``)."""
    per_disjunct = satisfiable_disjunct_bindings(condition, assumptions)
    if not per_disjunct:
        return {}
    forced = dict(per_disjunct[0])
    for bindings in per_disjunct[1:]:
        for name in sorted(forced):
            if bindings.get(name, _MISSING) != forced[name]:
                del forced[name]
    return forced


# ---------------------------------------------------------------------------
# Facts
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ServiceFootprint:
    """The variable footprint of one internal service.

    ``must_read`` are the task variables whose current value the service's
    applicability or effect depends on (pre-condition, post-condition
    constraints over propagated variables, insertion sources); ``may_write``
    is the sound over-approximation of the variables whose value may change
    (everything not propagated -- unconstrained non-propagated variables are
    havocked by the transition semantics).
    """

    service: str
    must_read: Tuple[str, ...]
    may_write: Tuple[str, ...]

    def as_dict(self) -> Dict[str, Any]:
        return {
            "service": self.service,
            "must_read": list(self.must_read),
            "may_write": list(self.may_write),
        }


@dataclass(frozen=True)
class TaskDataflow:
    """The dataflow summary of one task's local symbolic runs."""

    task: str
    #: Variable -> constant bindings holding in every reachable symbolic
    #: state of this task's own verification search (see module docstring).
    constant_env: Mapping[str, Any]
    #: Internal services of this task that can never fire (zero symbolic
    #: moves in every reachable state).
    dead_services: Tuple[str, ...]
    #: Children whose opening guard can never fire from this task.
    dead_child_openings: Tuple[str, ...]
    #: Internal services provably enabled at most once per local run.
    at_most_once_services: Tuple[str, ...]
    #: Pairs of internal services never enabled in the same state.
    mutually_exclusive: Tuple[Tuple[str, str], ...]
    #: Per-service may-write / must-read footprints.
    footprints: Tuple[ServiceFootprint, ...]
    #: Task variables some service or child output mapping writes but no
    #: condition, update or mapping ever reads (the VA504 fact).
    written_never_read: Tuple[str, ...]

    def as_dict(self) -> Dict[str, Any]:
        return {
            "task": self.task,
            "constant_env": {name: self.constant_env[name] for name in sorted(self.constant_env)},
            "dead_services": list(self.dead_services),
            "dead_child_openings": list(self.dead_child_openings),
            "at_most_once_services": list(self.at_most_once_services),
            "mutually_exclusive": [list(pair) for pair in self.mutually_exclusive],
            "footprints": [footprint.as_dict() for footprint in self.footprints],
            "written_never_read": list(self.written_never_read),
        }


@dataclass(frozen=True)
class DataflowFacts:
    """Per-task dataflow summaries for one specification."""

    tasks: Mapping[str, TaskDataflow]

    def for_task(self, task_name: str) -> Optional[TaskDataflow]:
        return self.tasks.get(task_name)

    def as_dict(self) -> Dict[str, Any]:
        return {name: self.tasks[name].as_dict() for name in sorted(self.tasks)}


# ---------------------------------------------------------------------------
# Per-task analysis
# ---------------------------------------------------------------------------


def _propagated_assumptions(
    env: Mapping[str, Any], service: InternalService
) -> Dict[str, Any]:
    """The environment restricted to the service's propagated variables --
    the only bindings guaranteed to survive the mid-transition projection,
    hence the only ones sound to assume while evaluating the post."""
    return {name: env[name] for name in sorted(service.propagated) if name in env}


def _initial_env(system: ArtifactSystem, task_name: str) -> Dict[str, Any]:
    task = system.task(task_name)
    if task_name == system.root:
        # Definition 14: every initial instance satisfies the global
        # pre-condition, so its forced bindings hold in every initial type.
        task_vars = set(task.variable_names)
        seeded = forced_bindings_under(system.global_precondition, {})
        return {name: seeded[name] for name in sorted(seeded) if name in task_vars}
    # Definition 26: a non-root opening initialises every non-input variable
    # to null; the inputs come from the parent and are left unconstrained by
    # the verified-task search (every possible call is covered lazily), so
    # they contribute nothing -- even if every parent call site would pass a
    # constant.
    inputs = set(task.input_variables)
    return {name: None for name in task.variable_names if name not in inputs}


def _env_fixpoint(system: ArtifactSystem, task_name: str) -> Dict[str, Any]:
    """The greatest constant environment stable under every possibly-enabled
    transition (monotone-decreasing fixpoint; terminates in <= |vars| + 1
    rounds because each round either removes a binding or is the last)."""
    env = _initial_env(system, task_name)
    services = system.internal_services(task_name)
    children = system.children_of(task_name)
    while True:
        changed = False
        for service in services:
            if statically_unsatisfiable_under(service.pre, env):
                continue  # dead under the current env; rechecked every round
            assumptions = _propagated_assumptions(env, service)
            per_disjunct = satisfiable_disjunct_bindings(service.post, assumptions)
            if not per_disjunct:
                continue  # the post can never extend: zero moves
            forced = dict(per_disjunct[0])
            for bindings in per_disjunct[1:]:
                for name in sorted(forced):
                    if bindings.get(name, _MISSING) != forced[name]:
                        del forced[name]
            for name in sorted(env):
                if name in service.propagated:
                    continue
                if forced.get(name, _MISSING) != env[name]:
                    del env[name]
                    changed = True
        for child in children:
            if statically_unsatisfiable_under(system.opening_service(child).pre, env):
                continue  # the child can never open: its closing never fires
            returned = system.closing_service(child).output_mapping().values()
            for target in sorted(set(returned)):
                if target in env:
                    del env[target]
                    changed = True
        if not changed:
            return env


def _dead_services(
    system: ArtifactSystem, task_name: str, env: Mapping[str, Any]
) -> List[str]:
    dead: List[str] = []
    for service in system.internal_services(task_name):
        if statically_unsatisfiable_under(service.pre, env):
            dead.append(service.name)
            continue
        assumptions = _propagated_assumptions(env, service)
        if not satisfiable_disjunct_bindings(service.post, assumptions):
            dead.append(service.name)
    return dead


def _dead_child_openings(
    system: ArtifactSystem, task_name: str, env: Mapping[str, Any]
) -> List[str]:
    return [
        child
        for child in system.children_of(task_name)
        if statically_unsatisfiable_under(system.opening_service(child).pre, env)
    ]


def _at_most_once(
    system: ArtifactSystem,
    task_name: str,
    env: Mapping[str, Any],
    live: Sequence[InternalService],
    open_children: Sequence[str],
) -> List[str]:
    """Services S provably enabled at most once per local run: S's pre
    requires ``v = c`` for some variable v that S itself definitely moves to
    a different constant, every other live writer of v also definitely moves
    it away from ``c``, and no possibly-open child can write v back."""
    child_written: Set[str] = set()
    for child in open_children:
        child_written |= set(system.closing_service(child).output_mapping().values())
    result: List[str] = []
    for service in live:
        pre_forced = forced_bindings_under(service.pre, env)
        for name in sorted(pre_forced):
            value = pre_forced[name]
            if name in service.propagated or name in child_written or name in env:
                continue
            own_after = forced_bindings_under(
                service.post, _propagated_assumptions(env, service)
            ).get(name, _MISSING)
            if own_after is _MISSING or own_after == value:
                continue
            blocked = False
            for other in live:
                if other.name == service.name or name in other.propagated:
                    continue
                other_after = forced_bindings_under(
                    other.post, _propagated_assumptions(env, other)
                ).get(name, _MISSING)
                if other_after is _MISSING or other_after == value:
                    blocked = True
                    break
            if not blocked:
                result.append(service.name)
                break
    return result


def _mutually_exclusive(
    env: Mapping[str, Any], live: Sequence[InternalService]
) -> List[Tuple[str, str]]:
    """Pairs of live services whose pre-conditions can never hold in the
    same state (their conjunction is unsatisfiable under the environment)."""
    pairs: List[Tuple[str, str]] = []
    for i, first in enumerate(live):
        first_disjuncts = len(first.pre.dnf())
        for second in live[i + 1:]:
            if first_disjuncts * len(second.pre.dnf()) > _PAIRWISE_DNF_CAP:
                continue
            if statically_unsatisfiable_under(And(first.pre, second.pre), env):
                pairs.append((first.name, second.name))
    return pairs


def _footprints_and_flows(
    system: ArtifactSystem, task_name: str
) -> Tuple[List[ServiceFootprint], Set[str], Set[str]]:
    """Per-service footprints plus the task-wide (reads, explicit-writes)
    variable sets feeding the write-only-variable fact."""
    task = system.task(task_name)
    task_vars = set(task.variable_names)
    reads: Set[str] = set()
    writes: Set[str] = set()
    footprints: List[ServiceFootprint] = []
    for service in system.internal_services(task_name):
        propagated = set(service.propagated)
        must_read = (service.pre.variables() & task_vars) | (
            service.post.variables() & propagated
        )
        if isinstance(service.update, Insert):
            must_read |= set(service.update.variables)
        may_write = task_vars - propagated
        # Only variable-vs-constant (dis)equality literals count as explicit
        # *stores*, and only for variables not also bound by a relation atom
        # of the same post: a variable-to-variable equality is a copy (both
        # operands are sources), and an atom occurrence is a navigation
        # binding (the idiomatic HAS* database lookup, with equalities
        # acting as lookup filters) -- neither is a dead store.
        explicit: Set[str] = set()
        atom_bound: Set[str] = set()
        for atom in service.post.atoms():
            if isinstance(atom, (Eq, Neq)):
                operands = (atom.left, atom.right)
                if any(isinstance(term, CondConst) for term in operands):
                    explicit |= atom.variables()
            else:
                atom_bound |= atom.variables()
        explicit = (explicit & task_vars) - propagated - atom_bound
        if isinstance(service.update, Retrieve):
            explicit |= set(service.update.variables)
        footprints.append(
            ServiceFootprint(
                service=service.name,
                must_read=tuple(sorted(must_read)),
                may_write=tuple(sorted(may_write)),
            )
        )
        reads |= must_read
        writes |= explicit
    # The global pre-condition is deliberately *not* a read: it constrains
    # the initial instance before any service writes, so a variable written
    # by a service but mentioned only there is still a dead store.
    reads |= system.closing_service(task_name).pre.variables() & task_vars
    reads |= set(task.output_variables)
    for child in system.children_of(task_name):
        opening = system.opening_service(child)
        reads |= opening.pre.variables() & task_vars
        reads |= set(opening.input_mapping().values())
        writes |= set(system.closing_service(child).output_mapping().values())
    return footprints, reads, writes


def _task_dataflow(system: ArtifactSystem, task_name: str) -> TaskDataflow:
    env = _env_fixpoint(system, task_name)
    dead = _dead_services(system, task_name, env)
    dead_set = set(dead)
    dead_children = _dead_child_openings(system, task_name, env)
    live = [
        service
        for service in system.internal_services(task_name)
        if service.name not in dead_set
    ]
    open_children = [
        child
        for child in system.children_of(task_name)
        if child not in set(dead_children)
    ]
    footprints, reads, writes = _footprints_and_flows(system, task_name)
    return TaskDataflow(
        task=task_name,
        constant_env={name: env[name] for name in sorted(env)},
        dead_services=tuple(sorted(dead_set)),
        dead_child_openings=tuple(sorted(dead_children)),
        at_most_once_services=tuple(
            sorted(_at_most_once(system, task_name, env, live, open_children))
        ),
        mutually_exclusive=tuple(_mutually_exclusive(env, live)),
        footprints=tuple(footprints),
        written_never_read=tuple(sorted(writes - reads)),
    )


def compute_dataflow_facts(system: ArtifactSystem) -> DataflowFacts:
    """The per-task dataflow summaries of one specification.

    Cheap enough for the verifier to call per ``verify()`` (a handful of DNF
    conversions per service, iterated to a <= |vars|-round fixpoint) and for
    the analyzer to call per lint/submit.
    """
    return DataflowFacts(
        tasks={name: _task_dataflow(system, name) for name in system.task_names}
    )


def plainly_dead_service(service: InternalService) -> bool:
    """Whether a service is dead *without* constant propagation (its pre is
    unsatisfiable on its own -- the VA203 fact, which VA302 must not repeat)."""
    return statically_unsatisfiable(service.pre)
