"""The static analyzer over :class:`ArtifactSystem` + :class:`LTLFOProperty`.

Two entry points:

* :func:`analyze` -- full diagnostics pass (``python -m repro lint``, the
  submit path).  Returns an :class:`AnalysisReport`: severity-ranked
  :class:`Diagnostic` records plus the :class:`StaticFacts` summary.
* :func:`compute_static_facts` -- the facts alone, skipping the (slightly
  more expensive) hygiene checks.  Used by the verifier's pre-search
  pruning pass on every ``verify()`` call, so it stays cheap: a handful of
  DNF conversions over the spec's guards.

Soundness contract of the facts (what makes pruning verdict-preserving):

* a task appears in ``unsat_opening_tasks`` only when its opening guard is
  :func:`~repro.analysis.satisfiability.statically_unsatisfiable` -- the
  symbolic evaluator produces no moves for such a guard, so skipping the
  child entirely leaves the explored state space unchanged;
* a property gets a ``"satisfied"`` verdict only when every run trivially
  satisfies it: its formula is structurally ``true``, or it targets the
  root task and the global pre-condition is statically unsatisfiable
  (no initial instance, hence no runs, hence the ∀-property holds
  vacuously) -- both cases where the unpruned search also reports
  SATISFIED after exploring nothing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis.diagnostics import (
    ERROR,
    WARNING,
    Diagnostic,
    sort_diagnostics,
)
from repro.analysis.dataflow import compute_dataflow_facts
from repro.analysis.satisfiability import statically_unsatisfiable
from repro.has.artifact_system import ArtifactSystem
from repro.has.conditions import Condition, Const, Eq, Neq, RelationAtom, TrueCond, Var
from repro.has.runs import TERMINATED_SERVICE
from repro.ltl.ltlfo import LTLFOProperty
from repro.ltl.syntax import LFalse, LTrue

#: The trivially-decided verdict value used in :attr:`StaticFacts.property_verdicts`.
SATISFIED = "satisfied"


@dataclass(frozen=True)
class StaticFacts:
    """What the analyzer could decide about the spec without searching."""

    #: Tasks reachable from the root through statically satisfiable opening
    #: guards (the root is always reachable).
    reachable_tasks: Tuple[str, ...] = ()
    #: Tasks whose *own* opening guard is statically unsatisfiable; the
    #: verifier skips their opening moves during successor generation.
    unsat_opening_tasks: Tuple[str, ...] = ()
    #: Whether the global pre-condition is statically unsatisfiable (the
    #: root task then has no initial instance).
    root_precondition_unsatisfiable: bool = False
    #: Variable -> constant bindings forced by the global pre-condition
    #: (holds in *every* initial instance), keyed by the root task's name.
    constant_bindings: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    #: Property name -> trivially-decided verdict (currently only
    #: ``"satisfied"``; see the module docstring for the soundness rules).
    property_verdicts: Dict[str, str] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "reachable_tasks": list(self.reachable_tasks),
            "unsat_opening_tasks": list(self.unsat_opening_tasks),
            "root_precondition_unsatisfiable": self.root_precondition_unsatisfiable,
            "constant_bindings": {
                task: dict(bindings) for task, bindings in self.constant_bindings.items()
            },
            "property_verdicts": dict(self.property_verdicts),
        }


@dataclass
class AnalysisReport:
    """Severity-ranked diagnostics plus the static facts of one spec."""

    diagnostics: List[Diagnostic]
    facts: StaticFacts

    @property
    def errors(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == ERROR]

    @property
    def warnings(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == WARNING]

    @property
    def has_errors(self) -> bool:
        return any(d.severity == ERROR for d in self.diagnostics)

    def as_dict(self) -> Dict[str, Any]:
        # "version" is the envelope contract of ``python -m repro lint
        # --json`` (and the 422 body): bumped only on breaking shape
        # changes, so consumers can parse defensively.
        return {
            "version": 1,
            "diagnostics": [d.as_dict() for d in self.diagnostics],
            "facts": self.facts.as_dict(),
            "summary": {
                "errors": len(self.errors),
                "warnings": len(self.warnings),
            },
        }


# ---------------------------------------------------------------------------
# Static facts
# ---------------------------------------------------------------------------


def _forced_constant_bindings(condition: Condition) -> Dict[str, Any]:
    """Variable -> constant bindings that hold in every model of *condition*.

    A binding is forced when **every** DNF disjunct contains the literal
    ``var = const`` with the same constant (a sound necessary-binding
    intersection; incomplete, which is fine for an informational fact).
    """
    disjuncts = condition.dnf()
    if not disjuncts:
        return {}
    forced: Optional[Dict[str, Any]] = None
    for disjunct in disjuncts:
        bindings: Dict[str, Any] = {}
        for literal in disjunct:
            if isinstance(literal, Eq):
                pairs = ((literal.left, literal.right), (literal.right, literal.left))
                for var, const in pairs:
                    if isinstance(var, Var) and isinstance(const, Const):
                        bindings.setdefault(var.name, const.value)
        if forced is None:
            forced = bindings
        else:
            forced = {
                name: value
                for name, value in forced.items()
                if name in bindings and bindings[name] == value
            }
        if not forced:
            return {}
    return forced or {}


def compute_static_facts(
    system: ArtifactSystem,
    properties: Sequence[LTLFOProperty] = (),
) -> StaticFacts:
    """The pruning facts alone (cheap; called per ``verify()``)."""
    unsat_openings = {
        task_name
        for task_name in system.task_names
        if task_name != system.root
        and statically_unsatisfiable(system.opening_service(task_name).pre)
    }
    root_unsat = statically_unsatisfiable(system.global_precondition)

    reachable: Set[str] = set()
    stack = [system.root]
    while stack:
        current = stack.pop()
        if current in reachable:
            continue
        reachable.add(current)
        for child in system.children_of(current):
            if child not in unsat_openings:
                stack.append(child)

    bindings = _forced_constant_bindings(system.global_precondition)
    constant_bindings = {system.root: bindings} if bindings else {}

    verdicts: Dict[str, str] = {}
    for ltl_property in properties:
        if ltl_property.formula.nnf() == LTrue():
            verdicts[ltl_property.name] = SATISFIED
        elif ltl_property.task == system.root and root_unsat:
            # No initial instance of the root: there are no runs at all, so
            # the universally quantified property holds vacuously -- exactly
            # what the search reports after exploring zero states.
            verdicts[ltl_property.name] = SATISFIED

    return StaticFacts(
        reachable_tasks=tuple(t for t in system.task_names if t in reachable),
        unsat_opening_tasks=tuple(sorted(unsat_openings)),
        root_precondition_unsatisfiable=root_unsat,
        constant_bindings=constant_bindings,
        property_verdicts=verdicts,
    )


# ---------------------------------------------------------------------------
# System diagnostics
# ---------------------------------------------------------------------------


def _constant_only(condition: Condition) -> bool:
    """Whether a post-condition only pins variables to constants: no
    relational atoms, and every (dis)equality compares against a constant."""
    atoms = condition.atoms()
    saw_binding = False
    for atom in atoms:
        if isinstance(atom, (TrueCond,)):
            continue
        if isinstance(atom, (Eq, Neq)):
            terms = (atom.left, atom.right)
            if all(isinstance(t, Var) for t in terms):
                return False
            if any(isinstance(t, Var) for t in terms):
                saw_binding = True
            continue
        return False  # relational atoms, FalseCond, ...
    return saw_binding


def _used_variables(system: ArtifactSystem, task_name: str) -> Set[str]:
    """Names of the task's variables referenced anywhere in the spec."""
    task = system.task(task_name)
    used: Set[str] = set(task.input_variables) | set(task.output_variables)
    for service in system.internal_services(task_name):
        used |= service.pre.variables() | service.post.variables()
        used |= set(service.propagated)
        if service.update is not None:
            used |= set(service.update.variables)
    used |= system.closing_service(task_name).pre.variables()
    if task_name == system.root:
        used |= system.global_precondition.variables()
    for child in system.children_of(task_name):
        # Child opening guards and input maps read *this* task's variables;
        # child closing output maps write into them.
        opening = system.opening_service(child)
        used |= opening.pre.variables()
        used |= set(opening.input_mapping().values())
        used |= set(system.closing_service(child).output_mapping().values())
    return used


def analyze_system(system: ArtifactSystem) -> Tuple[List[Diagnostic], StaticFacts]:
    """System-side diagnostics (dead guards, unreachable tasks, unused
    declarations) plus the static facts."""
    facts = compute_static_facts(system)
    diagnostics: List[Diagnostic] = []
    unsat_openings = set(facts.unsat_opening_tasks)
    reachable = set(facts.reachable_tasks)

    if facts.root_precondition_unsatisfiable:
        diagnostics.append(
            Diagnostic(
                "VA203",
                WARNING,
                "the global pre-condition is statically unsatisfiable: the root task "
                "has no initial instance and every property holds vacuously",
                where="global pre-condition",
            )
        )

    used_relations: Set[str] = set()

    def note_relations(condition: Condition) -> None:
        for atom in condition.atoms():
            if isinstance(atom, RelationAtom):
                used_relations.add(atom.relation)

    note_relations(system.global_precondition)

    for task_name in system.task_names:
        task = system.task(task_name)
        for service in system.internal_services(task_name):
            note_relations(service.pre)
            note_relations(service.post)
            where = f"task {task_name!r} / service {service.name!r}"
            if statically_unsatisfiable(service.pre):
                diagnostics.append(
                    Diagnostic(
                        "VA203",
                        WARNING,
                        f"pre-condition of service {service.name!r} is statically "
                        "unsatisfiable: the service can never fire",
                        where=f"{where} pre-condition",
                    )
                )
            elif _constant_only(service.post):
                diagnostics.append(
                    Diagnostic(
                        "VA503",
                        WARNING,
                        f"service {service.name!r} only assigns constants in its "
                        "post-condition (no variable-to-variable or database "
                        "constraints); possibly a stub",
                        where=where,
                    )
                )
        opening = system.opening_service(task_name)
        closing = system.closing_service(task_name)
        note_relations(opening.pre)
        note_relations(closing.pre)
        if task_name in unsat_openings:
            diagnostics.append(
                Diagnostic(
                    "VA203",
                    WARNING,
                    f"opening guard of task {task_name!r} is statically "
                    "unsatisfiable: the task can never be opened",
                    where=f"task {task_name!r} / opening guard",
                )
            )
        if task_name not in reachable:
            diagnostics.append(
                Diagnostic(
                    "VA301",
                    WARNING,
                    f"task {task_name!r} is statically unreachable from the root "
                    f"{system.root!r} (its opening guard, or an ancestor's, can "
                    "never hold)",
                    where=f"task {task_name!r}",
                )
            )
        if (
            task_name != system.root
            and task_name not in unsat_openings
            and statically_unsatisfiable(closing.pre)
        ):
            diagnostics.append(
                Diagnostic(
                    "VA203",
                    WARNING,
                    f"closing guard of task {task_name!r} is statically "
                    "unsatisfiable: once opened, the task can never close",
                    where=f"task {task_name!r} / closing guard",
                )
            )
        for unused in sorted(set(task.variable_names) - _used_variables(system, task_name)):
            diagnostics.append(
                Diagnostic(
                    "VA501",
                    WARNING,
                    f"variable {unused!r} of task {task_name!r} is never read by any "
                    "condition, propagation, update or input/output mapping",
                    where=f"task {task_name!r} / variable {unused!r}",
                )
            )

    # Dataflow-level facts: services dead only *under constant propagation*
    # (their guard is satisfiable in isolation, so VA203 stays silent, but no
    # reachable state of the task's search can ever enable them) and task
    # variables that are written but never read.  Computed without the
    # properties, like VA501: a property condition reading the variable does
    # not silence the system-level fact.
    dataflow = compute_dataflow_facts(system)
    for task_name in system.task_names:
        task_facts = dataflow.for_task(task_name)
        if task_facts is None:
            continue
        plainly_dead = {
            service.name
            for service in system.internal_services(task_name)
            if statically_unsatisfiable(service.pre)
        }
        for service_name in task_facts.dead_services:
            if service_name in plainly_dead:
                continue  # VA203 already reports it; don't double-fire
            diagnostics.append(
                Diagnostic(
                    "VA302",
                    WARNING,
                    f"service {service_name!r} can never fire: constant propagation "
                    f"over task {task_name!r} shows its pre- or post-condition is "
                    "unsatisfiable in every reachable state",
                    where=f"task {task_name!r} / service {service_name!r}",
                )
            )
        for child in task_facts.dead_child_openings:
            if child in unsat_openings:
                continue  # VA203 already reports the plain-unsat guard
            diagnostics.append(
                Diagnostic(
                    "VA302",
                    WARNING,
                    f"task {child!r} can never be opened: constant propagation over "
                    f"task {task_name!r} shows its opening guard is unsatisfiable "
                    "in every reachable state",
                    where=f"task {child!r} / opening guard",
                )
            )
        for variable in task_facts.written_never_read:
            diagnostics.append(
                Diagnostic(
                    "VA504",
                    WARNING,
                    f"variable {variable!r} of task {task_name!r} is written by a "
                    "post-condition, retrieval or child output mapping but never "
                    "read by any condition or mapping (dead store)",
                    where=f"task {task_name!r} / variable {variable!r}",
                )
            )

    # Relations referenced only through id-typed variables still count as used.
    for task in system.tasks:
        for var in task.variables:
            target = getattr(var.type, "relation", None)
            if target:
                used_relations.add(target)
        for artifact_relation in task.artifact_relations:
            for attr in artifact_relation.attributes:
                target = getattr(attr.type, "relation", None)
                if target:
                    used_relations.add(target)
    # A relation referenced by a used relation's foreign keys is reachable too.
    frontier = list(used_relations)
    while frontier:
        name = frontier.pop()
        if not system.schema.has_relation(name):
            continue
        for fk in system.schema.relation(name).foreign_keys:
            if fk.target and fk.target not in used_relations:
                used_relations.add(fk.target)
                frontier.append(fk.target)
    for relation in system.schema.relations:
        if relation.name not in used_relations:
            diagnostics.append(
                Diagnostic(
                    "VA502",
                    WARNING,
                    f"database relation {relation.name!r} is never referenced by any "
                    "condition, variable type or foreign key in use",
                    where=f"relation {relation.name!r}",
                )
            )

    return diagnostics, facts


# ---------------------------------------------------------------------------
# Property diagnostics
# ---------------------------------------------------------------------------


def _check_property_condition(
    system: ArtifactSystem,
    ltl_property: LTLFOProperty,
    proposition: str,
    condition: Condition,
    allowed_variables: Set[str],
) -> List[Diagnostic]:
    where = f"property {ltl_property.name!r} / condition {proposition!r}"
    diagnostics: List[Diagnostic] = []
    for unknown in sorted(condition.variables() - allowed_variables):
        diagnostics.append(
            Diagnostic(
                "VA101",
                ERROR,
                f"condition {proposition!r} mentions {unknown!r}, which is neither a "
                f"variable of task {ltl_property.task!r} nor a declared global "
                "variable of the property",
                where=where,
            )
        )
    for atom in condition.atoms():
        if not isinstance(atom, RelationAtom):
            continue
        if not system.schema.has_relation(atom.relation):
            diagnostics.append(
                Diagnostic(
                    "VA103",
                    ERROR,
                    f"condition {proposition!r} uses unknown database relation "
                    f"{atom.relation!r}",
                    where=where,
                )
            )
            continue
        expected = system.schema.relation(atom.relation).arity
        if len(atom.args) != expected:
            diagnostics.append(
                Diagnostic(
                    "VA104",
                    ERROR,
                    f"atom {atom} has {len(atom.args)} arguments but relation "
                    f"{atom.relation!r} has arity {expected}",
                    where=where,
                )
            )
    return diagnostics


def analyze_property(
    system: ArtifactSystem, ltl_property: LTLFOProperty
) -> List[Diagnostic]:
    """Property-side diagnostics against the system it will be verified on."""
    diagnostics: List[Diagnostic] = []
    name = ltl_property.name
    if not system.has_task(ltl_property.task):
        diagnostics.append(
            Diagnostic(
                "VA102",
                ERROR,
                f"property {name!r} targets unknown task {ltl_property.task!r} "
                f"(known tasks: {', '.join(system.task_names)})",
                where=f"property {name!r}",
            )
        )
        return diagnostics

    task = system.task(ltl_property.task)
    allowed = set(task.variable_names) | set(ltl_property.global_variable_names)
    for proposition, condition in sorted(ltl_property.conditions.items()):
        diagnostics.extend(
            _check_property_condition(system, ltl_property, proposition, condition, allowed)
        )

    observable = set(system.observable_service_names(ltl_property.task))
    observable.add(TERMINATED_SERVICE)
    for proposition in sorted(ltl_property.service_propositions - observable):
        diagnostics.append(
            Diagnostic(
                "VA105",
                ERROR,
                f"proposition {proposition!r} is neither an interpreted condition nor "
                f"an observable service of task {ltl_property.task!r}",
                where=f"property {name!r}",
            )
        )

    used_variables: Set[str] = set()
    for condition in ltl_property.conditions.values():
        used_variables |= condition.variables()
    for unused in sorted(set(ltl_property.global_variable_names) - used_variables):
        diagnostics.append(
            Diagnostic(
                "VA401",
                WARNING,
                f"global variable {unused!r} is universally quantified but never "
                "occurs in any condition of the property (vacuous quantifier; "
                "possibly a typo)",
                where=f"property {name!r}",
            )
        )

    formula_propositions = ltl_property.formula.propositions()
    for unused in sorted(set(ltl_property.conditions) - formula_propositions):
        diagnostics.append(
            Diagnostic(
                "VA403",
                WARNING,
                f"condition {unused!r} is interpreted but its proposition never "
                "occurs in the LTL formula",
                where=f"property {name!r}",
            )
        )

    nnf = ltl_property.formula.nnf()
    if nnf == LTrue() or nnf == LFalse():
        constant = "true" if nnf == LTrue() else "false"
        diagnostics.append(
            Diagnostic(
                "VA402",
                WARNING,
                f"the LTL formula of property {name!r} is constant {constant}; the "
                "verdict does not depend on the system",
                where=f"property {name!r}",
            )
        )
    return diagnostics


# ---------------------------------------------------------------------------
# Full analysis
# ---------------------------------------------------------------------------


def analyze(
    system: ArtifactSystem,
    properties: Sequence[LTLFOProperty] = (),
) -> AnalysisReport:
    """Run every check over a system and its properties."""
    diagnostics, _ = analyze_system(system)
    for ltl_property in properties:
        diagnostics.extend(analyze_property(system, ltl_property))
    facts = compute_static_facts(system, properties)
    return AnalysisReport(diagnostics=sort_diagnostics(diagnostics), facts=facts)
