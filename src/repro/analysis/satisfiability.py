"""Sound static unsatisfiability of quantifier-free FO conditions.

:func:`statically_unsatisfiable` decides a *sound under-approximation* of
unsatisfiability: it returns ``True`` only when the condition is genuinely
unsatisfiable under the equality theory the symbolic search itself
implements (distinct constants are distinct; equality is a congruence).
That soundness is what makes the verifier's ``static_pruning`` pass
verdict-preserving: a child task whose opening guard is statically
unsatisfiable produces no symbolic moves anyway, so skipping it cannot
change the explored state space.

The check works per DNF disjunct with a small union-find:

* an empty DNF (structural ``false``) is unsatisfiable;
* a disjunct is contradictory when its ``=`` literals merge two distinct
  constants into one equivalence class, or a ``!=`` literal relates two
  terms already in the same class.

Deliberately *not* used: the null-semantics of relational atoms
(``R(..., null, ...)`` is false at run time) and any relation-level
reasoning -- those involve machinery beyond plain equality, so flagging
them here could disagree with the symbolic evaluator.
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, List, Mapping, Optional, Sequence, Tuple

from repro.has.conditions import Condition, Const, Eq, Neq, Term, Var


def _term_key(term: Term) -> Hashable:
    if isinstance(term, Var):
        return ("var", term.name)
    return ("const", term.value)


class _UnionFind:
    def __init__(self) -> None:
        self._parent: Dict[Hashable, Hashable] = {}

    def find(self, item: Hashable) -> Hashable:
        parent = self._parent.setdefault(item, item)
        if parent == item:
            return item
        root = self.find(parent)
        self._parent[item] = root
        return root

    def union(self, a: Hashable, b: Hashable) -> None:
        self._parent[self.find(a)] = self.find(b)


def analyse_disjunct(literals: Sequence[Condition]) -> Optional[Dict[str, Any]]:
    """Congruence analysis of one DNF conjunct.

    Returns ``None`` when the conjunct is contradictory under equality
    reasoning (its ``=`` literals merge two distinct constants into one
    equivalence class, or a ``!=`` literal relates two terms already in the
    same class); otherwise the variable -> constant bindings *forced* by the
    conjunct (every variable whose equivalence class contains a constant).
    The forced bindings use the same union-find congruence the symbolic
    evaluator implements, so ``x = y ∧ y = "a"`` forces ``x = "a"``.
    """
    uf = _UnionFind()
    disequalities: List[Tuple[Hashable, Hashable]] = []
    for literal in literals:
        if isinstance(literal, Eq):
            uf.union(_term_key(literal.left), _term_key(literal.right))
        elif isinstance(literal, Neq):
            disequalities.append((_term_key(literal.left), _term_key(literal.right)))
    # Two distinct constants in one equivalence class.
    constant_of: Dict[Hashable, Const] = {}
    for literal in literals:
        if not isinstance(literal, (Eq, Neq)):
            continue
        for term in (literal.left, literal.right):
            if isinstance(term, Const):
                root = uf.find(_term_key(term))
                seen = constant_of.get(root)
                if seen is not None and seen.value != term.value:
                    return None
                constant_of[root] = term
    # A disequality whose sides were merged by the equalities.
    for left, right in disequalities:
        if uf.find(left) == uf.find(right):
            return None
    bindings: Dict[str, Any] = {}
    for literal in literals:
        if not isinstance(literal, (Eq, Neq)):
            continue
        for term in (literal.left, literal.right):
            if isinstance(term, Var):
                constant = constant_of.get(uf.find(_term_key(term)))
                if constant is not None:
                    bindings[term.name] = constant.value
    return bindings


def _disjunct_contradictory(literals: Sequence[Condition]) -> bool:
    """Whether one DNF conjunct is contradictory under equality reasoning."""
    return analyse_disjunct(literals) is None


def binding_literals(bindings: Mapping[str, Any]) -> List[Condition]:
    """The ``var = const`` literals of an abstract constant environment, in
    deterministic (name-sorted) order."""
    return [Eq(Var(name), Const(bindings[name])) for name in sorted(bindings)]


def statically_unsatisfiable(condition: Condition) -> bool:
    """``True`` only if *condition* provably has no satisfying valuation."""
    disjuncts = condition.dnf()
    if not disjuncts:
        return True
    return all(_disjunct_contradictory(d) for d in disjuncts)


def statically_unsatisfiable_under(
    condition: Condition, bindings: Mapping[str, Any]
) -> bool:
    """``True`` only if ``condition ∧ (var = const for every binding)`` has no
    satisfying valuation.

    This is the env-aware variant used by :mod:`repro.analysis.dataflow`: when
    *bindings* are invariants of every reachable symbolic state (constraints
    literally present in every reachable partial isomorphism type), a ``True``
    here means the symbolic evaluator's ``extend`` fails on every reachable
    state, so the condition can never fire -- the soundness argument of the
    in-search dataflow pruning.
    """
    disjuncts = condition.dnf()
    if not disjuncts:
        return True
    extra = binding_literals(bindings)
    return all(analyse_disjunct(list(d) + extra) is None for d in disjuncts)
