"""Structured diagnostics with stable ``VAxxx`` codes.

The code space is partitioned by the hundreds digit:

* ``VA1xx`` -- property / spec cross-reference **errors** (the spec cannot
  be verified as written; the verifier would raise or crash mid-search);
* ``VA2xx`` -- statically dead conditions (**warnings**: the spec is
  verifiable but contains services that can never fire);
* ``VA3xx`` -- task-graph reachability (**warnings**);
* ``VA4xx`` -- property hygiene (**warnings**: vacuous quantifiers,
  constant formulas, unused condition interpretations);
* ``VA5xx`` -- unused declarations and suspicious services (**warnings**).

Codes are part of the public contract: ``python -m repro lint --json``, the
422 submit-rejection body and the per-code server metrics all key on them,
so a code is never renumbered or reused once released.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Sequence

#: Severity levels, most severe first (the sort order of reports).
ERROR = "error"
WARNING = "warning"
INFO = "info"

_SEVERITY_RANK = {ERROR: 0, WARNING: 1, INFO: 2}

#: Stable code -> short kebab-case name.  Append-only.
CODE_NAMES: Dict[str, str] = {
    "VA101": "undefined-variable",
    "VA102": "unknown-task",
    "VA103": "unknown-relation",
    "VA104": "relation-arity-mismatch",
    "VA105": "unknown-service",
    "VA203": "unsatisfiable-precondition",
    "VA301": "unreachable-task",
    "VA302": "dead-service",
    "VA401": "unbound-property-variable",
    "VA402": "trivial-property",
    "VA403": "unused-condition",
    "VA501": "unused-variable",
    "VA502": "unused-relation",
    "VA503": "constant-only-service",
    "VA504": "write-only-variable",
}


@dataclass(frozen=True)
class Diagnostic:
    """One finding of the static analyzer.

    ``where`` is a human-readable object path inside the spec, e.g.
    ``"task 'Order' / service 'ship' pre-condition"`` or
    ``"property 'safety' / condition 'done'"``.
    """

    code: str
    severity: str
    message: str
    where: str = ""

    @property
    def name(self) -> str:
        """The stable kebab-case name of the code."""
        return CODE_NAMES.get(self.code, self.code.lower())

    @property
    def is_error(self) -> bool:
        return self.severity == ERROR

    def sort_key(self):
        return (_SEVERITY_RANK.get(self.severity, 99), self.code, self.where, self.message)

    def as_dict(self) -> Dict[str, Any]:
        """Canonical JSON form (the lint CLI output and the 422 body)."""
        return {
            "code": self.code,
            "name": self.name,
            "severity": self.severity,
            "message": self.message,
            "where": self.where,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Diagnostic":
        return cls(
            code=str(data.get("code", "")),
            severity=str(data.get("severity", WARNING)),
            message=str(data.get("message", "")),
            where=str(data.get("where", "")),
        )

    def render(self) -> str:
        """One-line human form (the lint CLI text output)."""
        location = f" [{self.where}]" if self.where else ""
        return f"{self.code} {self.severity:7s} {self.message}{location}"


def sort_diagnostics(diagnostics: Sequence[Diagnostic]) -> List[Diagnostic]:
    """Severity-ranked, deterministic ordering (errors first)."""
    return sorted(diagnostics, key=Diagnostic.sort_key)


class SpecRejectedError(ValueError):
    """A spec was rejected because static analysis found error-severity
    diagnostics.  Raised by the submit path; mapped to HTTP 422 with the
    diagnostics as the response body."""

    def __init__(self, diagnostics: Sequence[Diagnostic]):
        self.diagnostics: List[Diagnostic] = sort_diagnostics(
            [d for d in diagnostics if d.is_error]
        ) or sort_diagnostics(list(diagnostics))
        codes = ", ".join(
            sorted({d.code for d in self.diagnostics if d.is_error})
        )
        super().__init__(f"spec rejected by static analysis ({codes})")
