"""The event bus: :class:`EventManager`, its sinks, and :class:`EventBroker`.

``EventManager.fire`` is the single path every event in the server takes.
Sinks subscribe to the whole stream and each pick out what they care about:

* :class:`StoreSink` appends ``durable`` job-scoped events to the store's
  per-job event log -- the source of truth that polling, long-poll and SSE
  all read from, and the only delivery channel that crosses servers;
* :class:`MetricsSink` turns events into ``/metrics`` counter increments;
* :class:`LogSink` renders events as log lines on a stream.

Sinks are independent: one sink raising never stops the others (mirroring
``SearchControl.emit``, which must never let an observer kill a search).

:class:`EventBroker` is the in-process push half of delivery.  Long-poll
and SSE handlers subscribe to a job id and block on
:meth:`_Subscription.wait`; the store's post-commit update hook calls
:meth:`EventBroker.notify`.  Wakeups carry no payload -- waiters re-read
the durable log -- so a missed or spurious wakeup can delay delivery by at
most one fallback interval, never lose an event.  Events written by *other*
servers sharing the store never reach this broker at all; the bounded wait
timeout doubles as the cross-server re-poll cadence.
"""

from __future__ import annotations

import datetime as _datetime
import json
import sqlite3
import sys
import threading
from contextlib import contextmanager
from typing import Any, Callable, Dict, Iterator, List, Optional, TextIO

from repro.core.control import ProgressEvent
from repro.events.types import (
    INFO,
    LEVEL_ORDER,
    Event,
    JobCompleted,
    SearchEvent,
    SpanRecorded,
)

#: Anything callable with a single event, or an object with ``handle(event)``.
Sink = Any


class EventManager:
    """Process-wide fan-out of typed :class:`Event` objects to sinks."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._sinks: List[Sink] = []

    def add_sink(self, sink: Sink) -> Sink:
        with self._lock:
            self._sinks.append(sink)
        return sink

    def remove_sink(self, sink: Sink) -> None:
        with self._lock:
            if sink in self._sinks:
                self._sinks.remove(sink)

    def fire(self, event: Event) -> None:
        """Deliver *event* to every sink; a failing sink never blocks the rest.

        Called from worker threads, agent drain threads, the sweeper and
        request handlers -- sinks must be thread-safe (the built-in ones
        delegate to the already thread-safe store / metrics objects).
        """
        with self._lock:
            sinks = list(self._sinks)
        for sink in sinks:
            handle = getattr(sink, "handle", sink)
            try:
                handle(event)
            except Exception:
                pass

    def progress_sink(
        self, job_id: str, trace_id: Optional[str] = None
    ) -> Callable[[ProgressEvent], None]:
        """An ``EventSink`` for ``SearchControl`` that puts the search's
        :class:`ProgressEvent` stream onto this bus as :class:`SearchEvent`s.

        ``trace_id`` stamps each forwarded event for trace correlation when
        the job runs under a distributed trace."""

        def forward(event: ProgressEvent) -> None:
            self.fire(
                SearchEvent(
                    job_id=job_id,
                    data=dict(event.data),
                    kind=event.kind,
                    trace_id=trace_id,
                )
            )

        return forward


class StoreSink:
    """Appends durable job-scoped events to the store's per-job event log.

    ``lossy`` events (progress heartbeats) are written under the store's
    short fail-fast busy timeout and *dropped* on lock contention -- the
    emitting thread also services claim heartbeats and must not stall.
    Non-lossy durable events block on the default timeout.
    """

    def __init__(self, store: Any, lossy_busy_timeout_seconds: Optional[float] = None):
        self._store = store
        self._lossy_timeout = lossy_busy_timeout_seconds

    def handle(self, event: Event) -> None:
        if not event.durable or event.job_id is None:
            return
        payload: Dict[str, Any] = {"data": dict(event.data)}
        if event.trace_id is not None:
            payload["trace_id"] = event.trace_id
        try:
            self._store.append_event(
                event.job_id,
                event.log_kind(),
                payload,
                busy_timeout_seconds=self._lossy_timeout if event.lossy else None,
            )
        except sqlite3.OperationalError:
            if not event.lossy:
                raise


class TraceSink:
    """Persists finished trace spans into the store's ``spans`` table.

    Listens for :class:`SpanRecorded` events on the bus (everything else is
    ignored), so span persistence reuses the bus's fan-out, error isolation
    and metrics accounting instead of a private channel.  Spans are few per
    job (roughly one per hop and search phase) and ``INSERT OR REPLACE``
    makes replays idempotent, so the default (blocking) store timeout is
    fine here -- unlike the lossy progress-heartbeat path.
    """

    def __init__(self, store: Any):
        self._store = store

    def handle(self, event: Event) -> None:
        if not isinstance(event, SpanRecorded):
            return
        span = dict(event.data)
        if event.job_id is not None and span.get("job_id") is None:
            span["job_id"] = event.job_id
        self._store.append_span(span)


class MetricsSink:
    """Applies each event's counter increments to a ``ServerMetrics``."""

    def __init__(self, metrics: Any):
        self._metrics = metrics

    def handle(self, event: Event) -> None:
        self._metrics.increment("events_emitted")
        for counter, amount in event.metric_increments():
            if amount:
                self._metrics.increment(counter, amount)
                if event.tenant_id is not None:
                    # Tenant-attributed events bump a per-tenant shadow of
                    # the same counter (the "tenants" section of /metrics).
                    self._metrics.increment_tenant(
                        event.tenant_id, counter, amount
                    )
        if isinstance(event, JobCompleted) and "seconds" in event.data:
            self._metrics.job_latency.observe(float(event.data["seconds"]))


class LogSink:
    """Renders events as single log lines on a text stream (stderr default)."""

    def __init__(self, stream: Optional[TextIO] = None, min_level: str = INFO):
        if min_level not in LEVEL_ORDER:
            raise ValueError(f"unknown log level {min_level!r}")
        self._stream = stream if stream is not None else sys.stderr
        self._threshold = LEVEL_ORDER[min_level]
        self._lock = threading.Lock()

    def handle(self, event: Event) -> None:
        level = event.log_level()
        if LEVEL_ORDER.get(level, 0) < self._threshold:
            return
        stamp = _datetime.datetime.fromtimestamp(
            event.timestamp, tz=_datetime.timezone.utc
        ).strftime("%Y-%m-%dT%H:%M:%S.%f")[:-3]
        parts = [f"{stamp}Z", f"{level:<7}", event.name]
        if event.job_id is not None:
            parts.append(f"job={event.job_id}")
        if event.data:
            parts.append(json.dumps(event.data, sort_keys=True, default=str))
        line = " ".join(parts)
        with self._lock:
            self._stream.write(line + "\n")
            self._stream.flush()


class _BrokerEntry:
    """Per-job wakeup state; ``condition`` shares the broker's lock."""

    __slots__ = ("condition", "generation", "waiters")

    def __init__(self, condition: threading.Condition):
        self.condition = condition
        self.generation = 0
        self.waiters = 0


class _Subscription:
    """A handle for one waiter on one job id (see :meth:`EventBroker.subscription`)."""

    def __init__(self, lock: threading.Lock, entry: _BrokerEntry):
        self._lock = lock
        self._entry = entry
        self._seen = entry.generation

    def wait(self, timeout: float) -> bool:
        """Block until a notification newer than the last one seen, or *timeout*.

        Notifications that raced in *before* this call (but after the
        subscription -- or the previous ``wait`` -- was taken) are returned
        immediately: the generation counter makes the wakeup un-missable.
        Returns whether a new notification arrived.
        """
        with self._lock:
            if self._entry.generation == self._seen:
                self._entry.condition.wait(timeout)
            changed = self._entry.generation != self._seen
            self._seen = self._entry.generation
            return changed


class EventBroker:
    """In-process wakeup hub keyed by job id, for long-poll/SSE waiters."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._entries: Dict[str, _BrokerEntry] = {}

    def notify(self, job_id: str) -> None:
        """Wake every subscriber of *job_id* (no-op when nobody waits)."""
        with self._lock:
            entry = self._entries.get(job_id)
            if entry is not None:
                entry.generation += 1
                entry.condition.notify_all()

    @contextmanager
    def subscription(self, job_id: str) -> Iterator[_Subscription]:
        """Subscribe to *job_id* for the duration of the ``with`` block.

        Subscribe *before* reading the event cursor: any write that lands
        after the read then either bumped the generation already (the next
        ``wait`` returns at once) or will notify the condition.
        """
        with self._lock:
            entry = self._entries.get(job_id)
            if entry is None:
                entry = self._entries[job_id] = _BrokerEntry(
                    threading.Condition(self._lock)
                )
            entry.waiters += 1
            subscription = _Subscription(self._lock, entry)
        try:
            yield subscription
        finally:
            with self._lock:
                entry.waiters -= 1
                if entry.waiters == 0 and self._entries.get(job_id) is entry:
                    del self._entries[job_id]

    def waiter_count(self) -> int:
        """Total subscribers across all jobs (tests and diagnostics)."""
        with self._lock:
            return sum(entry.waiters for entry in self._entries.values())
