"""repro.events -- the typed event bus of the verification service.

One stream of typed :class:`~repro.events.types.Event` objects flows through
a process-wide :class:`~repro.events.manager.EventManager`; pluggable sinks
turn it into the durable per-job log, ``/metrics`` counters and log lines,
and an :class:`~repro.events.manager.EventBroker` converts store commits
into in-process wakeups for long-poll/SSE delivery.
"""

from repro.events.manager import (
    EventBroker,
    EventManager,
    LogSink,
    MetricsSink,
    StoreSink,
    TraceSink,
)
from repro.events.types import (
    DEBUG,
    ERROR,
    INFO,
    LEVEL_ORDER,
    WARNING,
    CacheServed,
    CancelRequested,
    Event,
    JobCancelled,
    JobCompleted,
    JobFailed,
    JobSubmitted,
    RecoveryCompleted,
    SearchEvent,
    SpanRecorded,
    QuotaExceeded,
    StaleJobsRequeued,
    SweepCompleted,
    SweeperLeaseMiss,
    TenantThrottled,
    VerificationStarted,
    WorkerCrashed,
    WorkerRecycled,
)

__all__ = [
    "DEBUG",
    "ERROR",
    "INFO",
    "LEVEL_ORDER",
    "WARNING",
    "CacheServed",
    "CancelRequested",
    "Event",
    "EventBroker",
    "EventManager",
    "JobCancelled",
    "JobCompleted",
    "JobFailed",
    "JobSubmitted",
    "LogSink",
    "MetricsSink",
    "QuotaExceeded",
    "RecoveryCompleted",
    "SearchEvent",
    "SpanRecorded",
    "StaleJobsRequeued",
    "StoreSink",
    "SweepCompleted",
    "SweeperLeaseMiss",
    "TenantThrottled",
    "TraceSink",
    "VerificationStarted",
    "WorkerCrashed",
    "WorkerRecycled",
]
