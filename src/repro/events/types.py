"""Typed events of the :mod:`repro.events` bus.

Every observable occurrence in the verification service -- a search's
progress heartbeat, a job completing, a worker process crashing, a sweep
expiring TTL'd rows -- is one :class:`Event` subclass.  The class carries
the *static* facts (name, log level, whether the event belongs in the
durable per-job log, which ``/metrics`` counters it bumps); the instance
carries the *dynamic* ones (``job_id``, ``data``, ``timestamp``).  Sinks
(:mod:`repro.events.manager`) dispatch on those class attributes, so adding
a new event type never requires touching a sink.

The design follows dbt's typed event manager (``eventmgr.py``/``types.py``):
one stream of typed events, fan-out to pluggable sinks, with the event
types -- not the emit sites -- owning their routing.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, ClassVar, Dict, List, Optional, Tuple

#: Log levels, ordered for min-level filtering in sinks.
DEBUG = "debug"
INFO = "info"
WARNING = "warning"
ERROR = "error"

LEVEL_ORDER = {DEBUG: 0, INFO: 1, WARNING: 2, ERROR: 3}


@dataclass(frozen=True)
class Event:
    """Base typed event.

    Class attributes (overridden per subclass):

    * ``name`` -- the stable event name (also the default durable-log kind);
    * ``level`` -- default log level (see :meth:`log_level`);
    * ``durable`` -- whether a :class:`~repro.events.manager.StoreSink`
      appends the event to the store's per-job event log (requires a
      ``job_id``: durable events are always job-scoped);
    * ``lossy`` -- durable events that may be *dropped* rather than block on
      a contended store write lock (periodic progress heartbeats: losing one
      beats starving the thread that also runs claim heartbeats);
    * ``counter`` -- the ``/metrics`` counter a
      :class:`~repro.events.manager.MetricsSink` bumps once per event
      (``None``: no counter; override :meth:`metric_increments` for
      multi-counter or non-unit increments).
    """

    job_id: Optional[str] = None
    data: Dict[str, Any] = field(default_factory=dict)
    timestamp: float = field(default_factory=time.time)
    #: Distributed-trace correlation (see :mod:`repro.obs`): set when the
    #: emitting code ran on behalf of a traced job, and written into the
    #: durable log payload so ``/events`` entries can be joined with the
    #: ``/trace`` span tree.
    trace_id: Optional[str] = None
    #: Multi-tenant attribution (see :mod:`repro.tenancy`): set when the
    #: emitting code ran on behalf of an authenticated tenant's job, so a
    #: metrics sink can keep per-tenant counters next to the global ones.
    tenant_id: Optional[str] = None

    name: ClassVar[str] = "event"
    level: ClassVar[str] = INFO
    durable: ClassVar[bool] = False
    lossy: ClassVar[bool] = False
    counter: ClassVar[Optional[str]] = None

    def log_kind(self) -> str:
        """The ``kind`` this event is appended to the durable log under."""
        return self.name

    def log_level(self) -> str:
        """The log level of this particular instance (class default)."""
        return type(self).level

    def metric_increments(self) -> List[Tuple[str, int]]:
        """``(counter, amount)`` pairs a metrics sink applies for this event."""
        if self.counter is None:
            return []
        return [(self.counter, 1)]


# ------------------------------------------------------------- search events


@dataclass(frozen=True)
class SearchEvent(Event):
    """One :class:`~repro.core.control.ProgressEvent` from a running search.

    ``kind`` is the progress-event kind (``phase`` / ``progress`` /
    ``stats`` / ``done``) and doubles as the durable-log kind, so the
    on-disk event log is byte-compatible with the pre-bus format.  Periodic
    ``progress`` heartbeats log at ``debug``; the structural events at
    ``info`` (mirroring :attr:`ProgressEvent.level`).
    """

    kind: str = "progress"

    name: ClassVar[str] = "search"
    durable: ClassVar[bool] = True
    lossy: ClassVar[bool] = True

    def log_kind(self) -> str:
        return self.kind

    def log_level(self) -> str:
        return DEBUG if self.kind == "progress" else INFO


@dataclass(frozen=True)
class CacheServed(Event):
    """A job completed straight from the result cache (no search ran).

    Durable under the ``done`` kind, so a job's event log always ends with
    the same terminal event whether the verdict was computed or replayed.
    """

    name: ClassVar[str] = "cache-hit"
    durable: ClassVar[bool] = True

    def log_kind(self) -> str:
        return "done"


# ---------------------------------------------------------------- job events


@dataclass(frozen=True)
class JobSubmitted(Event):
    name: ClassVar[str] = "job-submitted"
    level: ClassVar[str] = DEBUG
    counter: ClassVar[Optional[str]] = "jobs_submitted"


@dataclass(frozen=True)
class VerificationStarted(Event):
    """A claimed job entered the verifier (cache miss: a real search runs)."""

    name: ClassVar[str] = "verification-started"
    level: ClassVar[str] = DEBUG
    counter: ClassVar[Optional[str]] = "verifications_run"


@dataclass(frozen=True)
class JobCompleted(Event):
    """A job landed ``done``; ``data["seconds"]`` feeds the latency tracker."""

    name: ClassVar[str] = "job-completed"
    counter: ClassVar[Optional[str]] = "jobs_completed"


@dataclass(frozen=True)
class JobFailed(Event):
    name: ClassVar[str] = "job-failed"
    level: ClassVar[str] = ERROR
    counter: ClassVar[Optional[str]] = "jobs_failed"


@dataclass(frozen=True)
class JobCancelled(Event):
    """A running job landed terminal ``cancelled`` (partial stats kept)."""

    name: ClassVar[str] = "job-cancelled"
    counter: ClassVar[Optional[str]] = "jobs_cancelled"


@dataclass(frozen=True)
class CancelRequested(Event):
    """A ``DELETE /v1/jobs/<id>`` was freshly accepted."""

    name: ClassVar[str] = "cancel-requested"
    counter: ClassVar[Optional[str]] = "cancel_requests"


# ------------------------------------------------------------ tenancy events


@dataclass(frozen=True)
class TenantThrottled(Event):
    """A tenant's submit was rejected by its token-bucket rate limit.

    Not job-scoped (the job was never created); ``data`` carries the tenant
    id and the ``retry_after`` seconds the 429 response advertised.
    """

    name: ClassVar[str] = "tenant-throttled"
    level: ClassVar[str] = WARNING
    counter: ClassVar[Optional[str]] = "tenant_throttled"


@dataclass(frozen=True)
class QuotaExceeded(Event):
    """A tenant's submit was rejected by its in-flight (pending) quota.

    ``data`` carries the tenant id, the observed pending count and the
    configured limit at rejection time.
    """

    name: ClassVar[str] = "quota-exceeded"
    level: ClassVar[str] = WARNING
    counter: ClassVar[Optional[str]] = "quota_exceeded"


# ------------------------------------------------------------- worker events


@dataclass(frozen=True)
class WorkerCrashed(Event):
    """A worker process died mid-job.

    Durable under the ``worker-crash`` kind *when job-scoped* -- the agent
    attaches the job id only when it still owned the claim (a rescued job's
    log belongs to the new owner); the crash counter bumps either way.
    """

    name: ClassVar[str] = "worker-crash"
    level: ClassVar[str] = WARNING
    durable: ClassVar[bool] = True
    counter: ClassVar[Optional[str]] = "worker_crashes"


@dataclass(frozen=True)
class WorkerRecycled(Event):
    name: ClassVar[str] = "worker-recycled"
    level: ClassVar[str] = DEBUG
    counter: ClassVar[Optional[str]] = "worker_recycles"


# ------------------------------------------------- sweeper / recovery events


@dataclass(frozen=True)
class StaleJobsRequeued(Event):
    """The sweeper rescued ``data["count"]`` jobs from dead owners."""

    name: ClassVar[str] = "stale-jobs-requeued"
    level: ClassVar[str] = WARNING

    def metric_increments(self) -> List[Tuple[str, int]]:
        return [("stale_jobs_requeued", int(self.data.get("count", 1)))]


@dataclass(frozen=True)
class SweepCompleted(Event):
    """A TTL sweep deleted ``data["jobs"]`` jobs / ``data["results"]`` results."""

    name: ClassVar[str] = "sweep-completed"
    level: ClassVar[str] = DEBUG

    def metric_increments(self) -> List[Tuple[str, int]]:
        return [
            ("jobs_expired", int(self.data.get("jobs", 0))),
            ("results_expired", int(self.data.get("results", 0))),
        ]


@dataclass(frozen=True)
class SweeperLeaseMiss(Event):
    """A sweep round skipped because a peer server holds the sweeper lease."""

    name: ClassVar[str] = "sweeper-lease-miss"
    level: ClassVar[str] = DEBUG
    counter: ClassVar[Optional[str]] = "sweeper_lease_misses"


@dataclass(frozen=True)
class RecoveryCompleted(Event):
    """Startup recovery repaired the store (``data``: the recovery report)."""

    name: ClassVar[str] = "recovery-completed"


# -------------------------------------------------------------- trace events


@dataclass(frozen=True)
class SpanRecorded(Event):
    """A trace span finished (``data`` is its ``Span.as_dict()`` form).

    Not durable in the per-job *event* log -- spans have their own store
    table, written by :class:`~repro.events.manager.TraceSink`; the counter
    keeps ``/metrics`` aware of span volume.
    """

    name: ClassVar[str] = "span-recorded"
    level: ClassVar[str] = DEBUG
    counter: ClassVar[Optional[str]] = "spans_recorded"
