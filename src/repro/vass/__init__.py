"""Vector Addition Systems with States (VASS).

The theory behind VERIFAS reduces verification of HAS* specifications to
(repeated) state reachability in a VASS whose states are symbolic
representations of the artifact tuple and whose counters track how many
stored tuples share each representation.  This subpackage provides a plain,
general-purpose VASS implementation together with a reference Karp–Miller
coverability procedure.  The verifier's specialised search
(:mod:`repro.core.karp_miller`) operates directly on partial symbolic
instances but follows the same algorithmic skeleton; the generic
implementation here is used for documentation, for unit tests of the
acceleration/coverage machinery, and as a differential baseline.
"""

from repro.vass.vass import OMEGA, Transition, VASS, add_omega, leq_omega
from repro.vass.coverability import KarpMillerTree, coverability_set, is_coverable

__all__ = [
    "VASS",
    "Transition",
    "OMEGA",
    "add_omega",
    "leq_omega",
    "KarpMillerTree",
    "coverability_set",
    "is_coverable",
]
