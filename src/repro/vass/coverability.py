"""The classic Karp–Miller coverability construction for plain VASS.

This is the textbook algorithm (Algorithm 1 of the paper, specialised to an
explicit VASS): explore configurations, accelerate counters to ω whenever a
strictly dominated ancestor with the same state is found, and prune
configurations covered by an already-visited one.  The result over-approximates
the reachable configuration set but is exact for coverability queries.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.vass.vass import OMEGA, Transition, VASS, Vector, add_omega, leq_omega, vector_leq


@dataclass
class KMNode:
    """A node of the Karp–Miller tree."""

    state: str
    vector: Vector
    parent: Optional[int]
    node_id: int
    children: List[int] = field(default_factory=list)


class KarpMillerTree:
    """The Karp–Miller tree of a VASS (bounded by *max_nodes* as a safety net)."""

    def __init__(self, vass: VASS, max_nodes: int = 100_000):
        self.vass = vass
        self.nodes: List[KMNode] = []
        self._build(max_nodes)

    # -- construction ------------------------------------------------------------

    def _build(self, max_nodes: int) -> None:
        root = KMNode(self.vass.initial_state, self.vass.initial_vector, None, 0)
        self.nodes.append(root)
        work = [0]
        while work:
            node_id = work.pop()
            node = self.nodes[node_id]
            for target, vector, _transition in self.vass.successors(node.state, node.vector):
                accelerated = self._accelerate(node_id, target, vector)
                if self._covered_by_existing(target, accelerated):
                    continue
                child = KMNode(target, accelerated, node_id, len(self.nodes))
                self.nodes.append(child)
                node.children.append(child.node_id)
                work.append(child.node_id)
                if len(self.nodes) >= max_nodes:
                    raise RuntimeError("Karp-Miller tree exceeded the node budget")

    def _ancestors(self, node_id: int):
        current = self.nodes[node_id]
        while current is not None:
            yield current
            current = self.nodes[current.parent] if current.parent is not None else None

    def _accelerate(self, parent_id: int, state: str, vector: Vector) -> Vector:
        accelerated = list(vector)
        for ancestor in self._ancestors(parent_id):
            if ancestor.state != state:
                continue
            if vector_leq(ancestor.vector, tuple(accelerated)) and ancestor.vector != tuple(accelerated):
                for index in range(len(accelerated)):
                    if not leq_omega(accelerated[index], ancestor.vector[index]):
                        accelerated[index] = OMEGA
        return tuple(accelerated)

    def _covered_by_existing(self, state: str, vector: Vector) -> bool:
        return any(
            node.state == state and vector_leq(vector, node.vector) for node in self.nodes
        )

    # -- queries ----------------------------------------------------------------

    def configurations(self) -> List[Tuple[str, Vector]]:
        return [(node.state, node.vector) for node in self.nodes]


def coverability_set(vass: VASS, max_nodes: int = 100_000) -> List[Tuple[str, Vector]]:
    """A coverability set of the VASS (the configurations of its Karp–Miller tree)."""
    return KarpMillerTree(vass, max_nodes).configurations()


def is_coverable(vass: VASS, state: str, vector: Sequence[int], max_nodes: int = 100_000) -> bool:
    """Whether some reachable configuration covers ``(state, vector)``."""
    target = tuple(vector)
    for covered_state, covered_vector in coverability_set(vass, max_nodes):
        if covered_state == state and vector_leq(target, covered_vector):
            return True
    return False
