"""A plain Vector Addition System with States (VASS).

A VASS is a finite automaton whose transitions additionally add an integer
vector to a tuple of non-negative counters; a transition is enabled only when
the resulting counters remain non-negative.  Counters may take the value ω
("arbitrarily large") inside the Karp–Miller construction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple


class _Omega:
    """The ordinal ω: larger than every natural number, absorbing under ±."""

    _instance: Optional["_Omega"] = None

    def __new__(cls) -> "_Omega":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "ω"


#: Singleton ω value used in accelerated counter vectors.
OMEGA = _Omega()

Counter = object  # int or OMEGA
Vector = Tuple[Counter, ...]


def leq_omega(left: Counter, right: Counter) -> bool:
    """Comparison ``left <= right`` extended to ω."""
    if right is OMEGA:
        return True
    if left is OMEGA:
        return False
    return left <= right


def add_omega(value: Counter, delta: int) -> Counter:
    """Addition extended to ω (ω ± n = ω)."""
    if value is OMEGA:
        return OMEGA
    return value + delta


def vector_leq(left: Vector, right: Vector) -> bool:
    """Pointwise comparison of counter vectors."""
    return all(leq_omega(l, r) for l, r in zip(left, right))


@dataclass(frozen=True)
class Transition:
    """A VASS transition: move from *source* to *target*, adding *delta* to the counters."""

    source: str
    delta: Tuple[int, ...]
    target: str


class VASS:
    """A Vector Addition System with States."""

    def __init__(
        self,
        states: Iterable[str],
        dimension: int,
        transitions: Iterable[Transition],
        initial_state: str,
        initial_vector: Sequence[int],
    ):
        self.states = tuple(states)
        self.dimension = dimension
        self.transitions = tuple(transitions)
        self.initial_state = initial_state
        self.initial_vector: Vector = tuple(initial_vector)
        if initial_state not in self.states:
            raise ValueError(f"initial state {initial_state!r} is not a state")
        if len(self.initial_vector) != dimension:
            raise ValueError("initial vector has the wrong dimension")
        for transition in self.transitions:
            if len(transition.delta) != dimension:
                raise ValueError(f"transition {transition} has the wrong dimension")
            if transition.source not in self.states or transition.target not in self.states:
                raise ValueError(f"transition {transition} refers to unknown states")
        self._outgoing: Dict[str, List[Transition]] = {s: [] for s in self.states}
        for transition in self.transitions:
            self._outgoing[transition.source].append(transition)

    def outgoing(self, state: str) -> Tuple[Transition, ...]:
        return tuple(self._outgoing[state])

    def fire(self, state: str, vector: Vector, transition: Transition) -> Optional[Tuple[str, Vector]]:
        """Apply *transition* if enabled; return the successor configuration or ``None``."""
        if transition.source != state:
            return None
        new_vector = tuple(add_omega(v, d) for v, d in zip(vector, transition.delta))
        for value in new_vector:
            if value is not OMEGA and value < 0:
                return None
        return transition.target, new_vector

    def successors(self, state: str, vector: Vector) -> List[Tuple[str, Vector, Transition]]:
        """All enabled successor configurations of ``(state, vector)``."""
        result = []
        for transition in self._outgoing[state]:
            fired = self.fire(state, vector, transition)
            if fired is not None:
                result.append((fired[0], fired[1], transition))
        return result
