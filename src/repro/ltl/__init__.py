"""Linear-time temporal logic (LTL) and LTL-FO.

The verifier needs three things from this subpackage:

* an LTL abstract syntax (:mod:`repro.ltl.syntax`) plus a small parser
  (:mod:`repro.ltl.parser`),
* the translation from an LTL formula to a Büchi automaton via the classic
  Gerth--Peled--Vardi--Wolper tableau construction (:mod:`repro.ltl.buchi`),
* LTL-FO properties: an LTL skeleton whose propositions are interpreted
  either as quantifier-free FO conditions over a task's variables (plus
  universally quantified global variables) or as observable service names
  (:mod:`repro.ltl.ltlfo`).
"""

from repro.ltl.syntax import (
    And as LAnd,
    Finally,
    Formula,
    Globally,
    Implies,
    LFalse,
    LTrue,
    Next,
    Not as LNot,
    Or as LOr,
    Prop,
    Release,
    Until,
    F,
    G,
    U,
    X,
)
from repro.ltl.parser import parse_ltl
from repro.ltl.buchi import BuchiAutomaton, ltl_to_buchi
from repro.ltl.evaluate import evaluate_finite_trace, evaluate_lasso
from repro.ltl.ltlfo import GlobalVariable, LTLFOProperty

__all__ = [
    "Formula",
    "Prop",
    "LTrue",
    "LFalse",
    "LAnd",
    "LOr",
    "LNot",
    "Next",
    "Until",
    "Release",
    "Globally",
    "Finally",
    "Implies",
    "G",
    "F",
    "X",
    "U",
    "parse_ltl",
    "BuchiAutomaton",
    "ltl_to_buchi",
    "evaluate_finite_trace",
    "evaluate_lasso",
    "LTLFOProperty",
    "GlobalVariable",
]
