"""A small recursive-descent parser for LTL formulas.

Grammar (operators listed from lowest to highest precedence)::

    formula   := until ( ('->' | '<->') until )*
    until     := or ( ('U' | 'R') or )*        (right associative)
    or        := and ( '|' and )*
    and       := unary ( '&' unary )*
    unary     := '!' unary | 'X' unary | 'G' unary | 'F' unary | atom
    atom      := 'true' | 'false' | identifier | '(' formula ')'

Identifiers may contain letters, digits, underscores and dots, so service
proposition names such as ``open_ShipItem`` parse directly.
"""

from __future__ import annotations

import re
from typing import List, Optional, Tuple

from repro.ltl.syntax import (
    And,
    Finally,
    Formula,
    Globally,
    Implies,
    LFalse,
    LTrue,
    Next,
    Not,
    Or,
    Prop,
    Release,
    Until,
)


class LTLParseError(ValueError):
    """Raised on malformed LTL input."""


_TOKEN_RE = re.compile(
    r"\s*(?:(?P<arrow><->|->)|(?P<op>[!&|()])|(?P<word>[A-Za-z_][A-Za-z0-9_.]*))"
)

_RESERVED = {"U", "R", "X", "G", "F", "true", "false"}


def _tokenize(text: str) -> List[str]:
    tokens: List[str] = []
    position = 0
    while position < len(text):
        match = _TOKEN_RE.match(text, position)
        if not match or match.end() == position:
            remainder = text[position:].strip()
            if not remainder:
                break
            raise LTLParseError(f"unexpected input at {remainder[:20]!r}")
        tokens.append(match.group("arrow") or match.group("op") or match.group("word"))
        position = match.end()
    return tokens


class _Parser:
    def __init__(self, tokens: List[str]):
        self._tokens = tokens
        self._position = 0

    def peek(self) -> Optional[str]:
        if self._position < len(self._tokens):
            return self._tokens[self._position]
        return None

    def next(self) -> str:
        token = self.peek()
        if token is None:
            raise LTLParseError("unexpected end of formula")
        self._position += 1
        return token

    def expect(self, token: str) -> None:
        actual = self.next()
        if actual != token:
            raise LTLParseError(f"expected {token!r}, found {actual!r}")

    # Precedence climbing -------------------------------------------------------

    def parse_formula(self) -> Formula:
        left = self.parse_until()
        while self.peek() in ("->", "<->"):
            operator = self.next()
            right = self.parse_until()
            if operator == "->":
                left = Implies(left, right)
            else:
                left = And(Implies(left, right), Implies(right, left))
        return left

    def parse_until(self) -> Formula:
        left = self.parse_or()
        if self.peek() in ("U", "R"):
            operator = self.next()
            right = self.parse_until()  # right associative
            return Until(left, right) if operator == "U" else Release(left, right)
        return left

    def parse_or(self) -> Formula:
        left = self.parse_and()
        while self.peek() == "|":
            self.next()
            left = Or(left, self.parse_and())
        return left

    def parse_and(self) -> Formula:
        left = self.parse_unary()
        while self.peek() == "&":
            self.next()
            left = And(left, self.parse_unary())
        return left

    def parse_unary(self) -> Formula:
        token = self.peek()
        if token == "!":
            self.next()
            return Not(self.parse_unary())
        if token == "X":
            self.next()
            return Next(self.parse_unary())
        if token == "G":
            self.next()
            return Globally(self.parse_unary())
        if token == "F":
            self.next()
            return Finally(self.parse_unary())
        return self.parse_atom()

    def parse_atom(self) -> Formula:
        token = self.next()
        if token == "(":
            inner = self.parse_formula()
            self.expect(")")
            return inner
        if token == "true":
            return LTrue()
        if token == "false":
            return LFalse()
        if token in _RESERVED or not re.fullmatch(r"[A-Za-z_][A-Za-z0-9_.]*", token):
            raise LTLParseError(f"unexpected token {token!r}")
        return Prop(token)


def parse_ltl(text: str) -> Formula:
    """Parse an LTL formula from its textual representation.

    >>> parse_ltl("G (p -> F q)")
    Globally(operand=Implies(left=Prop(name='p'), right=Finally(operand=Prop(name='q'))))
    """
    parser = _Parser(_tokenize(text))
    formula = parser.parse_formula()
    if parser.peek() is not None:
        raise LTLParseError(f"trailing input starting at {parser.peek()!r}")
    return formula
