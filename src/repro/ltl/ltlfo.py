"""LTL-FO properties of a task (Definition 29).

An LTL-FO property ``∀ȳ φ_f`` of a task ``T`` consists of

* an LTL formula ``φ`` over propositions ``P ∪ Σ^obs_T``,
* an interpretation ``f`` of the propositions in ``P`` as quantifier-free FO
  conditions over ``x̄_T ∪ ȳ``, and
* a tuple ``ȳ`` of *global variables*, universally quantified over the whole
  property, which connect the task's state at different moments of the run
  (for example the item id in the paper's running-example property (†)).

Propositions of the LTL skeleton whose names are *not* interpreted by ``f``
are treated as service propositions: they hold at a snapshot exactly when the
snapshot was produced by the service of that name.  The verifier checks that
every such name is observable in local runs of the task.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Mapping, Optional, Sequence, Set, Tuple

from repro.has.conditions import Condition
from repro.has.types import IdType, VALUE, VarType
from repro.ltl.syntax import Formula


@dataclass(frozen=True)
class GlobalVariable:
    """A universally quantified global variable of an LTL-FO property."""

    name: str
    type: VarType = VALUE

    @property
    def is_id(self) -> bool:
        return isinstance(self.type, IdType)


class LTLFOProperty:
    """An LTL-FO property ``∀ȳ φ_f`` of a single task."""

    def __init__(
        self,
        task: str,
        formula: Formula,
        conditions: Mapping[str, Condition] = (),
        global_variables: Sequence[GlobalVariable] = (),
        name: Optional[str] = None,
    ):
        self.task = task
        self.formula = formula
        self.conditions: Dict[str, Condition] = dict(conditions) if conditions else {}
        self.global_variables: Tuple[GlobalVariable, ...] = tuple(global_variables)
        self.name = name or str(formula)
        duplicate = {v.name for v in self.global_variables}
        if len(duplicate) != len(self.global_variables):
            raise ValueError("duplicate global variable names in LTL-FO property")

    # -- structural queries ---------------------------------------------------

    @property
    def condition_propositions(self) -> Set[str]:
        """Propositions interpreted as FO conditions (the set P)."""
        return set(self.conditions)

    @property
    def service_propositions(self) -> Set[str]:
        """Propositions interpreted as observable service occurrences."""
        return self.formula.propositions() - set(self.conditions)

    @property
    def global_variable_names(self) -> Tuple[str, ...]:
        return tuple(v.name for v in self.global_variables)

    def condition_for(self, proposition: str) -> Condition:
        return self.conditions[proposition]

    def validate_against(self, task_variables: Iterable[str], observable_services: Iterable[str]) -> None:
        """Check the property only refers to the task's variables and observable services.

        Raises ``ValueError`` when a condition mentions an unknown variable or
        a service proposition does not name an observable service.
        """
        allowed = set(task_variables) | set(self.global_variable_names)
        for proposition, condition in self.conditions.items():
            unknown = condition.variables() - allowed
            if unknown:
                raise ValueError(
                    f"condition for proposition {proposition!r} mentions unknown variables "
                    f"{sorted(unknown)}"
                )
        services = set(observable_services)
        unknown_services = self.service_propositions - services
        if unknown_services:
            raise ValueError(
                f"propositions {sorted(unknown_services)} are neither interpreted conditions "
                f"nor observable services of task {self.task!r}"
            )

    def __eq__(self, other: object) -> bool:
        """Structural equality (used by spec round-trips and the result cache)."""
        if not isinstance(other, LTLFOProperty):
            return NotImplemented
        return (
            self.task == other.task
            and self.formula == other.formula
            and self.conditions == other.conditions
            and self.global_variables == other.global_variables
            and self.name == other.name
        )

    __hash__ = object.__hash__

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"LTLFOProperty(task={self.task!r}, formula={self.formula})"
