"""Direct evaluation of LTL formulas on explicit traces.

These evaluators are *reference implementations* used by the test-suite to
cross-check the Büchi construction and the verifier:

* :func:`evaluate_lasso` evaluates a formula on an ultimately periodic word
  ``prefix · cycle^ω`` by computing the satisfaction of every subformula at
  every position of the lasso (least / greatest fixpoints for U / R).
* :func:`evaluate_finite_trace` evaluates a formula on a finite trace under
  the *stutter-extension* semantics used by the verifier for closed local
  runs: the final letter is conceptually repeated forever.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Set, Tuple

from repro.ltl.syntax import (
    And,
    Finally,
    Formula,
    Globally,
    Implies,
    LFalse,
    LTrue,
    Next,
    Not,
    Or,
    Prop,
    Release,
    Until,
)

Assignment = Set[str]


def evaluate_lasso(formula: Formula, prefix: Sequence[Assignment], cycle: Sequence[Assignment]) -> bool:
    """Truth of *formula* on the infinite word ``prefix · cycle^ω`` (at position 0)."""
    if not cycle:
        raise ValueError("the periodic part of a lasso must be non-empty")
    word: List[Assignment] = [set(a) for a in prefix] + [set(a) for a in cycle]
    n = len(word)
    loop_start = len(prefix)

    def successor(position: int) -> int:
        return position + 1 if position + 1 < n else loop_start

    return _evaluate(formula.nnf(), word, successor)[0]


def evaluate_finite_trace(formula: Formula, trace: Sequence[Assignment]) -> bool:
    """Truth of *formula* on a finite trace under stutter-extension semantics.

    The trace must be non-empty; its last letter is repeated forever, which is
    exactly how the verifier treats local runs that end with the task's
    closing service (the ``__terminated__`` stutter step).
    """
    if not trace:
        raise ValueError("cannot evaluate an LTL formula on an empty trace")
    # A stuttered finite trace is the lasso whose cycle is the last letter.
    return evaluate_lasso(formula, list(trace[:-1]), [trace[-1]])


def _evaluate(nnf: Formula, word: List[Assignment], successor) -> List[bool]:
    """Satisfaction vector (one bool per position) for an NNF formula."""
    n = len(word)
    if isinstance(nnf, LTrue):
        return [True] * n
    if isinstance(nnf, LFalse):
        return [False] * n
    if isinstance(nnf, Prop):
        return [nnf.name in word[i] for i in range(n)]
    if isinstance(nnf, Not):
        if not isinstance(nnf.operand, Prop):
            raise ValueError(f"formula not in NNF: {nnf}")
        return [nnf.operand.name not in word[i] for i in range(n)]
    if isinstance(nnf, And):
        left = _evaluate(nnf.left, word, successor)
        right = _evaluate(nnf.right, word, successor)
        return [l and r for l, r in zip(left, right)]
    if isinstance(nnf, Or):
        left = _evaluate(nnf.left, word, successor)
        right = _evaluate(nnf.right, word, successor)
        return [l or r for l, r in zip(left, right)]
    if isinstance(nnf, Next):
        operand = _evaluate(nnf.operand, word, successor)
        return [operand[successor(i)] for i in range(n)]
    if isinstance(nnf, Until):
        left = _evaluate(nnf.left, word, successor)
        right = _evaluate(nnf.right, word, successor)
        # Least fixpoint: start from the right operand and add positions where
        # the left operand holds and the successor already satisfies the until.
        sat = list(right)
        changed = True
        while changed:
            changed = False
            for i in range(n):
                if not sat[i] and left[i] and sat[successor(i)]:
                    sat[i] = True
                    changed = True
        return sat
    if isinstance(nnf, Release):
        left = _evaluate(nnf.left, word, successor)
        right = _evaluate(nnf.right, word, successor)
        # Greatest fixpoint: start from the right operand and remove positions
        # where the release obligation is not discharged.
        sat = list(right)
        changed = True
        while changed:
            changed = False
            for i in range(n):
                if sat[i] and not (right[i] and (left[i] or sat[successor(i)])):
                    sat[i] = False
                    changed = True
        return sat
    # G / F / Implies should have been rewritten by nnf(); handle defensively.
    if isinstance(nnf, (Globally, Finally, Implies)):  # pragma: no cover - defensive
        return _evaluate(nnf.nnf(), word, successor)
    raise TypeError(f"unsupported formula {nnf!r}")
