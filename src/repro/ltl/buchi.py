"""LTL to Büchi automaton translation (Gerth–Peled–Vardi–Wolper, CAV'95).

The construction first builds a *generalized* Büchi automaton from the NNF of
the formula using the classic tableau expansion, then degeneralizes it with
the usual counter construction.  Transition labels are pairs of proposition
sets ``(must_hold, must_not_hold)``; any truth assignment that contains every
proposition of the first set and none of the second satisfies the label.

The automata produced here drive the product construction of the verifier
(Section 3.2 of the paper): the verifier explores symbolic runs of the HAS*
specification synchronised with the Büchi automaton of the *negated* LTL-FO
property, and searches for (repeatedly) reachable accepting states.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from repro.ltl.syntax import (
    And,
    Formula,
    LFalse,
    LTrue,
    Next,
    Not,
    Or,
    Prop,
    Release,
    Until,
)


@dataclass(frozen=True)
class TransitionLabel:
    """A conjunction of literals over propositions.

    A truth assignment ``A`` (a set of propositions that hold) satisfies the
    label iff ``required ⊆ A`` and ``forbidden ∩ A = ∅``.
    """

    required: FrozenSet[str] = frozenset()
    forbidden: FrozenSet[str] = frozenset()

    def satisfied_by(self, assignment: Set[str]) -> bool:
        return self.required <= assignment and not (self.forbidden & assignment)

    def is_consistent(self) -> bool:
        return not (self.required & self.forbidden)

    def __str__(self) -> str:
        parts = [p for p in sorted(self.required)] + [f"!{p}" for p in sorted(self.forbidden)]
        return " & ".join(parts) if parts else "true"


@dataclass(frozen=True)
class BuchiTransition:
    source: int
    label: TransitionLabel
    target: int


class BuchiAutomaton:
    """A (non-generalized) Büchi automaton over propositional labels."""

    def __init__(
        self,
        states: Sequence[int],
        initial_states: Iterable[int],
        transitions: Sequence[BuchiTransition],
        accepting_states: Iterable[int],
        propositions: Iterable[str] = (),
    ):
        self.states: Tuple[int, ...] = tuple(states)
        self.initial_states: FrozenSet[int] = frozenset(initial_states)
        self.transitions: Tuple[BuchiTransition, ...] = tuple(transitions)
        self.accepting_states: FrozenSet[int] = frozenset(accepting_states)
        self.propositions: FrozenSet[str] = frozenset(propositions)
        self._outgoing: Dict[int, List[BuchiTransition]] = {s: [] for s in self.states}
        for transition in self.transitions:
            self._outgoing[transition.source].append(transition)

    def outgoing(self, state: int) -> Tuple[BuchiTransition, ...]:
        return tuple(self._outgoing.get(state, ()))

    def successors(self, state: int, assignment: Set[str]) -> Set[int]:
        """Büchi states reachable from *state* by reading *assignment*."""
        return {
            t.target for t in self._outgoing.get(state, ()) if t.label.satisfied_by(assignment)
        }

    # -- language queries (used by tests) -----------------------------------------

    def accepts_lasso(self, prefix: Sequence[Set[str]], cycle: Sequence[Set[str]]) -> bool:
        """Whether the automaton accepts the ultimately periodic word prefix·cycleʷ.

        The check runs the automaton over the prefix, then searches for a
        cycle over the periodic part that visits an accepting state, using the
        product of automaton states with positions in the periodic word.
        """
        if not cycle:
            raise ValueError("the periodic part of a lasso must be non-empty")
        current = set(self.initial_states)
        for assignment in prefix:
            current = {q for state in current for q in self.successors(state, assignment)}
            if not current:
                return False
        # Product nodes: (state, index into cycle).  An accepting run exists
        # iff some reachable product node lies on a cycle through an accepting
        # automaton state.
        period = len(cycle)
        edges: Dict[Tuple[int, int], Set[Tuple[int, int]]] = {}
        reachable: Set[Tuple[int, int]] = set()
        frontier = [(q, 0) for q in current]
        while frontier:
            node = frontier.pop()
            if node in reachable:
                continue
            reachable.add(node)
            state, index = node
            next_nodes = {
                (q, (index + 1) % period)
                for q in self.successors(state, set(cycle[index]))
            }
            edges[node] = next_nodes
            frontier.extend(next_nodes - reachable)
        # Search for a reachable cycle through an accepting state: for each
        # accepting product node, check whether it can reach itself.
        for start in [n for n in reachable if n[0] in self.accepting_states]:
            seen: Set[Tuple[int, int]] = set()
            stack = list(edges.get(start, ()))
            while stack:
                node = stack.pop()
                if node == start:
                    return True
                if node in seen:
                    continue
                seen.add(node)
                stack.extend(edges.get(node, ()))
        return False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"BuchiAutomaton(states={len(self.states)}, transitions={len(self.transitions)}, "
            f"accepting={sorted(self.accepting_states)})"
        )


# ---------------------------------------------------------------------------
# GPVW tableau construction
# ---------------------------------------------------------------------------


@dataclass
class _Node:
    node_id: int
    incoming: Set[int] = field(default_factory=set)
    new: Set[Formula] = field(default_factory=set)
    old: Set[Formula] = field(default_factory=set)
    next: Set[Formula] = field(default_factory=set)


_INIT = 0  # virtual initial node id


def _is_literal(formula: Formula) -> bool:
    if isinstance(formula, (Prop, LTrue, LFalse)):
        return True
    return isinstance(formula, Not) and isinstance(formula.operand, Prop)


def _negate_literal(formula: Formula) -> Formula:
    if isinstance(formula, Not):
        return formula.operand
    if isinstance(formula, LTrue):
        return LFalse()
    if isinstance(formula, LFalse):
        return LTrue()
    return Not(formula)


def _expand(node: _Node, nodes: List[_Node], counter: itertools.count) -> None:
    """The recursive `expand` procedure of the GPVW construction."""
    if not node.new:
        for existing in nodes:
            if existing.old == node.old and existing.next == node.next:
                existing.incoming |= node.incoming
                return
        nodes.append(node)
        successor = _Node(
            node_id=next(counter),
            incoming={node.node_id},
            new=set(node.next),
        )
        _expand(successor, nodes, counter)
        return

    formula = next(iter(node.new))
    node.new.discard(formula)

    if isinstance(formula, LFalse):
        return  # contradiction: drop the node
    if _is_literal(formula):
        if _negate_literal(formula) in node.old:
            return  # contradiction
        node.old.add(formula)
        _expand(node, nodes, counter)
        return
    if isinstance(formula, And):
        node.new |= {formula.left, formula.right} - node.old
        node.old.add(formula)
        _expand(node, nodes, counter)
        return
    if isinstance(formula, Next):
        node.old.add(formula)
        node.next.add(formula.operand)
        _expand(node, nodes, counter)
        return
    if isinstance(formula, (Or, Until, Release)):
        left_new, left_next, right_new = _split(formula)
        first = _Node(
            node_id=next(counter),
            incoming=set(node.incoming),
            new=node.new | (left_new - node.old),
            old=node.old | {formula},
            next=node.next | left_next,
        )
        second = _Node(
            node_id=next(counter),
            incoming=set(node.incoming),
            new=node.new | (right_new - node.old),
            old=node.old | {formula},
            next=set(node.next),
        )
        _expand(first, nodes, counter)
        _expand(second, nodes, counter)
        return
    raise TypeError(f"formula not in NNF or unsupported: {formula}")


def _split(formula: Formula) -> Tuple[Set[Formula], Set[Formula], Set[Formula]]:
    """The `new1 / next1 / new2` decomposition of the GPVW construction."""
    if isinstance(formula, Until):
        return {formula.left}, {formula}, {formula.right}
    if isinstance(formula, Release):
        return {formula.right}, {formula}, {formula.left, formula.right}
    if isinstance(formula, Or):
        return {formula.left}, set(), {formula.right}
    raise TypeError(f"unexpected formula {formula}")


def _build_generalized(formula: Formula):
    """Run the tableau construction; returns (nodes, until_subformulas)."""
    counter = itertools.count(1)
    nodes: List[_Node] = []
    root = _Node(node_id=next(counter), incoming={_INIT}, new={formula})
    _expand(root, nodes, counter)
    untils = [f for f in formula.subformulas() if isinstance(f, Until)]
    return nodes, untils


def ltl_to_buchi(formula: Formula, extra_propositions: Iterable[str] = ()) -> BuchiAutomaton:
    """Translate an LTL formula into an equivalent Büchi automaton.

    The input is converted to NNF first, so any formula (including ``G``,
    ``F``, ``->``) is accepted.  The resulting automaton accepts exactly the
    infinite words over truth assignments that satisfy the formula.

    The GPVW tableau produces a *state-labelled generalized* Büchi automaton;
    we convert it to a transition-labelled one by adding a fresh initial state
    (so that the first letter is checked against the label of the first
    tableau node) and degeneralize with the standard counter construction.
    """
    nnf = formula.nnf()
    nodes, untils = _build_generalized(nnf)

    # Generalized acceptance: one set of nodes per until subformula.
    acceptance_sets: List[Set[int]] = []
    for until in untils:
        acceptance_sets.append(
            {n.node_id for n in nodes if until.right in n.old or until not in n.old}
        )
    if not acceptance_sets:
        acceptance_sets.append({n.node_id for n in nodes})
    n_sets = len(acceptance_sets)

    def label_of(node: _Node) -> Optional[TransitionLabel]:
        required = {f.name for f in node.old if isinstance(f, Prop)}
        forbidden = {
            f.operand.name
            for f in node.old
            if isinstance(f, Not) and isinstance(f.operand, Prop)
        }
        if required & forbidden:
            return None
        return TransitionLabel(frozenset(required), frozenset(forbidden))

    labels: Dict[int, TransitionLabel] = {}
    for node in nodes:
        label = label_of(node)
        if label is not None:
            labels[node.node_id] = label
    usable_nodes = [n for n in nodes if n.node_id in labels]

    propositions = set(nnf.propositions()) | set(extra_propositions)

    # Degeneralized states are (node_id, level) plus the fresh initial state.
    state_index: Dict[Tuple[int, int], int] = {}

    def state_of(node_id: int, level: int) -> int:
        key = (node_id, level)
        if key not in state_index:
            state_index[key] = len(state_index) + 1  # 0 is reserved for init
        return state_index[key]

    INIT_STATE = 0

    def next_level(level: int, source_node: Optional[int]) -> int:
        # Counter construction with source-based increments (Baier & Katoen):
        # the counter advances from i to i+1 when a transition *leaves* a node
        # of F_i at level i.  A run then visits level 0 on a node of F_0
        # infinitely often iff the counter cycles infinitely often iff every
        # F_i is visited infinitely often.
        if source_node is not None and source_node in acceptance_sets[level]:
            return (level + 1) % n_sets
        return level

    transitions: List[BuchiTransition] = []
    for node in usable_nodes:
        label = labels[node.node_id]
        for source_id in node.incoming:
            if source_id == _INIT:
                # The fresh initial state has level 0 and belongs to no F_i.
                transitions.append(
                    BuchiTransition(INIT_STATE, label, state_of(node.node_id, 0))
                )
            else:
                if source_id not in labels:
                    continue
                for level in range(n_sets):
                    source_state = state_of(source_id, level)
                    target_state = state_of(node.node_id, next_level(level, source_id))
                    transitions.append(BuchiTransition(source_state, label, target_state))

    # Accepting states: level 0 states whose node belongs to F_0.
    accepting = {
        state
        for (node_id, level), state in state_index.items()
        if level == 0 and node_id in acceptance_sets[0]
    }

    states = [INIT_STATE] + sorted(set(state_index.values()))
    return BuchiAutomaton(states, [INIT_STATE], transitions, accepting, propositions)
