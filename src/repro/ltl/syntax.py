"""LTL abstract syntax.

Formulas are built from propositions with the boolean connectives and the
temporal operators X (next), U (until), R (release), G (always) and
F (eventually).  Formulas are immutable and hashable; :meth:`Formula.nnf`
pushes negations to the propositions and rewrites G/F/implication into the
core operators used by the Büchi construction (X, U, R).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterable, List, Set


class Formula:
    """Base class of LTL formulas."""

    def __and__(self, other: "Formula") -> "Formula":
        return And(self, other)

    def __or__(self, other: "Formula") -> "Formula":
        return Or(self, other)

    def __invert__(self) -> "Formula":
        return Not(self)

    def __rshift__(self, other: "Formula") -> "Formula":
        """``p >> q`` is implication ``p -> q``."""
        return Implies(self, other)

    # -- queries -------------------------------------------------------------

    def propositions(self) -> Set[str]:
        """Names of all propositions occurring in the formula."""
        raise NotImplementedError

    def nnf(self, negate: bool = False) -> "Formula":
        """Negation normal form over the core operators (literals, ∧, ∨, X, U, R)."""
        raise NotImplementedError

    def negated(self) -> "Formula":
        """The NNF of the negation of this formula."""
        return self.nnf(negate=True)

    def subformulas(self) -> List["Formula"]:
        """All subformulas (including the formula itself), without duplicates."""
        seen: List[Formula] = []

        def walk(f: Formula) -> None:
            if f not in seen:
                seen.append(f)
                for child in f._children():
                    walk(child)

        walk(self)
        return seen

    def _children(self) -> Iterable["Formula"]:
        return ()

    def __str__(self) -> str:  # pragma: no cover - subclasses override
        raise NotImplementedError


@dataclass(frozen=True)
class LTrue(Formula):
    """The formula ``true``."""

    def propositions(self) -> Set[str]:
        return set()

    def nnf(self, negate: bool = False) -> Formula:
        return LFalse() if negate else self

    def __str__(self) -> str:
        return "true"


@dataclass(frozen=True)
class LFalse(Formula):
    """The formula ``false``."""

    def propositions(self) -> Set[str]:
        return set()

    def nnf(self, negate: bool = False) -> Formula:
        return LTrue() if negate else self

    def __str__(self) -> str:
        return "false"


@dataclass(frozen=True)
class Prop(Formula):
    """An atomic proposition, identified by name."""

    name: str

    def propositions(self) -> Set[str]:
        return {self.name}

    def nnf(self, negate: bool = False) -> Formula:
        return Not(self) if negate else self

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Not(Formula):
    """Negation.  In NNF, negation only wraps propositions."""

    operand: Formula

    def propositions(self) -> Set[str]:
        return self.operand.propositions()

    def nnf(self, negate: bool = False) -> Formula:
        return self.operand.nnf(not negate)

    def _children(self) -> Iterable[Formula]:
        return (self.operand,)

    def __str__(self) -> str:
        return f"!{self.operand}"


@dataclass(frozen=True)
class And(Formula):
    left: Formula
    right: Formula

    def propositions(self) -> Set[str]:
        return self.left.propositions() | self.right.propositions()

    def nnf(self, negate: bool = False) -> Formula:
        if negate:
            return Or(self.left.nnf(True), self.right.nnf(True))
        return And(self.left.nnf(False), self.right.nnf(False))

    def _children(self) -> Iterable[Formula]:
        return (self.left, self.right)

    def __str__(self) -> str:
        return f"({self.left} & {self.right})"


@dataclass(frozen=True)
class Or(Formula):
    left: Formula
    right: Formula

    def propositions(self) -> Set[str]:
        return self.left.propositions() | self.right.propositions()

    def nnf(self, negate: bool = False) -> Formula:
        if negate:
            return And(self.left.nnf(True), self.right.nnf(True))
        return Or(self.left.nnf(False), self.right.nnf(False))

    def _children(self) -> Iterable[Formula]:
        return (self.left, self.right)

    def __str__(self) -> str:
        return f"({self.left} | {self.right})"


@dataclass(frozen=True)
class Implies(Formula):
    """Implication; rewritten as ``!left | right`` during NNF conversion."""

    left: Formula
    right: Formula

    def propositions(self) -> Set[str]:
        return self.left.propositions() | self.right.propositions()

    def nnf(self, negate: bool = False) -> Formula:
        if negate:
            return And(self.left.nnf(False), self.right.nnf(True))
        return Or(self.left.nnf(True), self.right.nnf(False))

    def _children(self) -> Iterable[Formula]:
        return (self.left, self.right)

    def __str__(self) -> str:
        return f"({self.left} -> {self.right})"


@dataclass(frozen=True)
class Next(Formula):
    """The next-time operator ``X f``."""

    operand: Formula

    def propositions(self) -> Set[str]:
        return self.operand.propositions()

    def nnf(self, negate: bool = False) -> Formula:
        return Next(self.operand.nnf(negate))

    def _children(self) -> Iterable[Formula]:
        return (self.operand,)

    def __str__(self) -> str:
        return f"X({self.operand})"


@dataclass(frozen=True)
class Until(Formula):
    """The until operator ``left U right``."""

    left: Formula
    right: Formula

    def propositions(self) -> Set[str]:
        return self.left.propositions() | self.right.propositions()

    def nnf(self, negate: bool = False) -> Formula:
        if negate:
            return Release(self.left.nnf(True), self.right.nnf(True))
        return Until(self.left.nnf(False), self.right.nnf(False))

    def _children(self) -> Iterable[Formula]:
        return (self.left, self.right)

    def __str__(self) -> str:
        return f"({self.left} U {self.right})"


@dataclass(frozen=True)
class Release(Formula):
    """The release operator ``left R right`` (dual of until)."""

    left: Formula
    right: Formula

    def propositions(self) -> Set[str]:
        return self.left.propositions() | self.right.propositions()

    def nnf(self, negate: bool = False) -> Formula:
        if negate:
            return Until(self.left.nnf(True), self.right.nnf(True))
        return Release(self.left.nnf(False), self.right.nnf(False))

    def _children(self) -> Iterable[Formula]:
        return (self.left, self.right)

    def __str__(self) -> str:
        return f"({self.left} R {self.right})"


@dataclass(frozen=True)
class Globally(Formula):
    """``G f`` = ``false R f``."""

    operand: Formula

    def propositions(self) -> Set[str]:
        return self.operand.propositions()

    def nnf(self, negate: bool = False) -> Formula:
        if negate:
            return Until(LTrue(), self.operand.nnf(True))
        return Release(LFalse(), self.operand.nnf(False))

    def _children(self) -> Iterable[Formula]:
        return (self.operand,)

    def __str__(self) -> str:
        return f"G({self.operand})"


@dataclass(frozen=True)
class Finally(Formula):
    """``F f`` = ``true U f``."""

    operand: Formula

    def propositions(self) -> Set[str]:
        return self.operand.propositions()

    def nnf(self, negate: bool = False) -> Formula:
        if negate:
            return Release(LFalse(), self.operand.nnf(True))
        return Until(LTrue(), self.operand.nnf(False))

    def _children(self) -> Iterable[Formula]:
        return (self.operand,)

    def __str__(self) -> str:
        return f"F({self.operand})"


# -- convenience constructors ---------------------------------------------------


def G(operand: Formula) -> Formula:
    """``G f`` (always f)."""
    return Globally(operand)


def F(operand: Formula) -> Formula:
    """``F f`` (eventually f)."""
    return Finally(operand)


def X(operand: Formula) -> Formula:
    """``X f`` (next f)."""
    return Next(operand)


def U(left: Formula, right: Formula) -> Formula:
    """``left U right`` (until)."""
    return Until(left, right)
