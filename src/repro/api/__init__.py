"""The public verification API: cancellable sessions over the core search.

This package is the stable, user-facing surface of the verifier (the HTTP
``/v1`` API of :mod:`repro.server` and the :mod:`repro.client` library mirror
it):

* :class:`VerificationSession` -- a cancellable, deadline-aware handle over
  one ``Verifier.verify`` run that buffers typed progress events;
* :class:`CancellationToken` / :class:`SearchControl` /
  :class:`ProgressEvent` -- the cooperative-control primitives threaded
  through :class:`~repro.core.verifier.Verifier`,
  :class:`~repro.core.karp_miller.KarpMillerSearch` and
  :class:`~repro.core.repeated.RepeatedReachabilityAnalyzer` (re-exported
  from :mod:`repro.core.control`).

::

    from repro.api import VerificationSession

    session = VerificationSession(system, prop, deadline_seconds=30).start()
    for event in session.iter_events():
        print(event.kind, event.data)
    result = session.result()          # UNKNOWN + partial stats if cancelled
"""

from repro.core.control import (
    STOP_CANCELLED,
    STOP_DEADLINE,
    CancellationToken,
    EventSink,
    ProgressEvent,
    SearchControl,
)
from repro.api.session import SessionState, VerificationSession

__all__ = [
    "STOP_CANCELLED",
    "STOP_DEADLINE",
    "CancellationToken",
    "EventSink",
    "ProgressEvent",
    "SearchControl",
    "SessionState",
    "VerificationSession",
]
