"""Verification sessions: cancellable, observable handles over one verification.

A :class:`VerificationSession` wraps one ``Verifier.verify`` call with

* a :class:`~repro.core.control.CancellationToken` -- ``cancel()`` from any
  thread stops the Karp–Miller search (and the repeated-reachability
  re-search) at its next loop iteration; the run returns ``UNKNOWN`` with the
  partial :class:`~repro.core.stats.SearchStatistics` gathered so far;
* an optional deadline (``deadline_seconds``), enforced the same cooperative
  way and combined with ``options.timeout_seconds`` (whichever is sooner);
* a buffered stream of typed :class:`~repro.core.control.ProgressEvent`
  objects -- phase transitions, periodic state-count heartbeats, a final
  statistics snapshot -- consumable live (:meth:`iter_events`) or after the
  fact (:meth:`events`).

Sessions run either on the calling thread (:meth:`run`) or on a background
thread (:meth:`start` + :meth:`result`)::

    session = VerificationSession(system, prop, options, deadline_seconds=30)
    session.start()
    for event in session.iter_events():
        print(event.kind, event.data)
    result = session.result()
"""

from __future__ import annotations

import enum
import threading
from typing import TYPE_CHECKING, Callable, Iterator, List, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only (no hard dependency)
    from repro.events import EventManager

from repro.core.control import (
    CancellationToken,
    EventSink,
    ProgressEvent,
    SearchControl,
)
from repro.core.options import VerifierOptions
from repro.core.verifier import VerificationResult, Verifier
from repro.has.artifact_system import ArtifactSystem
from repro.ltl.ltlfo import LTLFOProperty


class SessionState(enum.Enum):
    """Lifecycle of a verification session."""

    PENDING = "pending"
    RUNNING = "running"
    DONE = "done"
    ERROR = "error"


class VerificationSession:
    """One cancellable, deadline-aware, progress-reporting verification run."""

    def __init__(
        self,
        system: ArtifactSystem,
        ltl_property: LTLFOProperty,
        options: Optional[VerifierOptions] = None,
        deadline_seconds: Optional[float] = None,
        token: Optional[CancellationToken] = None,
        event_sink: Optional[EventSink] = None,
        progress_interval: int = 250,
        cancel_poll: Optional[Callable[[], bool]] = None,
        event_manager: Optional["EventManager"] = None,
        job_id: Optional[str] = None,
    ):
        """``cancel_poll`` (ignored when an explicit *token* is passed) is an
        external pollable cancellation backend -- e.g. a
        ``multiprocessing.Event().is_set`` shared with another process --
        consulted cooperatively on every search-loop iteration.

        ``event_manager`` (with ``job_id`` naming this run on the bus)
        additionally forwards every :class:`ProgressEvent` onto a
        :class:`repro.events.EventManager` as typed ``SearchEvent``s --
        the same single path the server's workers use -- so an embedding
        application's sinks (logs, metrics, a durable store) observe a
        session-run search exactly like a server-run one.
        """
        self._verifier = Verifier(system, options)
        self._property = ltl_property
        self.token = (
            token if token is not None else CancellationToken(external=cancel_poll)
        )
        self.token.tighten_deadline(deadline_seconds)
        self._forward = event_sink
        self._bus_forward: Optional[EventSink] = None
        if event_manager is not None:
            self._bus_forward = event_manager.progress_sink(
                job_id if job_id is not None else "session"
            )
        self.control = SearchControl(
            token=self.token,
            event_sink=self._record_event,
            progress_interval=progress_interval,
        )
        self._events: List[ProgressEvent] = []
        self._condition = threading.Condition()
        self._state = SessionState.PENDING
        self._started = False
        self._result: Optional[VerificationResult] = None
        self._error: Optional[BaseException] = None
        self._thread: Optional[threading.Thread] = None

    # -------------------------------------------------------------------- state

    @property
    def state(self) -> SessionState:
        with self._condition:
            return self._state

    @property
    def done(self) -> bool:
        return self.state in (SessionState.DONE, SessionState.ERROR)

    @property
    def cancelled(self) -> bool:
        return self.token.cancelled

    # ---------------------------------------------------------------- execution

    def _claim(self) -> None:
        """Atomically take single-use ownership; raises on the second claim."""
        with self._condition:
            if self._started:
                raise RuntimeError(f"session already started ({self._state.value})")
            self._started = True

    def run(self) -> VerificationResult:
        """Run the verification on the calling thread and return its result."""
        self._claim()
        return self._run_claimed()

    def _run_claimed(self) -> VerificationResult:
        with self._condition:
            self._state = SessionState.RUNNING
        try:
            result = self._verifier.verify(self._property, self.control)
        except BaseException as error:
            with self._condition:
                self._error = error
                self._state = SessionState.ERROR
                self._condition.notify_all()
            raise
        with self._condition:
            self._result = result
            self._state = SessionState.DONE
            self._condition.notify_all()
        return result

    def start(self) -> "VerificationSession":
        """Run the verification on a daemon background thread; returns self."""
        self._claim()
        self._thread = threading.Thread(
            target=self._run_quietly, name="repro-session", daemon=True
        )
        self._thread.start()
        return self

    def _run_quietly(self) -> None:
        try:
            self._run_claimed()
        except BaseException:  # noqa: BLE001 - surfaced via result()
            pass

    def cancel(self) -> None:
        """Request cooperative cancellation (idempotent, any thread)."""
        self.token.cancel()
        with self._condition:
            self._condition.notify_all()

    def result(self, timeout: Optional[float] = None) -> VerificationResult:
        """The verification result, waiting up to *timeout* seconds for it.

        Raises :class:`TimeoutError` if the session is still running after
        *timeout*, and re-raises the worker's exception if the run failed.
        """
        with self._condition:
            self._condition.wait_for(
                lambda: self._state in (SessionState.DONE, SessionState.ERROR),
                timeout=timeout,
            )
            if self._error is not None:
                raise self._error
            if self._result is None:
                raise TimeoutError("verification session still running")
            return self._result

    # ------------------------------------------------------------------- events

    def _record_event(self, event: ProgressEvent) -> None:
        with self._condition:
            self._events.append(event)
            self._condition.notify_all()
        if self._forward is not None:
            self._forward(event)
        if self._bus_forward is not None:
            self._bus_forward(event)

    def events(self) -> List[ProgressEvent]:
        """A snapshot of every event emitted so far."""
        with self._condition:
            return list(self._events)

    def events_after(self, cursor: int) -> List[ProgressEvent]:
        """Events with ``seq`` greater than *cursor* (the polling primitive)."""
        with self._condition:
            return [event for event in self._events if event.seq > cursor]

    def iter_events(self, poll_timeout: float = 10.0) -> Iterator[ProgressEvent]:
        """Yield events as they arrive until the session reaches a terminal state.

        *poll_timeout* bounds each internal wait so a wedged session cannot
        block the consumer forever; iteration simply ends when it elapses
        with no progress and no new events.
        """
        # Events are append-only, so a list index is a valid cursor and each
        # wakeup costs O(new events), not O(all events).
        index = 0
        while True:
            with self._condition:
                fresh = self._events[index:]
                if not fresh:
                    if self._state in (SessionState.DONE, SessionState.ERROR):
                        return
                    notified = self._condition.wait(timeout=poll_timeout)
                    fresh = self._events[index:]
                    if not fresh and not notified:
                        return
                index += len(fresh)
            for event in fresh:
                yield event
