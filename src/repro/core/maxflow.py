"""Bipartite flow feasibility used by the ⪯ comparison (Section 3.5).

Testing ``I ⪯ I'`` requires a one-to-one mapping of the tuples stored in
``I``'s artifact relations onto tuples stored in ``I'``, where a tuple of type
``τ_S`` may only be mapped to a tuple of a *less restrictive* type ``τ'_S``
(``τ_S |= τ'_S``).  The paper reduces the existence of such a mapping to a
max-flow problem; the instances are tiny (a handful of stored-tuple types per
side), so a plain Edmonds–Karp implementation is more than sufficient.

Supplies and capacities range over ℕ ∪ {ω}; an ω supply can only be satisfied
by an ω-capacity sink, and ω-capacity sinks absorb any finite amount.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.vass.vass import OMEGA

#: Large finite stand-in for ω capacities once ω supplies have been discharged.
_INFINITE = 10**12


def max_bipartite_flow(
    supplies: Sequence[int],
    capacities: Sequence[int],
    edges: Set[Tuple[int, int]],
) -> int:
    """Maximum flow from supply nodes to capacity nodes along the given edges.

    ``edges`` contains pairs ``(supply_index, capacity_index)``; edge capacity
    is unbounded (only the node supplies/capacities constrain the flow).
    """
    n_sources = len(supplies)
    n_sinks = len(capacities)
    source = n_sources + n_sinks
    sink = source + 1
    n_nodes = sink + 1

    capacity: Dict[Tuple[int, int], int] = {}

    def add_edge(u: int, v: int, c: int) -> None:
        capacity[(u, v)] = capacity.get((u, v), 0) + c
        capacity.setdefault((v, u), 0)

    for i, supply in enumerate(supplies):
        add_edge(source, i, supply)
    for j, cap in enumerate(capacities):
        add_edge(n_sources + j, sink, cap)
    for i, j in edges:
        add_edge(i, n_sources + j, _INFINITE)

    adjacency: Dict[int, List[int]] = {u: [] for u in range(n_nodes)}
    for (u, v) in capacity:
        adjacency[u].append(v)

    flow = 0
    while True:
        # BFS for an augmenting path in the residual graph.
        parent: Dict[int, int] = {source: source}
        queue = deque([source])
        while queue and sink not in parent:
            u = queue.popleft()
            for v in adjacency[u]:
                if v not in parent and capacity.get((u, v), 0) > 0:
                    parent[v] = u
                    queue.append(v)
        if sink not in parent:
            return flow
        # Find the bottleneck along the path and push flow.
        bottleneck = _INFINITE
        v = sink
        while v != source:
            u = parent[v]
            bottleneck = min(bottleneck, capacity[(u, v)])
            v = u
        v = sink
        while v != source:
            u = parent[v]
            capacity[(u, v)] -= bottleneck
            capacity[(v, u)] += bottleneck
            v = u
        flow += bottleneck


def feasible_assignment(
    supplies: Sequence[object],
    capacities: Sequence[object],
    edges: Set[Tuple[int, int]],
    require_slack: bool = False,
) -> bool:
    """Whether every supply unit can be routed to the capacities along *edges*.

    Supplies / capacities may be ω.  With ``require_slack=True`` the check
    additionally requires that some capacity is *not* saturated by the
    assignment (used by the ⪯⁺ relation and the ⪯-based acceleration).
    """
    # ω supplies must be absorbed by an ω sink they are connected to.
    finite_supplies: List[int] = []
    finite_supply_index: List[int] = []
    omega_sinks = {j for j, cap in enumerate(capacities) if cap is OMEGA}
    for i, supply in enumerate(supplies):
        if supply is OMEGA:
            if not any(j in omega_sinks for (si, j) in edges if si == i):
                return False
        else:
            finite_supplies.append(int(supply))
            finite_supply_index.append(i)

    finite_capacities = [
        _INFINITE if cap is OMEGA else int(cap) for cap in capacities
    ]
    remapped_edges = {
        (finite_supply_index.index(i), j)
        for (i, j) in edges
        if i in finite_supply_index
    }
    total_supply = sum(finite_supplies)
    flow = max_bipartite_flow(finite_supplies, finite_capacities, remapped_edges)
    if flow < total_supply:
        return False
    if not require_slack:
        return True
    # Slack exists when some sink's capacity is not fully used by *any*
    # feasible assignment of this size -- equivalently, when the total finite
    # capacity strictly exceeds the total supply, or some ω sink exists.
    if omega_sinks:
        return True
    return sum(int(c) for c in capacities) > total_supply
