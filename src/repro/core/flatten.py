"""Flattening of FO conditions into expression constraints.

Symbolic condition evaluation (Section 3.2) works on partial isomorphism
types, whose constraints relate *expressions*.  This module converts a
quantifier-free condition over a task's variables into a disjunction of
constraint conjunctions over expressions:

* ``x = y``, ``x != y``     -- a single constraint between the two expressions;
* ``R(x, y1, ..., yk)``     -- the conjunction ``x != null ∧ yi != null ∧
  x.Ai = yi`` (a positive atom also asserts that none of its arguments is
  ``null``, because ``null`` never occurs in database relations);
* ``¬R(x, y1, ..., yk)``    -- the disjunction over ``x.Ai != yi`` plus the
  disjuncts ``x = null`` / ``yi = null`` (any null argument falsifies the
  atom, hence satisfies its negation).

The result of :func:`flatten_condition` is the ``conj(φ)`` of the paper: a
list of constraint conjunctions whose disjunction is equivalent to φ.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.expressions import ConstExpr, Expression, ExpressionUniverse, NULL_EXPR, NavExpr
from repro.core.isotypes import Constraint, EQ, NEQ, PartialIsoType
from repro.has.conditions import (
    Condition,
    Const,
    Eq,
    FalseCond,
    Neq,
    Not,
    RelationAtom,
    Term,
    TrueCond,
    Var,
)
from repro.has.schema import DatabaseSchema


class FlattenError(ValueError):
    """Raised when a condition cannot be interpreted over the expression universe."""


def term_to_expression(term: Term, universe: ExpressionUniverse) -> Expression:
    """The expression denoted by a term (variable or constant)."""
    if isinstance(term, Const):
        return universe.add_constant(term.value)
    if isinstance(term, Var):
        if not universe.has_root(term.name):
            raise FlattenError(f"variable {term.name!r} is not in the expression universe")
        return universe.variable(term.name)
    raise FlattenError(f"unsupported term {term!r}")


def _flatten_literal(
    literal: Condition, universe: ExpressionUniverse, schema: DatabaseSchema
) -> List[List[Constraint]]:
    """Flatten one NNF literal into a disjunction of constraint conjunctions."""
    if isinstance(literal, TrueCond):
        return [[]]
    if isinstance(literal, FalseCond):
        return []
    if isinstance(literal, Eq):
        left = term_to_expression(literal.left, universe)
        right = term_to_expression(literal.right, universe)
        return [[(left, right, EQ)]]
    if isinstance(literal, Neq):
        left = term_to_expression(literal.left, universe)
        right = term_to_expression(literal.right, universe)
        return [[(left, right, NEQ)]]
    if isinstance(literal, RelationAtom):
        return [_flatten_positive_atom(literal, universe, schema)]
    if isinstance(literal, Not) and isinstance(literal.operand, RelationAtom):
        return _flatten_negative_atom(literal.operand, universe, schema)
    raise FlattenError(f"literal {literal} is not supported in NNF conditions")


def _atom_expressions(
    atom: RelationAtom, universe: ExpressionUniverse, schema: DatabaseSchema
) -> Tuple[Expression, List[Tuple[Expression, Expression]]]:
    """The id expression and the list of (navigation, argument) expression pairs."""
    relation = schema.relation(atom.relation)
    if len(atom.args) != relation.arity:
        raise FlattenError(
            f"atom {atom} has {len(atom.args)} arguments, expected {relation.arity}"
        )
    id_expression = term_to_expression(atom.id_term, universe)
    if isinstance(id_expression, ConstExpr):
        raise FlattenError(f"atom {atom}: the id position must be a variable")
    pairs: List[Tuple[Expression, Expression]] = []
    for attribute, term in zip(relation.attributes, atom.attribute_terms):
        navigation = universe.navigate(id_expression, attribute.name)
        if navigation is None:
            raise FlattenError(
                f"atom {atom}: variable {atom.id_term} does not have the id type of "
                f"relation {atom.relation!r}"
            )
        pairs.append((navigation, term_to_expression(term, universe)))
    return id_expression, pairs


def _flatten_positive_atom(
    atom: RelationAtom, universe: ExpressionUniverse, schema: DatabaseSchema
) -> List[Constraint]:
    id_expression, pairs = _atom_expressions(atom, universe, schema)
    null = universe.add_constant(None)
    constraints: List[Constraint] = [(id_expression, null, NEQ)]
    for navigation, argument in pairs:
        if not (isinstance(argument, ConstExpr) and not argument.is_null):
            constraints.append((argument, null, NEQ))
        constraints.append((navigation, argument, EQ))
    return constraints


def _flatten_negative_atom(
    atom: RelationAtom, universe: ExpressionUniverse, schema: DatabaseSchema
) -> List[List[Constraint]]:
    id_expression, pairs = _atom_expressions(atom, universe, schema)
    null = universe.add_constant(None)
    disjuncts: List[List[Constraint]] = [[(id_expression, null, EQ)]]
    for navigation, argument in pairs:
        disjuncts.append([(navigation, argument, NEQ)])
        if not isinstance(argument, ConstExpr):
            disjuncts.append([(argument, null, EQ)])
    return disjuncts


def flatten_condition(
    condition: Condition, universe: ExpressionUniverse, schema: DatabaseSchema
) -> List[List[Constraint]]:
    """``conj(φ)``: a list of constraint conjunctions equivalent to the condition.

    An empty list means the condition is unsatisfiable; a list containing an
    empty conjunction means it is trivially true.
    """
    disjuncts: List[List[Constraint]] = []
    for conjunct in condition.dnf():
        # Each literal may itself flatten to a disjunction (negative atoms),
        # so we distribute.
        partial: List[List[Constraint]] = [[]]
        feasible = True
        for literal in conjunct:
            literal_disjuncts = _flatten_literal(literal, universe, schema)
            if not literal_disjuncts:
                feasible = False
                break
            partial = [
                existing + additional
                for existing in partial
                for additional in literal_disjuncts
            ]
        if feasible:
            disjuncts.extend(partial)
    return disjuncts


def evaluate_condition(
    tau: PartialIsoType,
    condition: Condition,
    universe: ExpressionUniverse,
    schema: DatabaseSchema,
) -> List[PartialIsoType]:
    """``eval(τ, φ)``: all minimal consistent extensions of τ satisfying φ.

    Each returned type extends τ with the constraints of one flattened
    conjunct of φ; duplicates are removed.
    """
    results: List[PartialIsoType] = []
    seen = set()
    for constraints in flatten_condition(condition, universe, schema):
        extended = tau.extend(constraints)
        if extended is None:
            continue
        key = extended.canonical_key()
        if key not in seen:
            seen.add(key)
            results.append(extended)
    return results
