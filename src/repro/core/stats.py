"""Search statistics reported by the verifier.

The benchmark harness relies on these counters to reproduce the paper's
experiments (state-space sizes, pruning effectiveness, optimisation speedups).
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Dict, Mapping, Optional


@dataclass
class SearchStatistics:
    """Counters collected during one verification run."""

    #: Product states materialised as Karp-Miller tree nodes.
    states_explored: int = 0
    #: Successor states discarded because an active state already covers them.
    states_pruned: int = 0
    #: Previously active states deactivated by a newly added larger state.
    states_deactivated: int = 0
    #: Successor computations (symbolic transitions synchronised with the Büchi automaton).
    transitions_computed: int = 0
    #: Number of counter accelerations to ω.
    accelerations: int = 0
    #: States explored by the repeated-reachability phase (Section 3.8).
    repeated_phase_states: int = 0
    #: Size of the final coverability set (active states).
    coverability_set_size: int = 0
    #: Number of constraints dropped thanks to static analysis.
    constraints_dropped: int = 0
    #: Wall-clock time spent in the main search, in seconds.
    search_seconds: float = 0.0
    #: Wall-clock time spent in the repeated-reachability phase, in seconds.
    repeated_seconds: float = 0.0
    #: Total verification time, in seconds.
    total_seconds: float = 0.0
    #: Whether the search hit the timeout.
    timed_out: bool = False
    #: Whether the search hit the state budget.
    state_limit_reached: bool = False
    #: Whether the search was cooperatively cancelled (see
    #: :class:`repro.core.control.CancellationToken`).
    cancelled: bool = False
    #: Internal-service successor evaluations skipped because the dataflow
    #: pass proved the service dead (zero symbolic moves in every reachable
    #: state); child-opening skips count here too.
    dataflow_services_skipped: int = 0
    #: Flattened conjunctions dropped before symbolic evaluation because they
    #: contradict the task's constant environment.
    dataflow_conjunctions_dropped: int = 0
    #: Per-phase wall-time attribution from the hot-loop ``phase(name)``
    #: hooks (see :class:`repro.core.control.PhaseTimer`): maps a phase name
    #: to ``{"seconds": float, "count": int}``.  Empty unless the run was
    #: traced -- the default no-op timer records nothing.
    phase_seconds: Dict[str, Dict[str, float]] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, float]:
        """A plain-dict view (used by the benchmark harness and EXPERIMENTS.md).

        ``phase_seconds`` is included only when non-empty, so untraced runs
        keep the historical shape byte-for-byte; the dataflow counters are
        included only when non-zero for the same reason.
        """
        base = self._base_dict()
        if self.dataflow_services_skipped:
            base["dataflow_services_skipped"] = self.dataflow_services_skipped
        if self.dataflow_conjunctions_dropped:
            base["dataflow_conjunctions_dropped"] = self.dataflow_conjunctions_dropped
        if self.phase_seconds:
            base["phase_seconds"] = {
                name: dict(entry) for name, entry in self.phase_seconds.items()
            }
        return base

    def _base_dict(self) -> Dict[str, float]:
        return {
            "states_explored": self.states_explored,
            "states_pruned": self.states_pruned,
            "states_deactivated": self.states_deactivated,
            "transitions_computed": self.transitions_computed,
            "accelerations": self.accelerations,
            "repeated_phase_states": self.repeated_phase_states,
            "coverability_set_size": self.coverability_set_size,
            "constraints_dropped": self.constraints_dropped,
            "search_seconds": self.search_seconds,
            "repeated_seconds": self.repeated_seconds,
            "total_seconds": self.total_seconds,
            "timed_out": self.timed_out,
            "state_limit_reached": self.state_limit_reached,
            "cancelled": self.cancelled,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "SearchStatistics":
        """Rebuild statistics from :meth:`as_dict` output; unknown keys are ignored."""
        known = {f.name for f in fields(cls)}
        return cls(**{key: value for key, value in data.items() if key in known})

    @property
    def failed(self) -> bool:
        """Whether the run failed to complete (timeout, cancellation or state budget)."""
        return self.timed_out or self.state_limit_reached or self.cancelled
