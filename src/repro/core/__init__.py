"""The VERIFAS verifier core.

This subpackage implements Section 3 of the paper: the symbolic representation
of local runs (navigation expressions, partial isomorphism types, partial
symbolic instances), symbolic transitions, the product with the Büchi
automaton of the negated property, the Karp–Miller search with monotone
pruning, the novel ⪯-based pruning, the index data structures, the static
analysis of the constraint graph, and repeated-reachability extraction.

The top-level entry point is :class:`repro.core.Verifier`.
"""

from repro.core.options import CoverageMode, VerifierOptions
from repro.core.verifier import VerificationOutcome, VerificationResult, Verifier

__all__ = [
    "Verifier",
    "VerifierOptions",
    "VerificationResult",
    "VerificationOutcome",
    "CoverageMode",
]
