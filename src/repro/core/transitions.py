"""Symbolic transitions over partial symbolic instances (Section 3.2, Appendix A).

The :class:`SymbolicTransitionSystem` generates, for the single task under
verification, the successors of a partial symbolic instance under

* the task's internal services (pre-condition extension, projection onto the
  propagated variables, post-condition extension, and insertion into /
  retrieval from the task's artifact relations),
* the opening services of the task's children (guarded by a condition on the
  task's variables),
* the closing services of the task's children (the returned variables are
  overwritten, so their accumulated constraints are projected away; the new
  values are left unconstrained and later condition evaluations extend them
  lazily, which covers every possible child behaviour),
* the task's own closing service, after which only the reserved
  ``__terminated__`` stutter step is applicable (this is how finite local runs
  are folded into the repeated-reachability machinery), and
* the global variables of the LTL-FO property, which behave like extra rigid
  variables: they survive every projection and are never overwritten.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from repro.core.expressions import ExpressionUniverse
from repro.core.flatten import flatten_condition
from repro.core.isotypes import Constraint, PartialIsoType, empty_type
from repro.core.options import VerifierOptions
from repro.core.psi import PSI, counter_add
from repro.core.static_analysis import ConstraintFilter, conjunction_contradicts_bindings
from repro.has.artifact_system import ArtifactSystem
from repro.has.conditions import Condition, TrueCond
from repro.has.services import Insert, InternalService, Retrieve
from repro.has.runs import TERMINATED_SERVICE
from repro.ltl.ltlfo import LTLFOProperty
from repro.vass.vass import OMEGA

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (analysis is a sibling layer)
    from repro.analysis.analyzer import StaticFacts
    from repro.analysis.dataflow import DataflowFacts

#: Pseudo-child key marking that the verified task has executed its closing service.
CLOSED_MARKER = "__closed__"


@dataclass(frozen=True)
class SymbolicMove:
    """One symbolic transition: the observable service applied and the resulting PSI."""

    service: str
    psi: PSI


class SymbolicTransitionSystem:
    """Successor generation for local runs of one task of a HAS* specification."""

    def __init__(
        self,
        system: ArtifactSystem,
        task_name: str,
        ltl_property: Optional[LTLFOProperty] = None,
        options: Optional[VerifierOptions] = None,
        static_facts: Optional["StaticFacts"] = None,
        dataflow_facts: Optional["DataflowFacts"] = None,
    ):
        self.system = system
        self.task_name = task_name
        self.task = system.task(task_name)
        self.options = options or VerifierOptions()
        self.ltl_property = ltl_property

        # Pre-search pruning (repro.analysis): children whose opening guard is
        # statically unsatisfiable produce no symbolic moves anyway, so their
        # opening loop is skipped entirely.  Sound by construction -- the
        # unsat check under-approximates exactly the equality reasoning of
        # the iso-type machinery -- hence verdict-preserving.
        self._statically_closed_children: FrozenSet[str] = frozenset()
        if self.options.static_pruning:
            if static_facts is not None:
                unsat = set(static_facts.unsat_opening_tasks)
            else:
                from repro.analysis.satisfiability import statically_unsatisfiable

                unsat = {
                    child
                    for child in system.children_of(task_name)
                    if statically_unsatisfiable(system.opening_service(child).pre)
                }
            self._statically_closed_children = frozenset(
                child for child in system.children_of(task_name) if child in unsat
            )

        # In-search dataflow pruning (repro.analysis.dataflow): the task's
        # constant environment holds in every reachable iso-type of this
        # search, so (a) services whose guard or effect is unsatisfiable
        # under it produce zero symbolic moves and are skipped outright, and
        # (b) flattened conjunctions contradicting it fail every ``extend``
        # and are dropped at flatten time.  Post-conditions are exempt from
        # (b): they are evaluated mid-transition on *projected* types, where
        # only the propagated subset of the environment survives.
        self._dataflow_env: Optional[Dict[str, object]] = None
        self._dataflow_dead_services: FrozenSet[str] = frozenset()
        self._dataflow_closed_children: FrozenSet[str] = frozenset()
        self._dataflow_post_ids: FrozenSet[int] = frozenset()
        self.dataflow_services_skipped = 0
        self.dataflow_conjunctions_dropped = 0
        if self.options.dataflow_pruning:
            if dataflow_facts is None:
                from repro.analysis.dataflow import compute_dataflow_facts

                dataflow_facts = compute_dataflow_facts(system)
            task_facts = dataflow_facts.for_task(task_name)
            if task_facts is not None:
                self._dataflow_env = dict(task_facts.constant_env) or None
                self._dataflow_dead_services = frozenset(task_facts.dead_services)
                self._dataflow_closed_children = frozenset(
                    task_facts.dead_child_openings
                )
                self._dataflow_post_ids = frozenset(
                    id(service.post)
                    for service in system.internal_services(task_name)
                )

        # The expression universe of the task: its variables plus the global
        # variables of the property (rigid, propagated by every transition).
        roots = {var.name: var.type for var in self.task.variables}
        self._global_roots: Tuple[str, ...] = ()
        if ltl_property is not None:
            for global_var in ltl_property.global_variables:
                if global_var.name in roots:
                    raise ValueError(
                        f"global variable {global_var.name!r} clashes with a task variable"
                    )
                roots[global_var.name] = global_var.type
            self._global_roots = ltl_property.global_variable_names
        self.universe = ExpressionUniverse(system.schema, roots)

        # One expression universe per artifact relation (attributes as roots).
        self._relation_universes: Dict[str, ExpressionUniverse] = {}
        for relation in self.task.artifact_relations:
            relation_roots = {attr.name: attr.type for attr in relation.attributes}
            self._relation_universes[relation.name] = ExpressionUniverse(
                system.schema, relation_roots
            )

        # Register every constant appearing in the specification or property so
        # that constant expressions are shared.
        for condition in self._all_conditions():
            for constant in condition.constants():
                self.universe.add_constant(constant.value)

        # Pre-flatten every condition the search will evaluate.
        self._flattened: Dict[int, List[List[Constraint]]] = {}

        # Static analysis: collect every constraint any transition could add.
        all_conjunctions: List[Sequence[Constraint]] = []
        for condition in self._all_conditions():
            for negated in (False, True):
                source = condition.nnf(negate=negated)
                try:
                    conjunctions = flatten_condition(source, self.universe, system.schema)
                except Exception:
                    continue
                all_conjunctions.extend(conjunctions)
        self.constraint_filter = ConstraintFilter.from_conditions(
            self.universe, all_conjunctions, enabled=self.options.static_analysis
        )

    # ------------------------------------------------------------------ helpers

    def _all_conditions(self) -> List[Condition]:
        """Every condition the verifier may evaluate for this task."""
        conditions: List[Condition] = [self.system.global_precondition]
        for service in self.system.internal_services(self.task_name):
            conditions.append(service.pre)
            conditions.append(service.post)
        conditions.append(self.system.closing_service(self.task_name).pre)
        for child in self.system.children_of(self.task_name):
            conditions.append(self.system.opening_service(child).pre)
        if self.ltl_property is not None:
            conditions.extend(self.ltl_property.conditions.values())
        return conditions

    def flatten(self, condition: Condition) -> List[List[Constraint]]:
        """Cached ``conj(φ)`` of a condition over the task universe.

        With dataflow pruning on, conjunctions contradicting the task's
        constant environment are dropped (order of the survivors is
        preserved): the environment holds in every reachable iso-type, so
        such a conjunction fails every ``extend`` anyway.  Post-conditions
        are exempt -- they are evaluated on projected types where only the
        propagated bindings survive.
        """
        key = id(condition)
        if key not in self._flattened:
            conjunctions = flatten_condition(condition, self.universe, self.system.schema)
            if self._dataflow_env is not None and key not in self._dataflow_post_ids:
                kept = [
                    conjunction
                    for conjunction in conjunctions
                    if not conjunction_contradicts_bindings(
                        conjunction, self._dataflow_env, self.universe
                    )
                ]
                self.dataflow_conjunctions_dropped += len(conjunctions) - len(kept)
                conjunctions = kept
            self._flattened[key] = conjunctions
        return self._flattened[key]

    def extend(self, tau: PartialIsoType, constraints: Sequence[Constraint]) -> Optional[PartialIsoType]:
        """Extend a type with constraints, after static-analysis filtering."""
        filtered = self.constraint_filter.filter_constraints(constraints)
        return tau.extend(filtered)

    def evaluate(self, tau: PartialIsoType, condition: Condition) -> List[PartialIsoType]:
        """``eval(τ, φ)`` with static-analysis filtering and de-duplication."""
        results: List[PartialIsoType] = []
        seen = set()
        for conjunction in self.flatten(condition):
            extended = self.extend(tau, conjunction)
            if extended is None:
                continue
            key = extended.canonical_key()
            if key not in seen:
                seen.add(key)
                results.append(extended)
        return results

    @property
    def observable_services(self) -> Tuple[str, ...]:
        """All service names observable in local runs, plus the stutter step."""
        return self.system.observable_service_names(self.task_name) + (TERMINATED_SERVICE,)

    def _kept_roots(self, propagated: Iterable[str]) -> Set[str]:
        return set(propagated) | set(self._global_roots)

    def _initial_children(self) -> Dict[str, bool]:
        children = {child: False for child in self.system.children_of(self.task_name)}
        children[CLOSED_MARKER] = False
        return children

    # ------------------------------------------------------------------ initial states

    def initial_moves(self) -> List[SymbolicMove]:
        """The PSIs produced by the opening service of the verified task.

        For the root task the opening evaluates the global pre-condition Π on
        the all-null artifact tuple; for a non-root task the input variables
        come from the parent and are left unconstrained (every possible call
        is covered lazily).
        """
        opening = self.system.opening_service(self.task_name)
        base = empty_type(self.universe)
        null = self.universe.add_constant(None)
        constraints: List[Constraint] = []
        if self.task_name != self.system.root:
            # Definition 26: the opening of a non-root task initialises every
            # non-input variable to null; the inputs come from the parent and
            # are left unconstrained (all possible calls are covered lazily).
            for var in self.task.variables:
                if var.name not in self.task.input_variables:
                    constraints.append((self.universe.variable(var.name), null, "="))
        start = base.extend(constraints)
        assert start is not None

        moves: List[SymbolicMove] = []
        # Definition 14: the initial artifact tuple of the root task is any
        # valuation satisfying the global pre-condition Π (the all-null
        # initialisation of the examples comes from Π itself).
        guard = (
            self.system.global_precondition
            if self.task_name == self.system.root
            else TrueCond()
        )
        for tau in self.evaluate(start, guard):
            psi = PSI.make(tau, {}, self._initial_children())
            moves.append(SymbolicMove(opening.name, psi))
        return moves

    # ------------------------------------------------------------------ successors

    def successors(self, psi: PSI) -> List[SymbolicMove]:
        """All symbolic successors of a PSI, labelled by the applied service."""
        if psi.child_active(CLOSED_MARKER):
            # The task has returned: only the terminal stutter step applies.
            return [SymbolicMove(TERMINATED_SERVICE, psi)]
        moves: List[SymbolicMove] = []
        moves.extend(self._internal_moves(psi))
        moves.extend(self._child_opening_moves(psi))
        moves.extend(self._child_closing_moves(psi))
        moves.extend(self._own_closing_moves(psi))
        return moves

    def _real_children(self, psi: PSI) -> Dict[str, bool]:
        return {child: active for child, active in psi.children if child != CLOSED_MARKER}

    def _any_real_child_active(self, psi: PSI) -> bool:
        return any(active for child, active in psi.children if child != CLOSED_MARKER)

    # -- internal services ----------------------------------------------------------

    def _internal_moves(self, psi: PSI) -> List[SymbolicMove]:
        if self._any_real_child_active(psi):
            return []
        moves: List[SymbolicMove] = []
        for service in self.system.internal_services(self.task_name):
            if service.name in self._dataflow_dead_services:
                # Dead under constant propagation: the pre (or, after
                # projection, the post) fails on every reachable iso-type,
                # so the evaluation below would produce zero moves.
                self.dataflow_services_skipped += 1
                continue
            moves.extend(self._apply_internal(psi, service))
        return moves

    def _apply_internal(self, psi: PSI, service: InternalService) -> List[SymbolicMove]:
        update = service.update if self.options.use_artifact_relations else None
        kept = self._kept_roots(service.propagated)
        moves: List[SymbolicMove] = []
        for pre_extended in self.evaluate(psi.tau, service.pre):
            projected = pre_extended.project(kept)
            for post_extended in self.evaluate(projected, service.post):
                if update is None:
                    moves.append(SymbolicMove(service.name, psi.with_tau(post_extended)))
                elif isinstance(update, Insert):
                    moves.extend(
                        self._insert_moves(psi, service, pre_extended, post_extended, update)
                    )
                else:
                    moves.extend(
                        self._retrieve_moves(psi, service, post_extended, update)
                    )
        return moves

    def _insert_moves(
        self,
        psi: PSI,
        service: InternalService,
        pre_extended: PartialIsoType,
        post_extended: PartialIsoType,
        update: Insert,
    ) -> List[SymbolicMove]:
        relation = self.task.artifact_relation(update.relation)
        target_universe = self._relation_universes[update.relation]
        renaming = {
            variable: attribute.name
            for variable, attribute in zip(update.variables, relation.attributes)
        }
        stored_type = pre_extended.project(set(update.variables)).rename_roots(
            renaming, target_universe
        )
        if stored_type is None:  # pragma: no cover - defensive; renaming preserves consistency
            return []
        counters = psi.counter_map()
        key = (update.relation, stored_type)
        counters[key] = counter_add(counters.get(key, 0), 1)
        return [SymbolicMove(service.name, PSI.make(post_extended, counters, psi.child_map()))]

    def _retrieve_moves(
        self,
        psi: PSI,
        service: InternalService,
        post_extended: PartialIsoType,
        update: Retrieve,
    ) -> List[SymbolicMove]:
        relation = self.task.artifact_relation(update.relation)
        renaming = {
            attribute.name: variable
            for variable, attribute in zip(update.variables, relation.attributes)
        }
        moves: List[SymbolicMove] = []
        for (relation_name, stored_type), count in psi.counters:
            if relation_name != update.relation:
                continue
            retrieved = stored_type.rename_roots(renaming, self.universe)
            if retrieved is None:  # pragma: no cover - defensive
                continue
            merged = self.extend(post_extended, retrieved.constraints())
            if merged is None:
                continue
            successor = psi.with_tau(merged).with_counter_delta((relation_name, stored_type), -1)
            if successor is None:
                continue
            moves.append(SymbolicMove(service.name, successor))
        return moves

    # -- child opening / closing ---------------------------------------------------------

    def _child_opening_moves(self, psi: PSI) -> List[SymbolicMove]:
        moves: List[SymbolicMove] = []
        for child in self.system.children_of(self.task_name):
            if child in self._statically_closed_children:
                continue
            if child in self._dataflow_closed_children:
                # The opening guard is unsatisfiable under the constant
                # environment: zero symbolic moves on every reachable type.
                self.dataflow_services_skipped += 1
                continue
            if psi.child_active(child):
                continue
            opening = self.system.opening_service(child)
            for extended in self.evaluate(psi.tau, opening.pre):
                moves.append(SymbolicMove(opening.name, psi.with_tau(extended).with_child(child, True)))
        return moves

    def _child_closing_moves(self, psi: PSI) -> List[SymbolicMove]:
        moves: List[SymbolicMove] = []
        task_vars = set(self.task.variable_names)
        for child in self.system.children_of(self.task_name):
            if not psi.child_active(child):
                continue
            closing = self.system.closing_service(child)
            returned = set(closing.output_mapping().values())
            kept = self._kept_roots(task_vars - returned)
            # The returned variables are overwritten by the child's outputs:
            # drop their accumulated constraints; later condition evaluations
            # re-constrain them lazily, covering every child behaviour.
            projected = psi.tau.project(kept)
            moves.append(SymbolicMove(closing.name, psi.with_tau(projected).with_child(child, False)))
        return moves

    def _own_closing_moves(self, psi: PSI) -> List[SymbolicMove]:
        if self._any_real_child_active(psi):
            return []
        closing = self.system.closing_service(self.task_name)
        moves: List[SymbolicMove] = []
        for extended in self.evaluate(psi.tau, closing.pre):
            moves.append(
                SymbolicMove(closing.name, psi.with_tau(extended).with_child(CLOSED_MARKER, True))
            )
        return moves
