"""Partial isomorphism types (Definition 17).

A partial isomorphism type τ is a graph over the expression universe whose
edges are labelled ``=`` or ``≠``, closed under

1. congruence: if ``e ~ e'`` (connected by =-edges) and both ``e.A`` and
   ``e'.A`` exist, then ``e.A ~ e'.A``;
2. consistency of ≠: no ≠-edge inside an equivalence class, and ≠ is lifted
   to whole classes.

We represent a type as a union–find partition over the expressions mentioned
so far plus a set of ≠-edges between class representatives.  Types are
immutable: :meth:`PartialIsoType.extend` returns a new type (or ``None`` when
the added constraints contradict the existing ones).  Consistency also
enforces that two distinct non-null constants are never identified and that
navigation expressions of incompatible types (ids of different relations, or
an id vs a data value) are never identified.

The operations used by the verifier are:

* ``extend``        -- add constraints (used by condition evaluation),
* ``project``       -- keep only expressions rooted at a set of variables
  (used for variable propagation and child-task returns),
* ``entails``       -- ``τ |= τ'`` iff every constraint of τ' holds in τ
  (with closed representations this is exactly τ' ⊆ τ of the paper),
* ``rename_roots``  -- translate between a task's variables and an artifact
  relation's attributes (used by insertions and retrievals),
* ``canonical_key`` -- hashing / equality.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from repro.core.expressions import ConstExpr, Expression, ExpressionUniverse, NavExpr
from repro.has.types import IdType, ValueType

#: A single constraint between two expressions: ``(left, right, op)`` with op "=" or "!=".
Constraint = Tuple[Expression, Expression, str]

EQ = "="
NEQ = "!="


class PartialIsoType:
    """An immutable partial isomorphism type over an expression universe."""

    __slots__ = (
        "universe",
        "_parent",
        "_neq",
        "_key",
        "_hash",
        "_classes_cache",
        "_eq_key",
        "_neq_key",
    )

    def __init__(
        self,
        universe: ExpressionUniverse,
        parent: Optional[Dict[Expression, Expression]] = None,
        neq: Optional[Set[FrozenSet[Expression]]] = None,
    ):
        self.universe = universe
        self._parent: Dict[Expression, Expression] = dict(parent) if parent else {}
        self._neq: Set[FrozenSet[Expression]] = set(neq) if neq else set()
        self._key: Optional[FrozenSet] = None
        self._hash: Optional[int] = None
        self._classes_cache: Optional[Dict[Expression, Set[Expression]]] = None
        self._eq_key: Optional[FrozenSet] = None
        self._neq_key: Optional[FrozenSet] = None

    # ------------------------------------------------------------- union-find

    def _find(self, expression: Expression) -> Expression:
        parent = self._parent
        root = expression
        while parent.get(root, root) != root:
            root = parent[root]
        return root

    def representative(self, expression: Expression) -> Expression:
        """The canonical representative of the expression's equivalence class."""
        return self._find(expression)

    def same_class(self, left: Expression, right: Expression) -> bool:
        """Whether the two expressions are known to be equal."""
        return self._find(left) == self._find(right)

    def known_distinct(self, left: Expression, right: Expression) -> bool:
        """Whether the two expressions are known to be distinct."""
        left_root, right_root = self._find(left), self._find(right)
        if left_root == right_root:
            return False
        if frozenset((left_root, right_root)) in self._neq:
            return True
        return self._implicitly_distinct(left_root, right_root)

    def _implicitly_distinct(self, left_root: Expression, right_root: Expression) -> bool:
        """Distinctions that hold without an explicit ≠-edge (constants, types)."""
        left_const = self._class_constant(left_root)
        right_const = self._class_constant(right_root)
        if left_const is not None and right_const is not None and left_const != right_const:
            return True
        return False

    def _class_constant(self, root: Expression) -> Optional[ConstExpr]:
        """The constant belonging to this class, if any (classes hold at most one)."""
        if isinstance(root, ConstExpr):
            return root
        for member, parent in self._parent.items():
            if isinstance(member, ConstExpr) and self._find(member) == root:
                return member
        return None

    # -------------------------------------------------------------- membership

    def members(self) -> Set[Expression]:
        """All expressions mentioned by at least one constraint."""
        mentioned: Set[Expression] = set(self._parent)
        for pair in self._neq:
            mentioned |= set(pair)
        return mentioned

    def equivalence_classes(self) -> Dict[Expression, Set[Expression]]:
        """Representative -> members, for all mentioned expressions.

        The result is cached: types are immutable once handed out by
        :meth:`extend` / :meth:`project` (all mutation happens while the new
        copy is still private to those methods).
        """
        if self._classes_cache is None:
            classes: Dict[Expression, Set[Expression]] = {}
            for expression in self.members():
                classes.setdefault(self._find(expression), set()).add(expression)
            self._classes_cache = classes
        return self._classes_cache

    def constraints(self) -> List[Constraint]:
        """An explicit list of (closed) constraints: all = pairs within classes, all ≠ pairs."""
        result: List[Constraint] = []
        classes = self.equivalence_classes()
        for root, members in classes.items():
            ordered = sorted(members, key=str)
            for i in range(len(ordered)):
                for j in range(i + 1, len(ordered)):
                    result.append((ordered[i], ordered[j], EQ))
        for pair in self._neq:
            left_root, right_root = tuple(pair)
            left_members = classes.get(left_root, {left_root})
            right_members = classes.get(right_root, {right_root})
            for left in left_members:
                for right in right_members:
                    first, second = sorted((left, right), key=str)
                    result.append((first, second, NEQ))
        return result

    # -------------------------------------------------------------- hashing

    def canonical_key(self) -> FrozenSet:
        """A canonical, order-independent encoding of all entailed constraints."""
        if self._key is None:
            encoded = set()
            for left, right, op in self.constraints():
                encoded.add((str(left), str(right), op))
            self._key = frozenset(encoded)
        return self._key

    def eq_key(self) -> FrozenSet:
        """The equality edges of :meth:`canonical_key` (cached)."""
        if self._eq_key is None:
            self._eq_key = frozenset(e for e in self.canonical_key() if e[2] == EQ)
        return self._eq_key

    def neq_key(self) -> FrozenSet:
        """The disequality edges of :meth:`canonical_key` (cached)."""
        if self._neq_key is None:
            self._neq_key = frozenset(e for e in self.canonical_key() if e[2] == NEQ)
        return self._neq_key

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash(self.canonical_key())
        return self._hash

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PartialIsoType):
            return NotImplemented
        return self.canonical_key() == other.canonical_key()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = [f"{l}{'=' if op == EQ else '!='}{r}" for l, r, op in self.constraints()]
        return "τ{" + ", ".join(sorted(parts)) + "}"

    # -------------------------------------------------------------- extension

    def extend(self, constraints: Iterable[Constraint]) -> Optional["PartialIsoType"]:
        """A new type with the added constraints, or ``None`` if inconsistent."""
        extended = PartialIsoType(self.universe, self._parent, self._neq)
        pending: List[Constraint] = list(constraints)
        while pending:
            left, right, op = pending.pop()
            if not extended._check_in_universe(left) or not extended._check_in_universe(right):
                return None
            if op == EQ:
                if not extended._union(left, right, pending):
                    return None
            elif op == NEQ:
                if not extended._add_neq(left, right):
                    return None
            else:  # pragma: no cover - defensive
                raise ValueError(f"unknown constraint operator {op!r}")
        return extended

    def _check_in_universe(self, expression: Expression) -> bool:
        if isinstance(expression, ConstExpr):
            self.universe.add_constant(expression.value)
            return True
        return self.universe.contains(expression)

    def _expression_kind(self, expression: Expression) -> Tuple[str, Optional[str]]:
        """A coarse type tag: ("null", None), ("value", None) or ("id", relation)."""
        if isinstance(expression, ConstExpr):
            return ("null", None) if expression.is_null else ("value", None)
        expr_type = self.universe.type_of(expression)
        if isinstance(expr_type, IdType):
            return ("id", expr_type.relation)
        return ("value", None)

    def _types_compatible(self, left: Expression, right: Expression) -> bool:
        """Whether the two expressions can be equal with a *non-null* value.

        Identifiers of different relations, and identifiers vs data values,
        draw their non-null values from disjoint domains: they can only be
        equal when both are ``null``.  Non-null constants are data values, so
        they are incompatible with id-typed expressions; ``null`` itself is
        compatible with everything.
        """
        left_kind = self._expression_kind(left)
        right_kind = self._expression_kind(right)
        if left_kind[0] == "null" or right_kind[0] == "null":
            return True
        return left_kind == right_kind or (left_kind[0] == "value" and right_kind[0] == "value")

    def _can_both_be_null(self, left: Expression, right: Expression) -> bool:
        """Whether the (type-incompatible) pair may still be identified as null = null."""
        left_null = not isinstance(left, ConstExpr) or left.is_null
        right_null = not isinstance(right, ConstExpr) or right.is_null
        return left_null and right_null

    def _union(self, left: Expression, right: Expression, pending: List[Constraint]) -> bool:
        left_root, right_root = self._find(left), self._find(right)
        self._parent.setdefault(left, left)
        self._parent.setdefault(right, right)
        if left_root == right_root:
            return True
        if frozenset((left_root, right_root)) in self._neq:
            return False
        if self._implicitly_distinct(left_root, right_root):
            return False
        if not self._types_compatible(left, right):
            if not self._can_both_be_null(left, right):
                return False
            # Expressions of incompatible types (ids of different relations,
            # or an id and a data value) can only be equal when both are null:
            # enforce the union and additionally force the class to null.
            null = self.universe.add_constant(None)
            pending.append((left, null, EQ))
        # Prefer constants as representatives so each class keeps its constant visible.
        if isinstance(right_root, ConstExpr) and not isinstance(left_root, ConstExpr):
            left_root, right_root = right_root, left_root
        if isinstance(left_root, ConstExpr) and isinstance(right_root, ConstExpr):
            if left_root != right_root:
                return False
        # Merge right_root into left_root.
        self._parent[right_root] = left_root
        # Re-target ≠ edges of the absorbed representative.
        updated_neq: Set[FrozenSet[Expression]] = set()
        for pair in self._neq:
            replaced = frozenset(left_root if member == right_root else member for member in pair)
            if len(replaced) == 1:
                return False  # ≠ collapsed onto a single class
            updated_neq.add(replaced)
        self._neq = updated_neq
        # Congruence closure: children of merged members must be merged too.
        pending.extend(self._congruence_constraints(left, right))
        return True

    def _congruence_constraints(self, left: Expression, right: Expression) -> List[Constraint]:
        """Equalities between matching navigations of two newly identified expressions."""
        result: List[Constraint] = []
        # All members of both classes must agree on their navigations; it is
        # enough to propagate pairwise between members of the merged class.
        merged_root = self._find(left)
        members = [m for m in self.members() if self._find(m) == merged_root]
        members.extend(e for e in (left, right) if e not in members)
        navigations = [
            (member, self.universe.navigations_of(member)) for member in members
        ]
        for i in range(len(navigations)):
            member_i, navs_i = navigations[i]
            if not navs_i:
                continue
            for j in range(i + 1, len(navigations)):
                member_j, navs_j = navigations[j]
                for attribute, child_i in navs_i.items():
                    child_j = navs_j.get(attribute)
                    if child_j is not None and not self.same_class(child_i, child_j):
                        result.append((child_i, child_j, EQ))
        return result

    def _add_neq(self, left: Expression, right: Expression) -> bool:
        left_root, right_root = self._find(left), self._find(right)
        self._parent.setdefault(left, left)
        self._parent.setdefault(right, right)
        if left_root == right_root:
            return False
        self._neq.add(frozenset((left_root, right_root)))
        return True

    # -------------------------------------------------------------- projection

    def project(self, roots: Iterable[str]) -> "PartialIsoType":
        """The restriction of the type to expressions rooted at *roots* (and constants)."""
        kept = self.universe.expressions_rooted_at(roots)
        result = PartialIsoType(self.universe)
        classes = self.equivalence_classes()
        pending: List[Constraint] = []
        for members in classes.values():
            kept_members = sorted((m for m in members if m in kept or isinstance(m, ConstExpr)), key=str)
            for i in range(len(kept_members) - 1):
                pending.append((kept_members[i], kept_members[i + 1], EQ))
        for pair in self._neq:
            left_root, right_root = tuple(pair)
            left_kept = [m for m in classes.get(left_root, {left_root}) if m in kept or isinstance(m, ConstExpr)]
            right_kept = [m for m in classes.get(right_root, {right_root}) if m in kept or isinstance(m, ConstExpr)]
            if left_kept and right_kept:
                pending.append((left_kept[0], right_kept[0], NEQ))
        projected = result.extend(pending)
        assert projected is not None, "projection of a consistent type is always consistent"
        return projected

    # -------------------------------------------------------------- renaming

    def rename_roots(
        self, mapping: Dict[str, str], target_universe: "ExpressionUniverse"
    ) -> Optional["PartialIsoType"]:
        """Rename root variables according to *mapping* into another universe.

        Expressions whose root is not in the mapping are dropped; constants
        are preserved.  Returns ``None`` when the renamed constraints are
        inconsistent in the target universe (which cannot happen for
        type-correct specifications, but is handled defensively).
        """

        def rename(expression: Expression) -> Optional[Expression]:
            if isinstance(expression, ConstExpr):
                target_universe.add_constant(expression.value)
                return expression
            if expression.root not in mapping:
                return None
            renamed = NavExpr(mapping[expression.root], expression.path)
            return renamed if target_universe.contains(renamed) else None

        pending: List[Constraint] = []
        for left, right, op in self.constraints():
            renamed_left = rename(left)
            renamed_right = rename(right)
            if renamed_left is None or renamed_right is None:
                continue
            pending.append((renamed_left, renamed_right, op))
        return PartialIsoType(target_universe).extend(pending)

    # -------------------------------------------------------------- entailment

    def entails(self, other: "PartialIsoType") -> bool:
        """``self |= other``: every constraint of *other* holds in *self* (τ' ⊆ τ)."""
        # Fast path on the cached canonical keys.  Both representations are
        # closed, so for the equality part entailment is exactly edge-set
        # inclusion; a failed inclusion means there is nothing left to check.
        if not other.eq_key() <= self.eq_key():
            return False
        if other.neq_key() <= self.neq_key():
            return True
        # Slow path only for ≠-edges that may be entailed implicitly
        # (e.g. via two distinct constants in the respective classes).
        for pair in other._neq:
            left_root, right_root = tuple(pair)
            if not self.known_distinct(left_root, right_root):
                return False
        return True

    def is_consistent_with(self, constraints: Iterable[Constraint]) -> bool:
        """Whether the constraints can be added without contradiction."""
        return self.extend(constraints) is not None

    # -------------------------------------------------------------- edges (for indexes / pruning)

    def edge_set(self) -> FrozenSet[Tuple[str, str, str]]:
        """The canonical edge set (same encoding as :meth:`canonical_key`)."""
        return self.canonical_key()


def empty_type(universe: ExpressionUniverse) -> PartialIsoType:
    """The fully unconstrained partial isomorphism type."""
    return PartialIsoType(universe)
