"""Static analysis of the constraint graph (Section 3.7).

Some constraints occurring in the specification and the property can never
participate in a contradiction during symbolic runs; storing them in partial
isomorphism types only blows up the number of distinct symbolic states.  The
*constraint graph* ``G`` of (Γ, φ) collects every =/≠ edge that any symbolic
transition or property check could add.  An edge is **non-violating** when
adding it to any consistent subgraph of ``G`` keeps the subgraph consistent:

* a ≠-edge ``(u, v)`` is non-violating iff ``u`` and ``v`` lie in different
  connected components of the =-edges;
* an =-edge is non-violating iff it lies on no simple =-path connecting the
  endpoints of a ≠-edge or two distinct constants.  Edges lying on such a
  path are exactly the edges of the biconnected blocks along the block-cut
  tree path between the two conflict endpoints, so the check reduces to a
  biconnected-component computation (Tarjan).

The verifier uses :class:`ConstraintFilter` to drop non-violating constraints
before they are added to partial isomorphism types.  Dropping an =-edge also
suppresses its congruence-derived edges, so an =-constraint is only dropped
when *every* derived edge ``(e.w, e'.w)`` is non-violating as well.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from repro.core.expressions import ConstExpr, Expression, ExpressionUniverse, NavExpr
from repro.core.isotypes import Constraint, EQ, NEQ


Node = str  # expressions are identified by their canonical string form
Edge = FrozenSet[Node]


def _edge(u: Node, v: Node) -> Edge:
    return frozenset((u, v))


@dataclass
class ConstraintGraph:
    """The constraint graph ``G`` of Definition 24 plus conflict pairs."""

    eq_edges: Set[Edge] = field(default_factory=set)
    neq_edges: Set[Edge] = field(default_factory=set)
    constant_nodes: Set[Node] = field(default_factory=set)

    def add_constraint(self, left: Expression, right: Expression, op: str) -> None:
        u, v = str(left), str(right)
        if u == v:
            return
        if isinstance(left, ConstExpr):
            self.constant_nodes.add(u)
        if isinstance(right, ConstExpr):
            self.constant_nodes.add(v)
        if op == EQ:
            self.eq_edges.add(_edge(u, v))
        else:
            self.neq_edges.add(_edge(u, v))

    # -- connectivity over =-edges ---------------------------------------------

    def _adjacency(self) -> Dict[Node, Set[Node]]:
        adjacency: Dict[Node, Set[Node]] = {}
        for edge in self.eq_edges:
            u, v = tuple(edge)
            adjacency.setdefault(u, set()).add(v)
            adjacency.setdefault(v, set()).add(u)
        return adjacency

    def eq_components(self) -> Dict[Node, int]:
        """Node -> id of its connected component in the =-edge graph."""
        adjacency = self._adjacency()
        component: Dict[Node, int] = {}
        current = 0
        for start in adjacency:
            if start in component:
                continue
            stack = [start]
            while stack:
                node = stack.pop()
                if node in component:
                    continue
                component[node] = current
                stack.extend(adjacency.get(node, ()))
            current += 1
        return component

    def conflict_pairs(self) -> Set[Edge]:
        """Pairs of nodes that must never be connected by =-paths."""
        pairs: Set[Edge] = set(self.neq_edges)
        constants = sorted(self.constant_nodes)
        for i in range(len(constants)):
            for j in range(i + 1, len(constants)):
                pairs.add(_edge(constants[i], constants[j]))
        return pairs

    # -- biconnected components -------------------------------------------------

    def _block_cut_structure(self):
        """Tarjan's biconnected components (blocks) of the =-edge graph.

        Returns ``(blocks, blocks_of_node)`` where ``blocks`` is a list of edge
        sets (one per biconnected block) and ``blocks_of_node`` maps a node to
        the indices of the blocks containing it.  Constraint graphs are small
        (bounded by the expression universe), so a recursive DFS is fine.
        """
        import sys

        adjacency = self._adjacency()
        sys.setrecursionlimit(max(sys.getrecursionlimit(), 4 * len(adjacency) + 100))

        index: Dict[Node, int] = {}
        lowlink: Dict[Node, int] = {}
        blocks: List[Set[Edge]] = []
        edge_stack: List[Edge] = []
        counter = [0]

        def dfs(node: Node, parent: Optional[Node]) -> None:
            index[node] = lowlink[node] = counter[0]
            counter[0] += 1
            parent_skipped = False
            for neighbour in sorted(adjacency[node]):
                if neighbour == parent and not parent_skipped:
                    # Skip the tree edge back to the parent exactly once
                    # (parallel edges cannot occur: edges are sets).
                    parent_skipped = True
                    continue
                edge = _edge(node, neighbour)
                if neighbour not in index:
                    edge_stack.append(edge)
                    dfs(neighbour, node)
                    lowlink[node] = min(lowlink[node], lowlink[neighbour])
                    if lowlink[neighbour] >= index[node]:
                        # node is an articulation point (or the DFS root):
                        # pop one biconnected block ending with this tree edge.
                        block: Set[Edge] = set()
                        while edge_stack:
                            popped = edge_stack.pop()
                            block.add(popped)
                            if popped == edge:
                                break
                        if block:
                            blocks.append(block)
                elif index[neighbour] < index[node]:
                    # Back edge.
                    edge_stack.append(edge)
                    lowlink[node] = min(lowlink[node], index[neighbour])

        for node in adjacency:
            if node not in index:
                dfs(node, None)
                if edge_stack:  # pragma: no cover - defensive; blocks are popped eagerly
                    blocks.append(set(edge_stack))
                    edge_stack.clear()

        blocks_of_node: Dict[Node, Set[int]] = {}
        for block_id, block in enumerate(blocks):
            for edge in block:
                for member in edge:
                    blocks_of_node.setdefault(member, set()).add(block_id)
        return blocks, blocks_of_node

    # -- non-violating edges ------------------------------------------------------

    def violating_eq_edges(self) -> Set[Edge]:
        """=-edges lying on some simple =-path between a conflict pair."""
        blocks, blocks_of_node = self._block_cut_structure()
        components = self.eq_components()
        conflicts = self.conflict_pairs()

        # Block-cut tree: bipartite graph between block ids and articulation
        # (shared) nodes.  A simple path between two nodes passes exactly
        # through the blocks on the block-cut tree path between them, and
        # within a 2-connected block every edge lies on some simple path
        # between two distinct vertices of that block.
        block_neighbours: Dict[int, Set[Node]] = {
            block_id: {node for edge in block for node in edge} for block_id, block in enumerate(blocks)
        }

        violating: Set[Edge] = set()
        for conflict in conflicts:
            u, v = tuple(conflict)
            if components.get(u) is None or components.get(u) != components.get(v):
                continue
            path_blocks = self._blocks_on_path(u, v, blocks_of_node, block_neighbours)
            for block_id in path_blocks:
                violating |= blocks[block_id]
        return violating

    def _blocks_on_path(
        self,
        source: Node,
        target: Node,
        blocks_of_node: Dict[Node, Set[int]],
        block_neighbours: Dict[int, Set[Node]],
    ) -> Set[int]:
        """Block ids on the (unique) block-cut tree path between two nodes."""
        # BFS over the bipartite block-cut graph, alternating node / block layers.
        from collections import deque

        parents: Dict[Tuple[str, object], Tuple[str, object]] = {}
        start = ("node", source)
        queue = deque([start])
        parents[start] = start
        goal = ("node", target)
        while queue:
            kind, value = queue.popleft()
            if (kind, value) == goal:
                break
            if kind == "node":
                for block_id in blocks_of_node.get(value, ()):  # type: ignore[arg-type]
                    successor = ("block", block_id)
                    if successor not in parents:
                        parents[successor] = (kind, value)
                        queue.append(successor)
            else:
                for node in block_neighbours.get(value, ()):  # type: ignore[arg-type]
                    successor = ("node", node)
                    if successor not in parents:
                        parents[successor] = (kind, value)
                        queue.append(successor)
        if goal not in parents:
            return set()
        path_blocks: Set[int] = set()
        current = goal
        while parents[current] != current:
            kind, value = current
            if kind == "block":
                path_blocks.add(value)  # type: ignore[arg-type]
            current = parents[current]
        return path_blocks

    def non_violating_neq_edges(self) -> Set[Edge]:
        components = self.eq_components()
        result: Set[Edge] = set()
        for edge in self.neq_edges:
            u, v = tuple(edge)
            cu, cv = components.get(u), components.get(v)
            if cu is None or cv is None or cu != cv:
                result.add(edge)
        return result

    def non_violating_eq_edges(self) -> Set[Edge]:
        return self.eq_edges - self.violating_eq_edges()


class ConstraintFilter:
    """Drops non-violating constraints before they reach partial isomorphism types."""

    def __init__(self, universe: ExpressionUniverse, enabled: bool = True):
        self._universe = universe
        self._enabled = enabled
        self._droppable_eq: Set[Edge] = set()
        self._droppable_neq: Set[Edge] = set()

    @classmethod
    def from_conditions(
        cls,
        universe: ExpressionUniverse,
        constraint_conjunctions: Iterable[Sequence[Constraint]],
        enabled: bool = True,
    ) -> "ConstraintFilter":
        """Build the filter from every constraint any transition could add."""
        instance = cls(universe, enabled)
        if not enabled:
            return instance
        graph = ConstraintGraph()
        all_constraints: List[Constraint] = []
        for conjunction in constraint_conjunctions:
            all_constraints.extend(conjunction)
        for left, right, op in all_constraints:
            graph.add_constraint(left, right, op)
            if op == EQ:
                # Congruence-derived edges (x.w = y.w for every shared suffix w).
                for derived_left, derived_right in _derived_pairs(universe, left, right):
                    graph.add_constraint(derived_left, derived_right, EQ)
        non_violating_eq = graph.non_violating_eq_edges()
        non_violating_neq = graph.non_violating_neq_edges()

        for left, right, op in all_constraints:
            key = _edge(str(left), str(right))
            if op == NEQ:
                if key in non_violating_neq:
                    instance._droppable_neq.add(key)
            else:
                derived = [_edge(str(l), str(r)) for l, r in _derived_pairs(universe, left, right)]
                if key in non_violating_eq and all(d in non_violating_eq for d in derived):
                    instance._droppable_eq.add(key)
        return instance

    def is_droppable(self, constraint: Constraint) -> bool:
        if not self._enabled:
            return False
        left, right, op = constraint
        key = _edge(str(left), str(right))
        if op == EQ:
            return key in self._droppable_eq
        return key in self._droppable_neq

    def filter_constraints(self, constraints: Sequence[Constraint]) -> List[Constraint]:
        """The constraints that must actually be recorded."""
        if not self._enabled:
            return list(constraints)
        return [c for c in constraints if not self.is_droppable(c)]

    @property
    def dropped_edge_count(self) -> int:
        return len(self._droppable_eq) + len(self._droppable_neq)


def conjunction_contradicts_bindings(
    constraints: Sequence[Constraint],
    bindings: "Dict[str, object]",
    universe: ExpressionUniverse,
) -> bool:
    """Whether a flattened conjunction contradicts ``var = const`` bindings
    under plain equality reasoning.

    Sound under-approximation of ``extend`` failure: the check unions the
    binding pairs and the conjunction's =-constraints and looks for a class
    holding two distinct constants or a ≠-constraint inside one class.  A
    partial isomorphism type entailing the bindings computes at least this
    much closure when extended with the conjunction, so ``True`` here means
    ``tau.extend(conjunction)`` returns ``None`` on *every* type entailing
    the bindings -- the dataflow pass may drop the conjunction without
    changing the set of symbolic moves.
    """
    parent: Dict[Expression, Expression] = {}

    def find(expr: Expression) -> Expression:
        root = parent.setdefault(expr, expr)
        if root is expr:
            return expr
        root = find(root)
        parent[expr] = root
        return root

    def union(a: Expression, b: Expression) -> None:
        parent[find(a)] = find(b)

    for name in sorted(bindings):
        union(universe.variable(name), universe.add_constant(bindings[name]))
    disequalities: List[Tuple[Expression, Expression]] = []
    for left, right, op in constraints:
        if op == EQ:
            union(left, right)
        else:
            disequalities.append((left, right))
    constant_of: Dict[Expression, ConstExpr] = {}
    for expr in list(parent):
        if isinstance(expr, ConstExpr):
            root = find(expr)
            seen = constant_of.get(root)
            if seen is not None and seen.value != expr.value:
                return True
            constant_of[root] = expr
    for left, right in disequalities:
        if find(left) == find(right):
            return True
    return False


def _derived_pairs(
    universe: ExpressionUniverse, left: Expression, right: Expression
) -> List[Tuple[Expression, Expression]]:
    """All congruence-derived pairs (left.w, right.w) present in the universe."""
    result: List[Tuple[Expression, Expression]] = []
    frontier: List[Tuple[Expression, Expression]] = [(left, right)]
    while frontier:
        current_left, current_right = frontier.pop()
        left_navs = universe.navigations_of(current_left)
        right_navs = universe.navigations_of(current_right)
        for attribute, child_left in left_navs.items():
            child_right = right_navs.get(attribute)
            if child_right is not None:
                result.append((child_left, child_right))
                frontier.append((child_left, child_right))
    return result
