"""Repeated reachability of accepting product states (Section 3.8, Appendix C).

Full LTL-FO verification needs to know whether some *accepting* product state
occurs infinitely often along a symbolic run (an infinite violating run exists
iff that is the case; finite violating runs are folded in by the terminal
stutter step, which turns them into self-loops).

The analysis is layered so that the expensive machinery only runs when needed:

1. If no accepting state is reachable at all, the property is satisfied --
   the ⪯-pruned coverability search of the main phase already answers this.
2. An accepting state whose PSI carries an ω counter is repeatedly reachable:
   the acceleration that produced the ω witnesses a pumpable loop through the
   same partial isomorphism type and Büchi state (Appendix C, step 1).
3. An accepting state of a *closed* local run (the ``__closed__`` marker is
   set) self-loops forever through the terminal stutter step, hence is
   repeatedly reachable.
4. Otherwise the question is decided exactly as in Section 3.8 for the
   monotone-pruning algorithm: a second Karp–Miller search using the classic
   ``≤`` coverage (which, unlike the ⪯-pruned one, yields a coverability set
   on which the standard cycle argument is valid) is run, and an accepting
   state is repeatedly reachable iff it carries an ω counter or lies on a
   cycle of the coverage-successor graph of that coverability set.  This
   replaces the ⪯⁺ re-exploration sketched in Appendix C, which does not
   terminate on specifications whose artifact relations can grow without
   bound; the ``≤``-based search always terminates thanks to acceleration.

Step 4 is preceded by a *violation fast path* (gated by
``VerifierOptions.repeated_violation_fast_path`` and audited by a
differential stress test against the classic re-search): every active node of
the ⪯-pruned main search is a reachable symbolic state (or an ω limit of
reachable states), and the cycle argument is *sound* on any set of reachable
states -- a ≤-coverage cycle through an accepting state can be pumped
forever.  Only certifying satisfaction (no cycle anywhere) needs the complete
≤-coverability set, so the classic re-search runs only when the fast path
finds nothing.

Coverage-successor graphs are built lazily from the accepting states: a cycle
through an accepting state lies entirely inside the subgraph reachable from
it, so successors of states that no accepting state can reach are never
computed (and never counted in ``repeated_phase_states`` -- the Table 3
overhead numbers only reflect work the phase actually needed).

The analyzer reports which accepting nodes of the main search are repeatedly
reachable plus a witness tag ("omega", "terminated" or "cycle") used by the
counterexample builder.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.core.control import SearchControl
from repro.core.coverage import covers_leq
from repro.core.karp_miller import KarpMillerResult, KarpMillerSearch, SearchNode
from repro.core.options import CoverageMode, VerifierOptions
from repro.core.product import ProductState, ProductSystem
from repro.core.stats import SearchStatistics
from repro.core.transitions import CLOSED_MARKER


@dataclass
class RepeatedReachabilityOutcome:
    """Result of the repeated-reachability analysis."""

    #: Node ids (of the main Karp–Miller tree) that are accepting and repeatedly reachable.
    repeated_node_ids: Set[int] = field(default_factory=set)
    #: Why each node is repeatedly reachable: "omega", "terminated" or "cycle".
    witnesses: Dict[int, str] = field(default_factory=dict)
    #: Whether the analysis ran to completion; when False the verdict is unknown.
    completed: bool = True

    @property
    def found_violation(self) -> bool:
        return bool(self.repeated_node_ids)


class RepeatedReachabilityAnalyzer:
    """Decides whether accepting states of the coverability set are repeatedly reachable."""

    def __init__(
        self,
        product: ProductSystem,
        options: VerifierOptions,
        stats: Optional[SearchStatistics] = None,
        control: Optional[SearchControl] = None,
    ):
        self.product = product
        self.options = options
        self.stats = stats or SearchStatistics()
        self.control = control if control is not None else SearchControl()

    def _out_of_time(self) -> bool:
        return self.control.should_stop()

    # ------------------------------------------------------------------ public API

    def analyse(self, result: KarpMillerResult) -> RepeatedReachabilityOutcome:
        start = time.monotonic()
        outcome = RepeatedReachabilityOutcome()
        accepting_nodes = [
            node for node in result.active_nodes() if self.product.is_accepting(node.state)
        ]
        if not accepting_nodes:
            self.stats.repeated_seconds = time.monotonic() - start
            return outcome
        self.control.emit_phase("repeated", accepting_candidates=len(accepting_nodes))

        # Cheap, sound witnesses first: pumpable ω counters and terminal stutter loops.
        remaining: List[SearchNode] = []
        for node in accepting_nodes:
            if node.state.psi.has_omega():
                outcome.repeated_node_ids.add(node.node_id)
                outcome.witnesses[node.node_id] = "omega"
            elif node.state.psi.child_active(CLOSED_MARKER):
                outcome.repeated_node_ids.add(node.node_id)
                outcome.witnesses[node.node_id] = "terminated"
            else:
                remaining.append(node)

        if remaining and not outcome.repeated_node_ids:
            completed = self._cycle_analysis(result, remaining, outcome)
            outcome.completed = completed and not self._out_of_time()
        self.stats.repeated_seconds = time.monotonic() - start
        return outcome

    # ------------------------------------------------------------------ cycle analysis

    def _cycle_analysis(
        self,
        result: KarpMillerResult,
        candidates: Sequence[SearchNode],
        outcome: RepeatedReachabilityOutcome,
    ) -> bool:
        """The classic Section 3.8 analysis over a ``≤``-coverability set."""
        if self.options.coverage_mode is CoverageMode.CLASSIC_LEQ:
            # The main search already used the classic coverage: its active set
            # is a coverability set on which the standard argument applies.
            leq_result = result
            completed = result.completed
        else:
            if self.options.repeated_violation_fast_path:
                # Violation fast path (see the module docstring): a ≤-coverage
                # cycle through an accepting state of the main ⪯-pruned active
                # set already witnesses the violation.
                main_states = [node.state for node in result.active_nodes()]
                accepting_main = {
                    index
                    for index, state in enumerate(main_states)
                    if self.product.is_accepting(state)
                }
                if accepting_main and self._accepting_on_cycle(main_states, accepting_main):
                    node = candidates[0]
                    outcome.repeated_node_ids.add(node.node_id)
                    outcome.witnesses[node.node_id] = "cycle"
                    return True
            if self._out_of_time():
                return False
            self.control.emit_phase("repeated-classic-search")
            # The shared control's deadline/cancellation token bounds the
            # re-search; timeout_seconds stays unset so the re-search cannot
            # extend the original deadline.
            classic_options = self.options.with_(
                state_pruning=False,
                timeout_seconds=None,
                max_states=self.options.max_repeated_states,
            )
            search = KarpMillerSearch(self.product, classic_options, self.control)
            with self.control.span("repeated.classic-search") as span:
                leq_result = search.run()
                span.set_attr("states_explored", search.stats.states_explored)
            self.stats.repeated_phase_states += search.stats.states_explored
            completed = leq_result.completed

        active_states = [node.state for node in leq_result.active_nodes()]
        accepting_present = {
            index
            for index, state in enumerate(active_states)
            if self.product.is_accepting(state)
        }
        if not accepting_present:
            # No accepting state survives in the ≤-coverability set; with a
            # completed search this means no accepting state is repeatedly
            # reachable.
            return completed

        # ω counters and terminal self-loops found by the classic search also
        # witness violations.
        trivially_repeated = any(
            active_states[index].psi.has_omega()
            or active_states[index].psi.child_active(CLOSED_MARKER)
            for index in accepting_present
        )
        if not trivially_repeated:
            trivially_repeated = self._accepting_on_cycle(active_states, accepting_present)

        if trivially_repeated:
            # Report the violation on the main search's accepting nodes (they
            # witness reachability of the accepting Büchi state; the cycle
            # itself lives in the ≤-coverability set).
            node = candidates[0]
            outcome.repeated_node_ids.add(node.node_id)
            outcome.witnesses[node.node_id] = "cycle"
        return completed

    def _accepting_on_cycle(
        self, states: Sequence[ProductState], accepting: Set[int]
    ) -> bool:
        """Whether some accepting state lies on a ≤-coverage cycle.

        Only the subgraph reachable from the accepting states is built (a
        cycle through an accepting state cannot leave it), so the graph/SCC
        pass -- and its ``repeated_phase_states`` counters -- stays
        proportional to the candidate cycles, not to the whole set.
        """
        with self.control.phase("cycle-detection"):
            graph = self._coverage_graph(states, roots=accepting)
            return bool(_states_on_cycles(graph) & accepting)

    def _coverage_graph(
        self, states: Sequence[ProductState], roots: Optional[Iterable[int]] = None
    ) -> Dict[int, Set[int]]:
        """Edges i -> j when some successor of states[i] is ≤-covered by states[j].

        With *roots*, successors are computed on demand, exploring only the
        part of the graph reachable from the roots; without them the full
        graph is materialised.
        """
        # Bucket states by (Büchi state, tau, children) so that cover targets
        # of a successor are found without scanning the whole set.
        buckets: Dict[Tuple, List[int]] = {}
        for index, state in enumerate(states):
            key = (state.buchi_state, state.psi.tau.canonical_key(), state.psi.children)
            buckets.setdefault(key, []).append(index)

        pending: List[int] = list(range(len(states)) if roots is None else roots)
        seen: Set[int] = set(pending)
        graph: Dict[int, Set[int]] = {}
        while pending:
            if self._out_of_time():
                break
            i = pending.pop()
            edges = graph[i] = set()
            for move in self.product.successors(states[i]):
                self.stats.repeated_phase_states += 1
                successor = move.state
                key = (
                    successor.buchi_state,
                    successor.psi.tau.canonical_key(),
                    successor.psi.children,
                )
                for j in buckets.get(key, ()):  # same tau / Büchi state / children
                    if covers_leq(successor.psi, states[j].psi):
                        edges.add(j)
                        if j not in seen:
                            seen.add(j)
                            pending.append(j)
        return graph


def _states_on_cycles(graph: Dict[int, Set[int]]) -> Set[int]:
    """Vertices lying on a (non-trivial or self-loop) cycle, via Tarjan's SCC.

    Iterative (explicit work stack): the graph can hold up to ``max_states``
    vertices, far past CPython's recursion limit.
    """
    index_counter = 0
    index: Dict[int, int] = {}
    lowlink: Dict[int, int] = {}
    stack: List[int] = []
    on_stack: Set[int] = set()
    result: Set[int] = set()

    for root in graph:
        if root in index:
            continue
        index[root] = lowlink[root] = index_counter
        index_counter += 1
        stack.append(root)
        on_stack.add(root)
        work: List[Tuple[int, Iterable[int]]] = [(root, iter(graph.get(root, ())))]
        while work:
            v, successors = work[-1]
            descended = False
            for w in successors:
                if w not in index:
                    index[w] = lowlink[w] = index_counter
                    index_counter += 1
                    stack.append(w)
                    on_stack.add(w)
                    work.append((w, iter(graph.get(w, ()))))
                    descended = True
                    break
                if w in on_stack:
                    lowlink[v] = min(lowlink[v], index[w])
            if descended:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[v])
            if lowlink[v] == index[v]:
                component = []
                while True:
                    w = stack.pop()
                    on_stack.discard(w)
                    component.append(w)
                    if w == v:
                        break
                if len(component) > 1:
                    result.update(component)
                elif component[0] in graph.get(component[0], ()):
                    result.add(component[0])
    return result
