"""Cooperative search control: cancellation tokens and progress events.

Long-running searches (the Karp–Miller main phase, the repeated-reachability
re-search) accept a :class:`SearchControl` that bundles

* a :class:`CancellationToken` — a thread-safe flag plus an optional
  monotonic deadline, checked cooperatively inside the search loops (this
  replaces the ad-hoc ``timeout_seconds`` checks that each phase used to
  re-implement), and
* an event sink — any callable taking a :class:`ProgressEvent` — fed typed
  progress events (phase transitions, states explored, frontier size,
  partial statistics) while the search runs.

The primitives live in :mod:`repro.core` because the search loops consume
them; the user-facing session API that builds on them is :mod:`repro.api`.
"""

from __future__ import annotations

import itertools
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional

#: Stop reasons reported by :meth:`CancellationToken.stop_reason`.
STOP_CANCELLED = "cancelled"
STOP_DEADLINE = "deadline"


class CancellationToken:
    """A thread-safe cooperative cancellation flag with an optional deadline.

    The token never interrupts anything by itself: search loops poll
    :meth:`stop_reason` (or :meth:`should_stop`) at safe points and unwind
    with partial statistics when it fires.  ``cancel()`` may be called from
    any thread, any number of times.

    A token may be *scoped* under a parent (see :meth:`SearchControl.scoped`):
    it then also stops when the parent is cancelled or past its deadline,
    while its own deadline stays private -- this is how a per-``verify``
    ``timeout_seconds`` coexists with a long-lived session token without
    permanently tightening it.

    A token may also carry an *external* pollable backend: any zero-argument
    callable returning truthy once cancellation is requested (for example a
    ``multiprocessing.Event().is_set``, or a closure polling a persistent
    store's ``cancel_requested`` flag).  The backend is consulted on every
    :attr:`cancelled` check, which the search loops already perform once per
    iteration -- this is how a cancel crosses a process boundary without the
    requester holding a reference to the in-process token.
    """

    def __init__(
        self,
        deadline: Optional[float] = None,
        parent: Optional["CancellationToken"] = None,
        external: Optional[Callable[[], bool]] = None,
    ):
        #: Absolute ``time.monotonic()`` deadline, or ``None`` for no deadline.
        self._deadline = deadline
        self._parent = parent
        self._external = external
        self._cancelled = threading.Event()

    @classmethod
    def with_timeout(cls, seconds: Optional[float]) -> "CancellationToken":
        """A token whose deadline is *seconds* from now (``None``: no deadline)."""
        return cls(deadline=None if seconds is None else time.monotonic() + seconds)

    # ------------------------------------------------------------------ state

    def cancel(self) -> None:
        """Request cancellation; idempotent and safe from any thread."""
        self._cancelled.set()

    @property
    def cancelled(self) -> bool:
        """Whether :meth:`cancel` was called here or on an ancestor, or the
        external pollable backend fired (deadline expiry not included)."""
        if self._cancelled.is_set():
            return True
        if self._external is not None and self._external():
            # Latch it: external backends may be expensive to poll (a store
            # query) or may be torn down while the search unwinds.
            self._cancelled.set()
            return True
        return self._parent is not None and self._parent.cancelled

    @property
    def deadline(self) -> Optional[float]:
        return self._deadline

    def tighten_deadline(self, seconds: Optional[float]) -> None:
        """Lower the deadline to *seconds* from now if that is sooner."""
        if seconds is None:
            return
        candidate = time.monotonic() + seconds
        if self._deadline is None or candidate < self._deadline:
            self._deadline = candidate

    def remaining(self) -> Optional[float]:
        """Seconds until the nearest deadline (own or inherited), or ``None``."""
        own = None if self._deadline is None else self._deadline - time.monotonic()
        inherited = self._parent.remaining() if self._parent is not None else None
        if own is None:
            return inherited
        if inherited is None:
            return own
        return min(own, inherited)

    def expired(self) -> bool:
        if self._deadline is not None and time.monotonic() > self._deadline:
            return True
        return self._parent is not None and self._parent.expired()

    def stop_reason(self) -> Optional[str]:
        """``"cancelled"``, ``"deadline"`` or ``None`` (keep going).

        An explicit ``cancel()`` wins over a simultaneously expired deadline,
        so a user-initiated stop is never misreported as a timeout.
        """
        if self.cancelled:
            return STOP_CANCELLED
        if self.expired():
            return STOP_DEADLINE
        return None

    def should_stop(self) -> bool:
        return self.stop_reason() is not None


class RateLimitedPoll:
    """An *external* token backend over an expensive pollable.

    Wraps a zero-argument callable (typically a persistent-store query such
    as ``lambda: store.is_cancel_requested(job_id)``) for use as
    ``CancellationToken(external=...)``.  Search loops consult the external
    backend once per iteration -- far too often for a SQL round trip -- so
    this adapter consults the underlying pollable at most once per
    ``interval`` seconds and answers from the cached value in between.

    Once the pollable returns truthy the result latches True forever (the
    store row may be swept while the search unwinds).  Exceptions from the
    pollable are swallowed and read as "not cancelled": a flaky or
    shutting-down store must never kill a verification run.
    """

    def __init__(self, poll: Callable[[], bool], interval: float = 0.25):
        self._poll = poll
        self._interval = interval
        self._lock = threading.Lock()
        self._next_poll = 0.0  # monotonic stamp of the next allowed poll
        self._value = False

    def __call__(self) -> bool:
        if self._value:
            return True
        with self._lock:
            if self._value:
                return True
            now = time.monotonic()
            if now < self._next_poll:
                return False
            self._next_poll = now + self._interval
        try:
            value = bool(self._poll())
        except Exception:  # noqa: BLE001 - a dead store reads as "keep going"
            return False
        if value:
            self._value = True
        return value


class _NullPhase:
    """Shared no-op context manager: the disabled path of the phase hooks.

    Doubles as the no-op *span* yielded by an untraced ``control.span(...)``,
    so instrumented code can call ``set_attr``/``set_error`` unconditionally.
    """

    __slots__ = ()

    def __enter__(self) -> "_NullPhase":
        return self

    def __exit__(self, *exc_info: Any) -> bool:
        return False

    def set_attr(self, key: str, value: Any) -> None:
        pass

    def set_error(self, message: str, reason: Optional[str] = None) -> None:
        pass


_NULL_PHASE = _NullPhase()


class _DisabledPhaseTimer:
    """The default phase timer: records nothing, allocates nothing.

    ``phase()`` returns a shared no-op context manager, so instrumented hot
    loops pay one method call per hook when profiling is off -- the
    overhead `benchmarks/bench_trace.py` pins below 2%.
    """

    __slots__ = ()
    enabled = False

    def phase(self, name: str) -> _NullPhase:
        return _NULL_PHASE

    def snapshot(self) -> Dict[str, Dict[str, float]]:
        return {}


_NULL_TIMER = _DisabledPhaseTimer()


class _PhaseSlot:
    """Accumulated wall time and entry count for one named phase."""

    __slots__ = ("seconds", "count", "_t0")

    def __init__(self) -> None:
        self.seconds = 0.0
        self.count = 0
        self._t0 = 0.0

    def __enter__(self) -> "_PhaseSlot":
        self._t0 = time.monotonic()
        return self

    def __exit__(self, *exc_info: Any) -> bool:
        self.seconds += time.monotonic() - self._t0
        self.count += 1
        return False


class PhaseTimer:
    """Cheap per-phase wall-time accumulator for the search hot loops.

    ``with timer.phase("successors"): ...`` adds the elapsed monotonic time
    to the named bucket.  One slot object is reused per phase name, so the
    steady-state cost per hook is a dict lookup plus two ``monotonic()``
    calls -- cheap enough for per-node (not per-instruction) placement in
    the Karp-Miller loop.  Not thread-safe by design: one search runs on
    one thread, and each traced run gets its own timer.

    The aggregate lands in ``SearchStatistics.phase_seconds`` (the verifier
    snapshots it at the end of a run) and, when the run is traced, in the
    search span's ``phases`` attribute for the waterfall view.
    """

    __slots__ = ("_slots",)
    enabled = True

    def __init__(self) -> None:
        self._slots: Dict[str, _PhaseSlot] = {}

    def phase(self, name: str) -> _PhaseSlot:
        slot = self._slots.get(name)
        if slot is None:
            slot = self._slots[name] = _PhaseSlot()
        return slot

    def snapshot(self) -> Dict[str, Dict[str, float]]:
        return {
            name: {"seconds": slot.seconds, "count": slot.count}
            for name, slot in self._slots.items()
            if slot.count
        }


class _NullTrace:
    """The default ``trace`` collaborator: every span is the shared no-op."""

    __slots__ = ()
    enabled = False

    def span(self, name: str, **attrs: Any) -> _NullPhase:
        return _NULL_PHASE


_NULL_TRACE = _NullTrace()


@dataclass(frozen=True)
class ProgressEvent:
    """One typed progress event emitted by a search.

    ``kind`` is one of

    * ``"phase"``    -- a phase transition; ``data["phase"]`` names the phase
      entered (``"search"``, ``"repeated"``, ``"verdict"``, ...);
    * ``"progress"`` -- a periodic heartbeat from inside a search loop with
      ``states_explored``, ``frontier`` (worklist size) and ``active``
      (current active-set size);
    * ``"stats"``    -- a partial :class:`~repro.core.stats.SearchStatistics`
      snapshot (``data`` is its ``as_dict()`` form);
    * ``"done"``     -- the run finished; ``data`` carries ``outcome``.

    ``seq`` is a monotonically increasing per-control sequence number, so
    sinks that transport events elsewhere (the HTTP event log) can expose a
    stable cursor.
    """

    kind: str
    data: Dict[str, Any] = field(default_factory=dict)
    seq: int = 0
    timestamp: float = 0.0

    @property
    def level(self) -> str:
        """Log level when the event reaches a log sink: the periodic
        ``progress`` heartbeats are ``debug`` chatter, everything else
        (phase transitions, stats snapshots, the verdict) is ``info``.
        :class:`repro.events.SearchEvent` mirrors this classification."""
        return "debug" if self.kind == "progress" else "info"

    def as_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "seq": self.seq,
            "timestamp": self.timestamp,
            "data": dict(self.data),
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "ProgressEvent":
        return cls(
            kind=payload.get("kind", "progress"),
            data=dict(payload.get("data", {})),
            seq=int(payload.get("seq", 0)),
            timestamp=float(payload.get("timestamp", 0.0)),
        )


#: Anything accepting a :class:`ProgressEvent`; exceptions it raises are
#: swallowed so a broken observer can never kill a verification run.
EventSink = Callable[[ProgressEvent], None]


class SearchControl:
    """The (token, event sink) pair threaded through the search phases.

    A default-constructed control never stops anything and drops all events,
    so the core search code can use it unconditionally::

        control = control or SearchControl()
    """

    def __init__(
        self,
        token: Optional[CancellationToken] = None,
        event_sink: Optional[EventSink] = None,
        progress_interval: int = 1000,
        phase_timer: Optional[PhaseTimer] = None,
        trace: Optional[Any] = None,
    ):
        self.token = token if token is not None else CancellationToken()
        self.event_sink = event_sink
        #: Emit a ``progress`` event every this many explored states.
        self.progress_interval = max(1, progress_interval)
        #: Hot-loop profiling hooks; the defaults are shared no-op objects,
        #: so an untraced control stays allocation-free per hook.  ``trace``
        #: is duck-typed: anything with ``span(name, **attrs)`` returning a
        #: context manager (``repro.obs.TraceScope`` in the traced server).
        self.phase_timer = phase_timer if phase_timer is not None else _NULL_TIMER
        self.trace = trace if trace is not None else _NULL_TRACE
        self._seq = itertools.count(1)

    def scoped(self, timeout_seconds: Optional[float]) -> "SearchControl":
        """A control sharing this one's token, sink and event sequence, with
        an additional *private* deadline *timeout_seconds* from now.

        Used to apply a per-run ``options.timeout_seconds`` without
        permanently tightening a caller-owned token (a session token reused
        across several ``verify`` calls keeps its own deadline intact).
        """
        if timeout_seconds is None:
            return self
        child = SearchControl(
            token=CancellationToken(
                deadline=time.monotonic() + timeout_seconds, parent=self.token
            ),
            event_sink=self.event_sink,
            progress_interval=self.progress_interval,
            phase_timer=self.phase_timer,
            trace=self.trace,
        )
        child._seq = self._seq  # keep event seq monotonic across the pair
        return child

    # --------------------------------------------------------------- profiling

    def phase(self, name: str) -> Any:
        """Context manager accumulating wall time into the named phase bucket.

        Safe (and free) on an untraced control: the default timer returns a
        shared no-op.  Meant for hot-loop placement; for spans with their
        own start/end in the trace waterfall use :meth:`span`.
        """
        return self.phase_timer.phase(name)

    def span(self, name: str, **attrs: Any) -> Any:
        """Context manager opening a trace span nested under the current one.

        No-op (shared singleton, no allocation) unless a traced server
        attached a ``repro.obs.TraceScope``.
        """
        return self.trace.span(name, **attrs)

    # ---------------------------------------------------------------- stopping

    def stop_reason(self) -> Optional[str]:
        return self.token.stop_reason()

    def should_stop(self) -> bool:
        return self.token.should_stop()

    def cancel(self) -> None:
        self.token.cancel()

    # ------------------------------------------------------------------ events

    def emit(self, kind: str, **data: Any) -> None:
        if self.event_sink is None:
            return
        event = ProgressEvent(
            kind=kind, data=data, seq=next(self._seq), timestamp=time.time()
        )
        try:
            self.event_sink(event)
        except Exception:  # noqa: BLE001 - observers must never kill the search
            pass

    def emit_phase(self, phase: str, **data: Any) -> None:
        self.emit("phase", phase=phase, **data)

    def emit_progress(self, states_explored: int, frontier: int, active: int) -> None:
        self.emit(
            "progress",
            states_explored=states_explored,
            frontier=frontier,
            active=active,
        )

    def maybe_emit_progress(self, states_explored: int, frontier: int, active: int) -> None:
        """Emit a heartbeat every ``progress_interval`` explored states."""
        if self.event_sink is not None and states_explored % self.progress_interval == 0:
            self.emit_progress(states_explored, frontier, active)
