"""Counterexample extraction and pretty-printing.

When the verifier finds a violating symbolic run it reports the sequence of
observable services leading from the opening of the task to the repeatedly
reachable accepting state, together with the accumulated constraints of the
partial isomorphism type at each step.  This mirrors the counterexamples the
paper's verifier produces (Section 2.1 discusses an example: property (†) is
violated when the in-stock test is moved inside the ShipItem task).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.core.karp_miller import KarpMillerResult, SearchNode
from repro.core.product import ProductState


@dataclass(frozen=True)
class CounterexampleStep:
    """One step of a violating symbolic run."""

    service: str
    description: str
    buchi_state: int

    def __str__(self) -> str:
        return f"{self.service}: {self.description}"


@dataclass
class Counterexample:
    """A violating symbolic local run (a lasso: a finite stem plus a pumpable end)."""

    steps: List[CounterexampleStep] = field(default_factory=list)
    witness: str = "cycle"

    def services(self) -> List[str]:
        return [step.service for step in self.steps]

    def pretty(self) -> str:
        """A human-readable multi-line rendering of the counterexample."""
        lines = ["Violating symbolic run:"]
        for position, step in enumerate(self.steps):
            lines.append(f"  [{position}] {step.service}")
            lines.append(f"        {step.description}")
        if self.witness == "omega":
            lines.append("  ... the final segment can be pumped forever (ω counter).")
        else:
            lines.append("  ... the final state lies on a cycle and repeats forever.")
        return "\n".join(lines)

    def __len__(self) -> int:
        return len(self.steps)

    def as_dict(self) -> dict:
        """Plain-dict form (used when serializing verification results)."""
        return {
            "witness": self.witness,
            "steps": [
                {
                    "service": step.service,
                    "description": step.description,
                    "buchi_state": step.buchi_state,
                }
                for step in self.steps
            ],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Counterexample":
        return cls(
            steps=[
                CounterexampleStep(
                    service=step["service"],
                    description=step["description"],
                    buchi_state=step.get("buchi_state", 0),
                )
                for step in data.get("steps", ())
            ],
            witness=data.get("witness", "cycle"),
        )


def build_counterexample(
    result: KarpMillerResult, node_id: int, witness: str
) -> Counterexample:
    """The counterexample corresponding to one repeatedly reachable accepting node."""
    steps: List[CounterexampleStep] = []
    for node in result.path_to(node_id):
        steps.append(
            CounterexampleStep(
                service=node.service or "<initial>",
                description=node.state.psi.describe(),
                buchi_state=node.state.buchi_state,
            )
        )
    return Counterexample(steps=steps, witness=witness)
