"""Product of the symbolic transition system with the Büchi automaton of ¬φ.

A product state pairs a partial symbolic instance with a state of the Büchi
automaton built from the *negation* of the LTL-FO property.  A symbolic move
labelled with service σ synchronises with a Büchi transition whose label is
compatible with σ (service propositions) and whose condition propositions can
be satisfied by extending the partial isomorphism type (lazy constraint
accumulation); each minimal extension yields one product successor.

The verifier then reduces property violation to (repeated) reachability of
accepting product states (Problem 21 of the paper).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Hashable, Iterable, List, Optional, Sequence, Set, Tuple

from repro.core.isotypes import Constraint, PartialIsoType
from repro.core.psi import PSI
from repro.core.transitions import SymbolicMove, SymbolicTransitionSystem
from repro.has.conditions import Condition, Not, TrueCond, conjunction
from repro.ltl.buchi import BuchiAutomaton, TransitionLabel
from repro.ltl.ltlfo import LTLFOProperty


@dataclass(frozen=True)
class ProductState:
    """A state of the product search: (partial symbolic instance, Büchi state)."""

    psi: PSI
    buchi_state: int

    def edge_elements(self) -> FrozenSet[Hashable]:
        """The edge-set encoding used by the index structures (Section 3.6).

        Besides the edges of the isomorphism type and of every stored-tuple
        type, the Büchi state and the child stages are included as mandatory
        pseudo-edges so that only states with identical control components are
        returned as coverage candidates.
        """
        elements: Set[Hashable] = set(self.psi.tau.edge_set())
        for (relation, stored_type), _count in self.psi.counters:
            for edge in stored_type.edge_set():
                elements.add((relation, edge))
            elements.add(("has-counter", relation, stored_type.canonical_key()))
        elements.add(("buchi", self.buchi_state))
        for child, active in self.psi.children:
            elements.add(("child", child, active))
        return frozenset(elements)


@dataclass(frozen=True)
class ProductMove:
    """A product transition: service applied, resulting product state."""

    service: str
    state: ProductState


class ProductSystem:
    """Synchronous product of symbolic runs with the Büchi automaton of ¬φ."""

    def __init__(
        self,
        transition_system: SymbolicTransitionSystem,
        automaton: BuchiAutomaton,
        ltl_property: LTLFOProperty,
    ):
        self.transition_system = transition_system
        self.automaton = automaton
        self.ltl_property = ltl_property
        self._condition_props = set(ltl_property.conditions)
        self._label_conditions: Dict[TransitionLabel, Optional[Condition]] = {}

    # ------------------------------------------------------------------ label handling

    def _label_condition(self, label: TransitionLabel) -> Optional[Condition]:
        """The FO condition a snapshot must satisfy for the label's condition propositions.

        Returns ``None`` for labels with no condition propositions (always
        satisfiable without extending the type).
        """
        if label in self._label_conditions:
            return self._label_conditions[label]
        parts: List[Condition] = []
        for proposition in sorted(label.required):
            if proposition in self._condition_props:
                parts.append(self.ltl_property.conditions[proposition])
        for proposition in sorted(label.forbidden):
            if proposition in self._condition_props:
                parts.append(Not(self.ltl_property.conditions[proposition]))
        condition = conjunction(parts) if parts else None
        self._label_conditions[label] = condition
        return condition

    def _service_compatible(self, label: TransitionLabel, service: str) -> bool:
        """Whether the label's service propositions agree with the applied service."""
        for proposition in label.required:
            if proposition not in self._condition_props and proposition != service:
                return False
        for proposition in label.forbidden:
            if proposition not in self._condition_props and proposition == service:
                return False
        return True

    def _synchronise(self, move: SymbolicMove, buchi_source: int) -> List[ProductMove]:
        """All product successors obtained by synchronising a symbolic move."""
        results: List[ProductMove] = []
        seen: Set[Tuple[object, int]] = set()
        for transition in self.automaton.outgoing(buchi_source):
            if not self._service_compatible(transition.label, move.service):
                continue
            condition = self._label_condition(transition.label)
            if condition is None:
                candidates = [move.psi.tau]
            else:
                candidates = self.transition_system.evaluate(move.psi.tau, condition)
            for extended in candidates:
                successor = ProductState(move.psi.with_tau(extended), transition.target)
                key = (successor.psi.tau.canonical_key(), transition.target,
                       successor.psi.counters, successor.psi.children)
                if key in seen:
                    continue
                seen.add(key)
                results.append(ProductMove(move.service, successor))
        return results

    # ------------------------------------------------------------------ search interface

    def initial_states(self) -> List[ProductMove]:
        """Product states reachable by the opening service of the verified task."""
        results: List[ProductMove] = []
        for move in self.transition_system.initial_moves():
            for initial in self.automaton.initial_states:
                results.extend(self._synchronise(move, initial))
        return results

    def successors(self, state: ProductState) -> List[ProductMove]:
        """All product successors of a product state."""
        results: List[ProductMove] = []
        for move in self.transition_system.successors(state.psi):
            results.extend(self._synchronise(move, state.buchi_state))
        return results

    def is_accepting(self, state: ProductState) -> bool:
        return state.buchi_state in self.automaton.accepting_states
