"""Configuration options of the verifier.

The options mirror the optimizations evaluated in Section 4 of the paper, so
the benchmark harness can toggle each one independently:

* ``state_pruning``          -- the novel ⪯-based pruning of Section 3.5 (SP);
  when disabled the search falls back to the classic ``≤`` coverage of the
  monotone-pruning Karp–Miller algorithm (Section 3.4).
* ``data_structure_support`` -- the Trie / inverted-list candidate indexes of
  Section 3.6 (DSS); when disabled candidate sets are computed by linear scan.
* ``static_analysis``        -- the constraint-graph analysis of Section 3.7 (SA).
* ``monotone_pruning``       -- the Reynier–Servais active-set pruning of
  Section 3.4; disabling it yields the plain Karp–Miller tree (Algorithm 1),
  which is only practical on tiny specifications and exists mainly for
  differential testing.
* ``check_repeated_reachability`` -- the full LTL-FO semantics over infinite
  runs (Section 3.8); when disabled a property is reported violated as soon as
  an accepting Büchi state is reachable at all (used to measure the overhead
  of the repeated-reachability module).
* ``use_artifact_relations`` -- when disabled, artifact-relation updates are
  ignored (the VERIFAS-NoSet configuration of Table 2).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, fields, replace
from typing import Any, Dict, Mapping, Optional


class CoverageMode(enum.Enum):
    """Which coverage relation the search uses for pruning and acceleration."""

    CLASSIC_LEQ = "leq"
    PRECEQ = "preceq"


@dataclass(frozen=True)
class VerifierOptions:
    """Tunable options of :class:`repro.core.Verifier`."""

    state_pruning: bool = True
    data_structure_support: bool = True
    static_analysis: bool = True
    monotone_pruning: bool = True
    check_repeated_reachability: bool = True
    use_artifact_relations: bool = True
    #: The PR 1 violation fast path of the repeated-reachability phase: look
    #: for a ≤-coverage cycle through an accepting state on the main ⪯-pruned
    #: active set before falling back to the classic Section 3.8 re-search.
    #: Sound (the cycle argument only needs reachable states) and audited by a
    #: differential stress test against the classic re-search; the switch
    #: exists so the audit can force the classic path and so the fast path can
    #: be disabled in the field without a code change.
    repeated_violation_fast_path: bool = True
    #: The pre-search pruning pass fed by :mod:`repro.analysis` static facts:
    #: children whose opening guard is statically unsatisfiable are skipped
    #: during successor generation, and trivially-decided properties
    #: short-circuit before the Karp-Miller search.  Every consumed fact is a
    #: sound under-approximation (see ``repro.analysis.satisfiability``), so
    #: verdicts are identical with the pass on or off -- audited by a
    #: differential test; the switch lets the audit (and the field, via
    #: ``REPRO_STATIC_PRUNING=0``) force the unpruned search.
    static_pruning: bool = True
    #: The in-search dataflow pruning pass fed by
    #: :mod:`repro.analysis.dataflow` facts: services dead under constant
    #: propagation are skipped during successor generation, flattened
    #: conjunctions contradicting the task's constant environment are dropped
    #: before symbolic evaluation, and child openings whose guard is dead
    #: under the environment are skipped.  Every consumed fact only removes
    #: work that provably yields zero symbolic moves, so verdicts *and*
    #: explored-state counts are identical with the pass on or off -- audited
    #: by the 4-way differential sweep; kill-switches are
    #: ``--no-dataflow-pruning`` and ``REPRO_DATAFLOW_PRUNING=0``.
    dataflow_pruning: bool = True

    #: Hard limit on the number of product states the search may materialise.
    max_states: int = 200_000
    #: Wall-clock timeout in seconds (``None`` disables the timeout).
    timeout_seconds: Optional[float] = None
    #: Hard limit on the states explored by the repeated-reachability phase.
    max_repeated_states: int = 100_000

    @property
    def coverage_mode(self) -> CoverageMode:
        return CoverageMode.PRECEQ if self.state_pruning else CoverageMode.CLASSIC_LEQ

    def with_(self, **changes) -> "VerifierOptions":
        """A copy of the options with the given fields replaced."""
        return replace(self, **changes)

    def as_dict(self) -> Dict[str, Any]:
        """Canonical, JSON-compatible dict form (used by spec files and the
        result cache of :mod:`repro.service`).

        Fields added after the v1 options schema are emitted only when they
        differ from their default: the canonical dict feeds the content
        fingerprint, and emitting a new always-present key would silently
        orphan every previously persisted result (readers default missing
        keys, so omission is lossless).
        """
        data = {f.name: getattr(self, f.name) for f in fields(self)}
        if data["repeated_violation_fast_path"] is True:
            del data["repeated_violation_fast_path"]
        if data["static_pruning"] is True:
            del data["static_pruning"]
        if data["dataflow_pruning"] is True:
            del data["dataflow_pruning"]
        return data

    @classmethod
    def known_keys(cls) -> set:
        """Every accepted option key (including defaults omitted by
        :meth:`as_dict`); used by the HTTP API's unknown-key validation."""
        return {f.name for f in fields(cls)}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "VerifierOptions":
        """Rebuild options from :meth:`as_dict` output; unknown keys are ignored."""
        known = {f.name for f in fields(cls)}
        return cls(**{key: value for key, value in data.items() if key in known})

    @classmethod
    def all_optimizations(cls) -> "VerifierOptions":
        """The default, fully optimised configuration (the paper's VERIFAS)."""
        return cls()

    @classmethod
    def no_artifact_relations(cls) -> "VerifierOptions":
        """The VERIFAS-NoSet configuration of Table 2."""
        return cls(use_artifact_relations=False)
