"""Index structures for fast subset / superset candidate queries (Section 3.6).

Every time the search visits a new product state it must answer two queries
against the set of *active* states:

1. which active states are covered by the new one (candidates for pruning), and
2. is the new state covered by some active state (can it be discarded)?

Both reduce, as a necessary condition, to subset / superset tests between the
states' edge sets ``E(I)`` (the edges of the isomorphism type plus the edges of
every stored-tuple type with a positive counter, plus the Büchi state and the
child stages encoded as mandatory pseudo-edges).  The paper uses a Trie for
superset queries and inverted lists for subset queries; both are implemented
here over integer-encoded edge sets.  The precise ⪯ test is then run only on
the returned candidates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Generic, Hashable, Iterable, List, Optional, Set, Tuple, TypeVar

ItemId = TypeVar("ItemId", bound=Hashable)


class EdgeInterner:
    """Assigns stable small integers to (hashable) edge descriptors."""

    def __init__(self) -> None:
        self._ids: Dict[Hashable, int] = {}

    def intern(self, edge: Hashable) -> int:
        if edge not in self._ids:
            self._ids[edge] = len(self._ids)
        return self._ids[edge]

    def intern_set(self, edges: Iterable[Hashable]) -> FrozenSet[int]:
        return frozenset(self.intern(edge) for edge in edges)

    def __len__(self) -> int:
        return len(self._ids)


class InvertedListIndex(Generic[ItemId]):
    """Find stored sets that are *subsets* of a query set.

    For every element we keep the list of stored sets containing it; a stored
    set is a subset of the query iff the number of its elements hit by the
    query equals its size.  The empty stored set is a subset of everything.
    """

    def __init__(self) -> None:
        self._sizes: Dict[ItemId, int] = {}
        self._postings: Dict[int, Set[ItemId]] = {}
        self._empty: Set[ItemId] = set()

    def add(self, item: ItemId, elements: FrozenSet[int]) -> None:
        self._sizes[item] = len(elements)
        if not elements:
            self._empty.add(item)
        for element in elements:
            self._postings.setdefault(element, set()).add(item)

    def remove(self, item: ItemId, elements: FrozenSet[int]) -> None:
        self._sizes.pop(item, None)
        self._empty.discard(item)
        for element in elements:
            self._postings.get(element, set()).discard(item)

    def subsets_of(self, query: FrozenSet[int]) -> Set[ItemId]:
        """All stored items whose element set is a subset of *query*."""
        hits: Dict[ItemId, int] = {}
        for element in query:
            for item in self._postings.get(element, ()):
                hits[item] = hits.get(item, 0) + 1
        result = {item for item, count in hits.items() if count == self._sizes.get(item, -1)}
        result |= self._empty
        return result


class _TrieNode:
    __slots__ = ("children", "items")

    def __init__(self) -> None:
        self.children: Dict[int, "_TrieNode"] = {}
        self.items: Set = set()


class TrieIndex(Generic[ItemId]):
    """Find stored sets that are *supersets* of a query set.

    Sets are stored as sorted sequences of element ids in a trie.  A stored
    set is a superset of the query iff a root-to-leaf path contains every
    query element; the search walks the trie, skipping non-query elements and
    matching query elements in increasing order.
    """

    def __init__(self) -> None:
        self._root = _TrieNode()
        self._elements: Dict[ItemId, Tuple[int, ...]] = {}

    def add(self, item: ItemId, elements: FrozenSet[int]) -> None:
        ordered = tuple(sorted(elements))
        self._elements[item] = ordered
        node = self._root
        for element in ordered:
            node = node.children.setdefault(element, _TrieNode())
        node.items.add(item)

    def remove(self, item: ItemId, elements: FrozenSet[int]) -> None:
        ordered = self._elements.pop(item, None)
        if ordered is None:
            return
        node = self._root
        path: List[Tuple[_TrieNode, int]] = []
        for element in ordered:
            child = node.children.get(element)
            if child is None:
                return
            path.append((node, element))
            node = child
        node.items.discard(item)
        # Prune empty branches.
        for parent, element in reversed(path):
            child = parent.children[element]
            if not child.items and not child.children:
                del parent.children[element]
            else:
                break

    def supersets_of(self, query: FrozenSet[int]) -> Set[ItemId]:
        """All stored items whose element set is a superset of *query*."""
        ordered_query = tuple(sorted(query))
        result: Set[ItemId] = set()

        def search(node: _TrieNode, query_position: int) -> None:
            if query_position == len(ordered_query):
                self._collect(node, result)
                return
            needed = ordered_query[query_position]
            for element, child in node.children.items():
                if element == needed:
                    search(child, query_position + 1)
                elif element < needed:
                    # Skip elements smaller than the next needed one; larger
                    # elements can never lead to a match because sets are sorted.
                    search(child, query_position)
            return

        search(self._root, 0)
        return result

    def _collect(self, node: _TrieNode, result: Set[ItemId]) -> None:
        result.update(node.items)
        for child in node.children.values():
            self._collect(child, result)


@dataclass
class ActiveStateIndex(Generic[ItemId]):
    """Combined index over the active states of the search (Section 3.6).

    ``candidates_covering(query)`` returns items whose edge set is a subset of
    the query's (necessary for ``query ⪯ item``); ``candidates_covered(query)``
    returns items whose edge set is a superset (necessary for ``item ⪯ query``).
    """

    interner: EdgeInterner = field(default_factory=EdgeInterner)
    subset_index: InvertedListIndex = field(default_factory=InvertedListIndex)
    superset_index: TrieIndex = field(default_factory=TrieIndex)
    _edge_sets: Dict[Hashable, FrozenSet[int]] = field(default_factory=dict)

    def add(self, item: ItemId, edges: Iterable[Hashable]) -> None:
        encoded = self.interner.intern_set(edges)
        self._edge_sets[item] = encoded
        self.subset_index.add(item, encoded)
        self.superset_index.add(item, encoded)

    def remove(self, item: ItemId) -> None:
        encoded = self._edge_sets.pop(item, None)
        if encoded is None:
            return
        self.subset_index.remove(item, encoded)
        self.superset_index.remove(item, encoded)

    def __contains__(self, item: object) -> bool:
        return item in self._edge_sets

    def __len__(self) -> int:
        return len(self._edge_sets)

    def items(self) -> Tuple[ItemId, ...]:
        return tuple(self._edge_sets)

    def candidates_covering(self, edges: Iterable[Hashable]) -> Set[ItemId]:
        """Items I' with E(I') ⊆ E(query): necessary condition for query ⪯ I'."""
        encoded = self.interner.intern_set(edges)
        return self.subset_index.subsets_of(encoded)

    def candidates_covered_by(self, edges: Iterable[Hashable]) -> Set[ItemId]:
        """Items I' with E(I') ⊇ E(query): necessary condition for I' ⪯ query."""
        encoded = self.interner.intern_set(edges)
        return self.superset_index.supersets_of(encoded)
