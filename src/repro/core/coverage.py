"""Coverage relations between partial symbolic instances.

Three relations are used by the search (Sections 3.3–3.5 and Appendix C):

* ``covers_leq(I, I')``      -- the classic VASS ordering ``I ≤ I'``: identical
  partial isomorphism type and child stages, and pointwise smaller counters.
* ``covers_preceq(I, I')``   -- the paper's novel ``I ⪯ I'``: the type of
  ``I'`` is less restrictive than the type of ``I`` and the stored tuples of
  ``I`` can be injectively mapped onto stored tuples of ``I'`` with less
  restrictive types (checked via bipartite flow feasibility).
* ``covers_preceq_plus``     -- the restriction ``⪯⁺`` of Appendix C used in
  the second (repeated-reachability) search phase: ``I = I'`` or ``I ⪯ I'``
  with strict slack on some counter.

All three require equal Büchi components; that check lives in the product
layer, these functions only compare PSIs (type, counters, child stages).
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from repro.core.maxflow import feasible_assignment
from repro.core.psi import PSI, counter_leq
from repro.vass.vass import OMEGA


def covers_leq(covered: PSI, covering: PSI) -> bool:
    """The classic ordering ``covered ≤ covering`` (Section 3.3)."""
    if covered.children != covering.children:
        return False
    if covered.tau != covering.tau:
        return False
    covering_counters = covering.counter_map()
    for key, value in covered.counters:
        if not counter_leq(value, covering_counters.get(key, 0)):
            return False
    return True


def _counter_flow_feasible(covered: PSI, covering: PSI, require_slack: bool) -> bool:
    """Flow feasibility between the stored-tuple multisets of the two PSIs."""
    covered_items = list(covered.counters)
    covering_items = list(covering.counters)
    if not covered_items:
        if not require_slack:
            return True
        return bool(covering_items)
    supplies = [value for _key, value in covered_items]
    capacities = [value for _key, value in covering_items]
    edges: Set[Tuple[int, int]] = set()
    for i, ((relation_i, type_i), _) in enumerate(covered_items):
        for j, ((relation_j, type_j), _) in enumerate(covering_items):
            if relation_i != relation_j:
                continue
            # A stored tuple of type τ_S may be mapped onto a slot of the less
            # restrictive type τ'_S, i.e. τ_S |= τ'_S.
            if type_i.entails(type_j):
                edges.add((i, j))
    return feasible_assignment(supplies, capacities, edges, require_slack=require_slack)


def covers_preceq(covered: PSI, covering: PSI) -> bool:
    """The paper's ``covered ⪯ covering`` (Definition 22)."""
    if covered.children != covering.children:
        return False
    if not covered.tau.entails(covering.tau):
        return False
    return _counter_flow_feasible(covered, covering, require_slack=False)


def covers_preceq_plus(covered: PSI, covering: PSI) -> bool:
    """The ``⪯⁺`` relation of Appendix C (Definition 31)."""
    if covered == covering:
        return True
    if covered.children != covering.children:
        return False
    if not covered.tau.entails(covering.tau):
        return False
    return _counter_flow_feasible(covered, covering, require_slack=True)
