"""The top-level VERIFAS verifier.

Usage::

    from repro import Verifier, VerifierOptions
    from repro.ltl import LTLFOProperty, parse_ltl

    verifier = Verifier(artifact_system, VerifierOptions())
    result = verifier.verify(ltl_fo_property)
    if result.violated:
        print(result.counterexample.pretty())

Verification follows the pipeline of Section 3: the LTL-FO property is
negated, translated to a Büchi automaton, the product with the symbolic
transition system of the task is explored with the (optimised) Karp–Miller
search, and the property is violated iff an accepting product state is
repeatedly reachable (finite local runs are folded in via the terminal stutter
step).
"""

from __future__ import annotations

import enum
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.control import STOP_CANCELLED, STOP_DEADLINE, SearchControl
from repro.core.counterexample import Counterexample, build_counterexample
from repro.core.karp_miller import KarpMillerResult, KarpMillerSearch
from repro.core.options import VerifierOptions
from repro.core.product import ProductSystem
from repro.core.repeated import RepeatedReachabilityAnalyzer
from repro.core.stats import SearchStatistics
from repro.core.transitions import SymbolicTransitionSystem
from repro.has.artifact_system import ArtifactSystem
from repro.ltl.buchi import ltl_to_buchi
from repro.ltl.ltlfo import LTLFOProperty


class VerificationOutcome(enum.Enum):
    """The verdict of a verification run."""

    SATISFIED = "satisfied"
    VIOLATED = "violated"
    UNKNOWN = "unknown"


@dataclass
class VerificationResult:
    """Verdict, statistics and (when violated) a counterexample."""

    outcome: VerificationOutcome
    property_name: str
    task: str
    stats: SearchStatistics
    counterexample: Optional[Counterexample] = None

    @property
    def satisfied(self) -> bool:
        return self.outcome is VerificationOutcome.SATISFIED

    @property
    def violated(self) -> bool:
        return self.outcome is VerificationOutcome.VIOLATED

    @property
    def unknown(self) -> bool:
        return self.outcome is VerificationOutcome.UNKNOWN

    def summary(self) -> str:
        return (
            f"{self.property_name} on task {self.task}: {self.outcome.value} "
            f"({self.stats.states_explored} states, {self.stats.total_seconds:.3f}s)"
        )

    def as_dict(self) -> Dict[str, object]:
        """JSON-compatible dict form (used by the CLI, spec tooling and the
        :mod:`repro.service` result cache)."""
        return {
            "outcome": self.outcome.value,
            "property_name": self.property_name,
            "task": self.task,
            "stats": self.stats.as_dict(),
            "counterexample": (
                self.counterexample.as_dict() if self.counterexample else None
            ),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "VerificationResult":
        counterexample_data = data.get("counterexample")
        return cls(
            outcome=VerificationOutcome(data["outcome"]),
            property_name=data["property_name"],
            task=data["task"],
            stats=SearchStatistics.from_dict(data.get("stats", {})),
            counterexample=(
                Counterexample.from_dict(counterexample_data)
                if counterexample_data
                else None
            ),
        )


class Verifier:
    """Verifies LTL-FO properties of tasks of a HAS* specification."""

    def __init__(self, system: ArtifactSystem, options: Optional[VerifierOptions] = None):
        self.system = system
        self.options = options or VerifierOptions()

    # ------------------------------------------------------------------ public API

    def verify(
        self,
        ltl_property: LTLFOProperty,
        control: Optional[SearchControl] = None,
    ) -> VerificationResult:
        """Check whether every local run of the property's task satisfies the property.

        *control* (see :class:`repro.core.control.SearchControl`) carries a
        cooperative :class:`~repro.core.control.CancellationToken` and an
        event sink; a cancelled or deadline-expired run returns ``UNKNOWN``
        with the partial statistics gathered so far.  ``options.timeout_seconds``
        folds into the control's deadline, so both limits apply.
        """
        # Scope the per-verify timeout privately: a caller-owned control can
        # be reused across verify() calls, each getting the full timeout.
        control = (control if control is not None else SearchControl()).scoped(
            self.options.timeout_seconds
        )
        started = time.monotonic()
        task_name = ltl_property.task
        if not self.system.has_task(task_name):
            raise ValueError(f"property refers to unknown task {task_name!r}")

        static_facts = None
        if self.options.static_pruning:
            from repro.analysis import compute_static_facts

            static_facts = compute_static_facts(self.system, (ltl_property,))

        dataflow_facts = None
        if self.options.dataflow_pruning:
            from repro.analysis import compute_dataflow_facts

            with control.span("verify.dataflow", property=ltl_property.name, task=task_name):
                dataflow_facts = compute_dataflow_facts(self.system)

        with control.span("verify.setup", property=ltl_property.name, task=task_name):
            transition_system = SymbolicTransitionSystem(
                self.system, task_name, ltl_property, self.options,
                static_facts=static_facts, dataflow_facts=dataflow_facts,
            )
            ltl_property.validate_against(
                self.system.task(task_name).variable_names,
                transition_system.observable_services,
            )

            # Trivially-decided properties (repro.analysis): the verdict is
            # already known to coincide with what the search would report
            # after exploring nothing, so skip the Büchi construction and the
            # search entirely.  Checked only after the same setup validation
            # the unpruned path performs, so error behaviour is identical.
            if (
                static_facts is not None
                and static_facts.property_verdicts.get(ltl_property.name) == "satisfied"
            ):
                return self._trivial_result(ltl_property, task_name, started, control)

            # The verifier searches for runs of the *negated* property.
            negated = ltl_property.formula.negated()
            automaton = ltl_to_buchi(
                negated, extra_propositions=transition_system.observable_services
            )

            product = ProductSystem(transition_system, automaton, ltl_property)
        control.emit_phase("search", property=ltl_property.name, task=task_name)
        search = KarpMillerSearch(product, self.options, control)
        with control.span("verify.search") as search_span:
            result = search.run()
            search_span.set_attr("states_explored", search.stats.states_explored)
            search_span.set_attr("phases", control.phase_timer.snapshot())
        stats = search.stats
        stats.constraints_dropped = transition_system.constraint_filter.dropped_edge_count

        with control.span("verify.verdict"):
            outcome, counterexample = self._verdict(product, result, stats, control)
        # After the verdict: the repeated-reachability phase also drives the
        # transition system, so the dataflow counters are only final here.
        stats.dataflow_services_skipped = transition_system.dataflow_services_skipped
        stats.dataflow_conjunctions_dropped = transition_system.dataflow_conjunctions_dropped
        stats.total_seconds = time.monotonic() - started
        if control.phase_timer.enabled:
            stats.phase_seconds = control.phase_timer.snapshot()
        control.emit("stats", **stats.as_dict())
        control.emit("done", outcome=outcome.value)
        return VerificationResult(
            outcome=outcome,
            property_name=ltl_property.name,
            task=task_name,
            stats=stats,
            counterexample=counterexample,
        )

    def _trivial_result(
        self,
        ltl_property: LTLFOProperty,
        task_name: str,
        started: float,
        control: SearchControl,
    ) -> VerificationResult:
        """A SATISFIED result decided by static analysis alone (zero states
        explored), emitting the same terminal events as a searched run."""
        stats = SearchStatistics()
        stats.total_seconds = time.monotonic() - started
        if control.phase_timer.enabled:
            stats.phase_seconds = control.phase_timer.snapshot()
        control.emit("stats", **stats.as_dict())
        control.emit("done", outcome=VerificationOutcome.SATISFIED.value)
        return VerificationResult(
            outcome=VerificationOutcome.SATISFIED,
            property_name=ltl_property.name,
            task=task_name,
            stats=stats,
        )

    def verify_all(self, properties: Sequence[LTLFOProperty]) -> List[VerificationResult]:
        """Verify a collection of properties, one result per property."""
        return [self.verify(ltl_property) for ltl_property in properties]

    # ------------------------------------------------------------------ verdict

    def _verdict(
        self,
        product: ProductSystem,
        result: KarpMillerResult,
        stats: SearchStatistics,
        control: Optional[SearchControl] = None,
    ) -> Tuple[VerificationOutcome, Optional[Counterexample]]:
        control = control if control is not None else SearchControl()
        accepting_nodes = [
            node for node in result.nodes if product.is_accepting(node.state)
        ]

        if not self.options.check_repeated_reachability:
            # Reachability-only mode (used to measure the overhead of the
            # repeated-reachability module): any reachable accepting state is
            # reported as a violation.
            if accepting_nodes:
                node = accepting_nodes[0]
                return (
                    VerificationOutcome.VIOLATED,
                    build_counterexample(result, node.node_id, "reachable"),
                )
            if not result.completed:
                return VerificationOutcome.UNKNOWN, None
            return VerificationOutcome.SATISFIED, None

        analyzer = RepeatedReachabilityAnalyzer(product, self.options, stats, control)
        with control.span("verify.repeated", accepting=len(accepting_nodes)):
            repeated = analyzer.analyse(result)
        if repeated.found_violation:
            node_id = min(repeated.repeated_node_ids)
            witness = repeated.witnesses.get(node_id, "cycle")
            return VerificationOutcome.VIOLATED, build_counterexample(result, node_id, witness)
        if not result.completed or not repeated.completed:
            reason = control.stop_reason()
            stats.timed_out = stats.timed_out or reason == STOP_DEADLINE
            stats.cancelled = stats.cancelled or reason == STOP_CANCELLED
            return VerificationOutcome.UNKNOWN, None
        return VerificationOutcome.SATISFIED, None
