"""Partial symbolic instances (Definitions 19 and 30).

A partial symbolic instance (PSI) of a task bundles

* ``tau``       -- the partial isomorphism type of the current artifact tuple,
* ``counters``  -- for every artifact relation of the task and every stored
  tuple type, how many stored tuples share that type (values in ℕ ∪ {ω}),
* ``children``  -- the active/inactive status of each child task (the r̄
  component of Definition 30).

PSIs are immutable and hashable; the search layer wraps them together with a
Büchi automaton state into product states.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Mapping, Optional, Tuple, Union

from repro.core.isotypes import PartialIsoType
from repro.vass.vass import OMEGA

CounterValue = Union[int, object]  # int or OMEGA
CounterKey = Tuple[str, PartialIsoType]  # (artifact relation name, stored tuple type)


def counter_leq(left: CounterValue, right: CounterValue) -> bool:
    """``left <= right`` over ℕ ∪ {ω}."""
    if right is OMEGA:
        return True
    if left is OMEGA:
        return False
    return left <= right


def counter_add(value: CounterValue, delta: int) -> CounterValue:
    """Addition over ℕ ∪ {ω} (ω is absorbing)."""
    if value is OMEGA:
        return OMEGA
    return value + delta


@dataclass(frozen=True)
class PSI:
    """An immutable partial symbolic instance."""

    tau: PartialIsoType
    counters: Tuple[Tuple[CounterKey, CounterValue], ...] = ()
    children: Tuple[Tuple[str, bool], ...] = ()

    # -- construction helpers -------------------------------------------------

    @staticmethod
    def make(
        tau: PartialIsoType,
        counters: Optional[Mapping[CounterKey, CounterValue]] = None,
        children: Optional[Mapping[str, bool]] = None,
    ) -> "PSI":
        """Normalised constructor: zero counters dropped, deterministic ordering."""
        counter_items: Tuple[Tuple[CounterKey, CounterValue], ...] = ()
        if counters:
            kept = {k: v for k, v in counters.items() if v is OMEGA or v > 0}
            counter_items = tuple(
                sorted(kept.items(), key=lambda item: (item[0][0], str(item[0][1].canonical_key())))
            )
        child_items: Tuple[Tuple[str, bool], ...] = ()
        if children:
            child_items = tuple(sorted(children.items()))
        return PSI(tau, counter_items, child_items)

    # -- counters --------------------------------------------------------------

    def counter_map(self) -> Dict[CounterKey, CounterValue]:
        return dict(self.counters)

    def positive_keys(self) -> Tuple[CounterKey, ...]:
        """The keys with a positive (or ω) count -- ``pos(c̄)`` of the paper."""
        return tuple(key for key, _value in self.counters)

    def count(self, key: CounterKey) -> CounterValue:
        for existing, value in self.counters:
            if existing == key:
                return value
        return 0

    def total_stored(self) -> CounterValue:
        """Total number of stored tuples (ω when any counter is ω)."""
        total = 0
        for _key, value in self.counters:
            if value is OMEGA:
                return OMEGA
            total += value
        return total

    def has_omega(self) -> bool:
        return any(value is OMEGA for _key, value in self.counters)

    def with_counter_delta(self, key: CounterKey, delta: int) -> Optional["PSI"]:
        """A new PSI with ``counters[key] += delta``; ``None`` if it would go negative."""
        counters = self.counter_map()
        current = counters.get(key, 0)
        updated = counter_add(current, delta)
        if updated is not OMEGA and updated < 0:
            return None
        counters[key] = updated
        return PSI.make(self.tau, counters, self.child_map())

    def with_tau(self, tau: PartialIsoType) -> "PSI":
        return PSI.make(tau, self.counter_map(), self.child_map())

    def with_counters(self, counters: Mapping[CounterKey, CounterValue]) -> "PSI":
        return PSI.make(self.tau, counters, self.child_map())

    # -- children ----------------------------------------------------------------

    def child_map(self) -> Dict[str, bool]:
        return dict(self.children)

    def child_active(self, child: str) -> bool:
        return dict(self.children).get(child, False)

    def any_child_active(self) -> bool:
        return any(active for _child, active in self.children)

    def with_child(self, child: str, active: bool) -> "PSI":
        children = self.child_map()
        children[child] = active
        return PSI.make(self.tau, self.counter_map(), children)

    # -- misc ---------------------------------------------------------------------

    def describe(self) -> str:
        """A human-readable summary (used by counterexample printing)."""
        parts = [repr(self.tau)]
        for (relation, stored_type), value in self.counters:
            count = "ω" if value is OMEGA else str(value)
            parts.append(f"{relation}[{count} × {stored_type!r}]")
        active = [child for child, is_active in self.children if is_active]
        if active:
            parts.append(f"active children: {', '.join(active)}")
        return "; ".join(parts)
