"""Navigation expressions (Section 3.2).

An *expression* is either a constant occurring in the specification or the
property, or a navigation chain ``x.F1.F2...A`` that starts at an id-typed
artifact variable (or artifact-relation attribute) and follows foreign keys of
the read-only database, optionally ending in a non-key attribute.  Because the
database schema is acyclic, the set ``E`` of all expressions is finite.

The :class:`ExpressionUniverse` materialises this finite set for one task
(plus the global variables of the property under verification) and provides
typed navigation, which the partial-isomorphism-type machinery relies on for
congruence closure (if ``e ~ e'`` then ``e.A ~ e'.A``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple, Union

from repro.has.schema import DatabaseSchema
from repro.has.types import IdType, VALUE, ValueType, VarType


@dataclass(frozen=True)
class ConstExpr:
    """A constant expression (``None`` is the ``null`` constant)."""

    value: Union[str, int, float, None]

    @property
    def is_null(self) -> bool:
        return self.value is None

    def __str__(self) -> str:
        if self.value is None:
            return "null"
        if isinstance(self.value, str):
            return f'"{self.value}"'
        return str(self.value)


@dataclass(frozen=True)
class NavExpr:
    """A navigation expression: a root variable name plus a path of attribute names.

    ``NavExpr("cust_id", ())`` is the variable itself;
    ``NavExpr("cust_id", ("record", "status"))`` navigates the ``record``
    foreign key and then reads the ``status`` attribute.
    """

    root: str
    path: Tuple[str, ...] = ()

    def child(self, attribute: str) -> "NavExpr":
        return NavExpr(self.root, self.path + (attribute,))

    @property
    def is_variable(self) -> bool:
        return not self.path

    def __str__(self) -> str:
        return ".".join((self.root,) + self.path)


Expression = Union[ConstExpr, NavExpr]

#: The null constant expression.
NULL_EXPR = ConstExpr(None)


class ExpressionUniverse:
    """The finite set of expressions for one collection of typed roots.

    ``roots`` maps a root name (artifact variable, global property variable or
    artifact-relation attribute) to its type.  The universe contains, for each
    id-typed root, every navigation expression obtainable by following foreign
    keys of the (acyclic) schema, plus every constant registered with
    :meth:`add_constant`.
    """

    def __init__(self, schema: DatabaseSchema, roots: Dict[str, VarType]):
        self.schema = schema
        self._roots = dict(roots)
        self._types: Dict[Expression, VarType] = {}
        self._navigations: Dict[Expression, Dict[str, Expression]] = {}
        self._constants: List[ConstExpr] = []
        self._expressions: List[Expression] = []
        for root, var_type in self._roots.items():
            self._add_navigations(NavExpr(root), var_type)
        self.add_constant(None)

    # -- construction ------------------------------------------------------------

    def _add_navigations(self, expression: NavExpr, var_type: VarType) -> None:
        self._types[expression] = var_type
        self._expressions.append(expression)
        self._navigations[expression] = {}
        if not isinstance(var_type, IdType):
            return
        relation = self.schema.relation(var_type.relation)
        for attribute in relation.attributes:
            child = expression.child(attribute.name)
            self._navigations[expression][attribute.name] = child
            self._add_navigations(child, attribute.type_in(self.schema))

    def add_constant(self, value: Union[str, int, float, None]) -> ConstExpr:
        """Register a constant and return its expression (idempotent)."""
        expression = ConstExpr(value)
        if expression not in self._types:
            self._types[expression] = VALUE if value is not None else VALUE
            self._expressions.append(expression)
            self._navigations[expression] = {}
            self._constants.append(expression)
        return expression

    # -- accessors ----------------------------------------------------------------

    @property
    def expressions(self) -> Tuple[Expression, ...]:
        return tuple(self._expressions)

    @property
    def constants(self) -> Tuple[ConstExpr, ...]:
        return tuple(self._constants)

    @property
    def root_names(self) -> Tuple[str, ...]:
        return tuple(self._roots)

    def root_type(self, root: str) -> VarType:
        return self._roots[root]

    def has_root(self, root: str) -> bool:
        return root in self._roots

    def variable(self, root: str) -> NavExpr:
        """The expression denoting the root variable itself."""
        if root not in self._roots:
            raise KeyError(f"unknown root {root!r} in expression universe")
        return NavExpr(root)

    def contains(self, expression: Expression) -> bool:
        return expression in self._types

    def type_of(self, expression: Expression) -> VarType:
        """The type of an expression (constants are value-typed)."""
        return self._types[expression]

    def navigate(self, expression: Expression, attribute: str) -> Optional[Expression]:
        """``expression.attribute`` if it exists in the universe, else ``None``."""
        return self._navigations.get(expression, {}).get(attribute)

    def navigations_of(self, expression: Expression) -> Dict[str, Expression]:
        """All single-step navigations from *expression* (attribute -> expression)."""
        return dict(self._navigations.get(expression, {}))

    def expressions_rooted_at(self, roots: Iterable[str]) -> Set[Expression]:
        """All navigation expressions whose root variable is in *roots*, plus all constants."""
        wanted = set(roots)
        result: Set[Expression] = set(self._constants)
        for expression in self._expressions:
            if isinstance(expression, NavExpr) and expression.root in wanted:
                result.add(expression)
        return result

    def __len__(self) -> int:
        return len(self._expressions)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ExpressionUniverse(roots={list(self._roots)}, size={len(self)})"
