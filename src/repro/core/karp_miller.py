"""The Karp–Miller search over product states (Sections 3.3–3.6).

The search materialises the reachable product state space lazily, pruning
states covered by already-visited ones and accelerating counters to ω when a
strictly dominated ancestor is found.  Three variants are supported, matching
the paper's configurations:

* classic Karp–Miller (Algorithm 1): duplicate-only pruning over the whole
  tree; only practical on tiny inputs, kept for differential testing;
* monotone pruning (Section 3.4, Reynier–Servais): an *active* set of states,
  pruning new states covered by an active state and deactivating active
  states (plus their descendants) covered by a new state;
* the ⪯-based pruning of Section 3.5 (the default), which replaces the
  coverage relation ``≤`` by the weaker ``⪯`` tested via bipartite max-flow.

Candidate look-ups over the active set use the Trie / inverted-list indexes of
Section 3.6 when data-structure support is enabled, otherwise linear scans.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.core.control import STOP_CANCELLED, STOP_DEADLINE, SearchControl
from repro.core.coverage import covers_leq, covers_preceq
from repro.core.indexes import ActiveStateIndex
from repro.core.options import CoverageMode, VerifierOptions
from repro.core.product import ProductMove, ProductState, ProductSystem
from repro.core.psi import PSI
from repro.core.stats import SearchStatistics
from repro.vass.vass import OMEGA


@dataclass
class SearchNode:
    """A node of the Karp–Miller tree."""

    node_id: int
    state: ProductState
    parent: Optional[int]
    service: Optional[str]
    depth: int
    active: bool = True
    children: List[int] = field(default_factory=list)


@dataclass
class KarpMillerResult:
    """Outcome of the coverability search."""

    nodes: List[SearchNode]
    active_ids: Set[int]
    stats: SearchStatistics
    completed: bool

    def node(self, node_id: int) -> SearchNode:
        return self.nodes[node_id]

    def active_nodes(self) -> List[SearchNode]:
        return [self.nodes[node_id] for node_id in sorted(self.active_ids)]

    def path_to(self, node_id: int) -> List[SearchNode]:
        """The tree path from the root to *node_id* (inclusive)."""
        path: List[SearchNode] = []
        current: Optional[int] = node_id
        while current is not None:
            node = self.nodes[current]
            path.append(node)
            current = node.parent
        path.reverse()
        return path


class KarpMillerSearch:
    """Coverability search over the product system."""

    def __init__(
        self,
        product: ProductSystem,
        options: VerifierOptions,
        control: Optional[SearchControl] = None,
    ):
        self.product = product
        self.options = options
        self.stats = SearchStatistics()
        # The control carries the cooperative cancellation token and the
        # progress-event sink; options.timeout_seconds folds into its deadline.
        self.control = control if control is not None else SearchControl()
        self._covers = (
            covers_preceq if options.coverage_mode is CoverageMode.PRECEQ else covers_leq
        )

    # -- coverage helpers ----------------------------------------------------------

    def _state_covers(self, covered: ProductState, covering: ProductState) -> bool:
        if covered.buchi_state != covering.buchi_state:
            return False
        return self._covers(covered.psi, covering.psi)

    # -- acceleration -----------------------------------------------------------------

    def _accelerate(self, state: ProductState, ancestors: Iterable[SearchNode]) -> ProductState:
        """Replace counters by ω when a dominated ancestor witnesses a pumpable loop."""
        counters = state.psi.counter_map()
        if not counters:
            return state
        relevant = [
            node
            for node in ancestors
            if node.state.buchi_state == state.buchi_state
            and node.state.psi.children == state.psi.children
        ]
        if not relevant:
            return state
        changed = False
        for key, value in list(counters.items()):
            if value is OMEGA:
                continue
            reduced = state.psi.with_counter_delta(key, -1)
            if reduced is None:
                continue
            reduced_state = ProductState(reduced, state.buchi_state)
            for node in relevant:
                if self._state_covers(node.state, reduced_state) and node.state != state:
                    counters[key] = OMEGA
                    changed = True
                    self.stats.accelerations += 1
                    break
        if not changed:
            return state
        return ProductState(state.psi.with_counters(counters), state.buchi_state)

    # -- main search --------------------------------------------------------------------

    def run(self) -> KarpMillerResult:
        start_time = time.monotonic()
        # A private scope applies options.timeout_seconds without mutating
        # the (possibly shared, reusable) caller token.
        control = self.control.scoped(self.options.timeout_seconds)
        nodes: List[SearchNode] = []
        active: Set[int] = set()
        index: Optional[ActiveStateIndex] = (
            ActiveStateIndex() if self.options.data_structure_support else None
        )
        worklist: List[int] = []
        completed = True

        def add_node(state: ProductState, parent: Optional[int], service: Optional[str]) -> SearchNode:
            node = SearchNode(
                node_id=len(nodes),
                state=state,
                parent=parent,
                service=service,
                depth=0 if parent is None else nodes[parent].depth + 1,
            )
            nodes.append(node)
            if parent is not None:
                nodes[parent].children.append(node.node_id)
            active.add(node.node_id)
            if index is not None:
                index.add(node.node_id, state.edge_elements())
            worklist.append(node.node_id)
            self.stats.states_explored += 1
            control.maybe_emit_progress(
                self.stats.states_explored, len(worklist), len(active)
            )
            return node

        def active_candidates_covering(state: ProductState) -> Iterable[int]:
            """Active nodes that might cover *state* (state ⪯ candidate)."""
            if index is not None:
                return index.candidates_covering(state.edge_elements()) & active
            return set(active)

        def active_candidates_covered(state: ProductState) -> Iterable[int]:
            """Nodes that might be covered by *state* (candidate ⪯ state)."""
            if index is not None:
                return index.candidates_covered_by(state.edge_elements()) & active
            return set(active)

        def deactivate_subtree(node_id: int) -> None:
            stack = [node_id]
            while stack:
                current = stack.pop()
                node = nodes[current]
                if node.active:
                    node.active = False
                    active.discard(current)
                    if index is not None:
                        index.remove(current)
                    self.stats.states_deactivated += 1
                stack.extend(node.children)

        def is_ancestor(candidate: int, descendant: int) -> bool:
            current: Optional[int] = descendant
            while current is not None:
                if current == candidate:
                    return True
                current = nodes[current].parent
            return False

        # Initial states.
        for move in self.product.initial_states():
            duplicate = any(
                nodes[node_id].state == move.state for node_id in active
            )
            if not duplicate:
                add_node(move.state, None, move.service)

        while worklist:
            reason = control.stop_reason()
            if reason is not None:
                if reason == STOP_DEADLINE:
                    self.stats.timed_out = True
                elif reason == STOP_CANCELLED:
                    self.stats.cancelled = True
                completed = False
                break
            if len(nodes) > self.options.max_states:
                self.stats.state_limit_reached = True
                completed = False
                break
            node_id = worklist.pop()
            node = nodes[node_id]
            if self.options.monotone_pruning and not node.active:
                continue

            ancestors = [nodes[ancestor_id] for ancestor_id in self._ancestor_ids(nodes, node_id)]
            if self.options.monotone_pruning:
                # Acceleration only considers ancestors that are still active
                # (Section 3.4: accel is applied on ancestors(I) ∩ act).
                active_ancestors = [a for a in ancestors if a.active]
            else:
                active_ancestors = ancestors

            # The phase hooks attribute hot-loop wall time for the trace
            # waterfall; an untraced control makes them shared no-ops.
            with control.phase("successor-generation"):
                moves = list(self.product.successors(node.state))
            for move in moves:
                self.stats.transitions_computed += 1
                with control.phase("acceleration"):
                    successor = self._accelerate(move.state, active_ancestors)

                if self.options.monotone_pruning:
                    covered = False
                    with control.phase("coverage-check"):
                        for candidate_id in active_candidates_covering(successor):
                            if self._state_covers(successor, nodes[candidate_id].state):
                                covered = True
                                break
                    if covered:
                        self.stats.states_pruned += 1
                        continue
                else:
                    # Classic Karp-Miller: prune only exact duplicates anywhere in the tree.
                    with control.phase("coverage-check"):
                        duplicate = any(existing.state == successor for existing in nodes)
                    if duplicate:
                        self.stats.states_pruned += 1
                        continue

                new_node = add_node(successor, node_id, move.service)

                if self.options.monotone_pruning:
                    # Deactivate every state (and its descendants) that the new
                    # state covers, unless it is an inactive ancestor of the
                    # new node (Reynier-Servais rule).
                    with control.phase("coverage-check"):
                        for candidate_id in list(active_candidates_covered(successor)):
                            if candidate_id == new_node.node_id:
                                continue
                            candidate = nodes[candidate_id]
                            if not self._state_covers(candidate.state, successor):
                                continue
                            if candidate.active or not is_ancestor(
                                candidate_id, new_node.node_id
                            ):
                                deactivate_subtree(candidate_id)
                    # The new node itself must stay active even if an ancestor
                    # subtree containing it was deactivated.
                    if not new_node.active:
                        new_node.active = True
                        active.add(new_node.node_id)
                        if index is not None:
                            index.add(new_node.node_id, successor.edge_elements())

        self.stats.search_seconds = time.monotonic() - start_time
        self.stats.coverability_set_size = len(active)
        return KarpMillerResult(nodes=nodes, active_ids=set(active), stats=self.stats, completed=completed)

    @staticmethod
    def _ancestor_ids(nodes: List[SearchNode], node_id: int) -> List[int]:
        result = []
        current = nodes[node_id].parent
        while current is not None:
            result.append(current)
            current = nodes[current].parent
        return result
