"""The experiment runner behind the paper's tables and figures.

A :class:`BenchmarkRunner` verifies a suite of workflows against the Table 4
property templates under one or more verifier configurations, records one
:class:`RunRecord` per (workflow, property, verifier) triple, and aggregates
the records into the rows of Tables 1–4 and the series of Figure 9.  The
aggregation functions mirror the paper's reporting: average elapsed time and
failure counts per verifier (Table 2), mean / 5%-trimmed-mean speedups per
optimization (Table 3), average time per LTL template class (Table 4) and
average time per cyclomatic-complexity bucket (Figure 9).
"""

from __future__ import annotations

import statistics
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.baseline.spinlike import SpinLikeVerifier
from repro.benchmark.cyclomatic import cyclomatic_complexity
from repro.benchmark.properties import LTL_TEMPLATES, LTLTemplate, generate_properties
from repro.core.options import VerifierOptions
from repro.core.verifier import VerificationOutcome, Verifier
from repro.has.artifact_system import ArtifactSystem


@dataclass
class RunRecord:
    """One verification run: workflow × property template × verifier configuration."""

    workflow: str
    template: str
    category: str
    verifier: str
    seconds: float
    outcome: str
    failed: bool
    states_explored: int
    cyclomatic: int


@dataclass
class WorkflowSuite:
    """A named collection of workflows (the "real" or "synthetic" set)."""

    name: str
    workflows: List[ArtifactSystem]

    def statistics(self) -> Dict[str, float]:
        """The Table 1 row for this suite: average size statistics."""
        if not self.workflows:
            return {"size": 0, "relations": 0.0, "tasks": 0.0, "variables": 0.0, "services": 0.0}
        per_workflow = [workflow.statistics() for workflow in self.workflows]
        return {
            "size": len(self.workflows),
            "relations": statistics.mean(s["relations"] for s in per_workflow),
            "tasks": statistics.mean(s["tasks"] for s in per_workflow),
            "variables": statistics.mean(s["variables"] for s in per_workflow),
            "services": statistics.mean(s["services"] for s in per_workflow),
        }


def trimmed_mean(values: Sequence[float], proportion: float = 0.05) -> float:
    """The mean after removing the top and bottom ``proportion`` of the values."""
    if not values:
        return 0.0
    ordered = sorted(values)
    cut = int(len(ordered) * proportion)
    trimmed = ordered[cut : len(ordered) - cut] if len(ordered) > 2 * cut else ordered
    return statistics.mean(trimmed)


class BenchmarkRunner:
    """Runs verification experiments and aggregates them like the paper does."""

    def __init__(
        self,
        timeout_seconds: float = 30.0,
        max_states: int = 30_000,
        templates: Sequence[LTLTemplate] = LTL_TEMPLATES,
        property_seed: int = 0,
    ):
        self.timeout_seconds = timeout_seconds
        self.max_states = max_states
        self.templates = tuple(templates)
        self.property_seed = property_seed

    # ------------------------------------------------------------------ running

    def _options(self, base: VerifierOptions) -> VerifierOptions:
        return base.with_(timeout_seconds=self.timeout_seconds, max_states=self.max_states)

    def run_workflow(
        self,
        workflow: ArtifactSystem,
        verifier_label: str,
        options: Optional[VerifierOptions] = None,
        use_spin_baseline: bool = False,
    ) -> List[RunRecord]:
        """Verify the 12 template properties of one workflow under one configuration."""
        complexity = cyclomatic_complexity(workflow)
        properties = generate_properties(workflow, seed=self.property_seed, templates=self.templates)
        records: List[RunRecord] = []
        template_by_property = {p.name: t for p, t in zip(properties, self.templates)}
        for ltl_property, template in zip(properties, self.templates):
            started = time.monotonic()
            if use_spin_baseline:
                verifier = SpinLikeVerifier(
                    workflow,
                    timeout_seconds=self.timeout_seconds,
                    max_states=self.max_states,
                )
                result = verifier.verify(ltl_property)
                outcome = result.outcome
                failed = result.failed
                states = result.states_explored
            else:
                verifier = Verifier(workflow, self._options(options or VerifierOptions()))
                result = verifier.verify(ltl_property)
                outcome = result.outcome.value
                failed = result.stats.failed
                states = result.stats.states_explored
            elapsed = time.monotonic() - started
            records.append(
                RunRecord(
                    workflow=workflow.name,
                    template=template.name,
                    category=template.category,
                    verifier=verifier_label,
                    seconds=elapsed,
                    outcome=str(outcome),
                    failed=failed,
                    states_explored=states,
                    cyclomatic=complexity,
                )
            )
        return records

    def run_suite(
        self,
        suite: WorkflowSuite,
        configurations: Mapping[str, Optional[VerifierOptions]],
    ) -> List[RunRecord]:
        """Run every workflow of a suite under every configuration.

        ``configurations`` maps a verifier label to its options; the special
        value ``None`` selects the Spin-like baseline verifier.
        """
        records: List[RunRecord] = []
        for workflow in suite.workflows:
            for label, options in configurations.items():
                records.extend(
                    self.run_workflow(
                        workflow,
                        verifier_label=label,
                        options=options,
                        use_spin_baseline=options is None,
                    )
                )
        return records

    # ------------------------------------------------------------------ aggregation

    @staticmethod
    def table2(records: Sequence[RunRecord]) -> Dict[str, Dict[str, float]]:
        """Average elapsed time and number of failed runs per verifier (Table 2)."""
        result: Dict[str, Dict[str, float]] = {}
        by_verifier: Dict[str, List[RunRecord]] = {}
        for record in records:
            by_verifier.setdefault(record.verifier, []).append(record)
        for verifier, rows in by_verifier.items():
            result[verifier] = {
                "avg_seconds": statistics.mean(r.seconds for r in rows),
                "failures": sum(1 for r in rows if r.failed),
                "runs": len(rows),
            }
        return result

    @staticmethod
    def table3(
        baseline_records: Sequence[RunRecord],
        ablated_records: Sequence[RunRecord],
    ) -> Dict[str, float]:
        """Mean and trimmed-mean speedup of an optimization (Table 3).

        Speedup of a run = time with the optimization off / time with it on,
        matched per (workflow, template).
        """
        baseline_by_key = {(r.workflow, r.template): r for r in baseline_records}
        speedups: List[float] = []
        for record in ablated_records:
            baseline = baseline_by_key.get((record.workflow, record.template))
            if baseline is None or baseline.seconds <= 0:
                continue
            speedups.append(record.seconds / max(baseline.seconds, 1e-9))
        if not speedups:
            return {"mean": 0.0, "trimmed_mean": 0.0, "runs": 0}
        return {
            "mean": statistics.mean(speedups),
            "trimmed_mean": trimmed_mean(speedups, 0.05),
            "runs": len(speedups),
        }

    @staticmethod
    def table4(records: Sequence[RunRecord]) -> Dict[str, Dict[str, float]]:
        """Average verification time per LTL template (Table 4)."""
        result: Dict[str, Dict[str, float]] = {}
        by_template: Dict[str, List[RunRecord]] = {}
        for record in records:
            by_template.setdefault(record.template, []).append(record)
        for template, rows in by_template.items():
            result[template] = {
                "category": rows[0].category,
                "avg_seconds": statistics.mean(r.seconds for r in rows),
                "runs": len(rows),
            }
        return result

    @staticmethod
    def figure9(records: Sequence[RunRecord]) -> List[Tuple[int, float, int]]:
        """(cyclomatic complexity, average seconds, #runs) series for Figure 9."""
        by_complexity: Dict[int, List[float]] = {}
        for record in records:
            by_complexity.setdefault(record.cyclomatic, []).append(record.seconds)
        series = [
            (complexity, statistics.mean(times), len(times))
            for complexity, times in sorted(by_complexity.items())
        ]
        return series

    @staticmethod
    def overhead(
        with_module: Sequence[RunRecord], without_module: Sequence[RunRecord]
    ) -> float:
        """Relative overhead (in %) of a module over the matched aggregate time.

        The paper reports the overhead of the repeated-reachability module as
        the relative increase of the *average* verification time, so the
        aggregation here compares the summed times of the matched
        (workflow, template) pairs.  Averaging per-run ratios instead would let
        sub-millisecond reachability-only runs (the property is reported
        violated as soon as any accepting state is reached) dominate the
        metric with enormous ratios.
        """
        without_by_key = {(r.workflow, r.template): r for r in without_module}
        with_total = 0.0
        without_total = 0.0
        for record in with_module:
            other = without_by_key.get((record.workflow, record.template))
            if other is None or other.seconds <= 0 or record.failed or other.failed:
                continue
            with_total += record.seconds
            without_total += other.seconds
        if without_total <= 0:
            return 0.0
        return 100.0 * (with_total - without_total) / without_total
