"""LTL-FO property generation (Table 4 of the paper).

The paper evaluates 12 LTL templates: the 11 safety / liveness / fairness
examples collected from Sistla's reference paper plus the baseline property
``False``.  For each workflow, an LTL-FO property is generated per template by
replacing the propositional placeholders with FO conditions drawn from the
workflow's own pre- and post-conditions (and their subformulas), so the
generated properties combine real propositional LTL structure with real FO
conditions, just like the paper's benchmark.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.has.artifact_system import ArtifactSystem
from repro.has.conditions import And, Condition, Eq, FalseCond, Neq, Not, Or, RelationAtom, TrueCond
from repro.ltl.ltlfo import LTLFOProperty
from repro.ltl.parser import parse_ltl
from repro.ltl.syntax import Formula, LFalse


@dataclass(frozen=True)
class LTLTemplate:
    """One row of Table 4: an LTL skeleton with placeholders ``phi`` / ``psi``."""

    name: str
    formula_text: str
    category: str  # "baseline", "safety", "liveness" or "fairness"

    @property
    def placeholders(self) -> Tuple[str, ...]:
        formula = parse_ltl(self.formula_text) if self.formula_text else LFalse()
        return tuple(sorted(p for p in formula.propositions() if p in ("phi", "psi")))

    def formula(self) -> Formula:
        if not self.formula_text:
            return LFalse()
        return parse_ltl(self.formula_text)


#: The 12 templates of Table 4 (the empty text encodes the ``False`` baseline).
LTL_TEMPLATES: Tuple[LTLTemplate, ...] = (
    LTLTemplate("false", "", "baseline"),
    LTLTemplate("always", "G phi", "safety"),
    LTLTemplate("until", "(!phi) U psi", "safety"),
    LTLTemplate("until-repeated", "((!phi) U psi) & G (phi -> X ((!phi) U psi))", "safety"),
    LTLTemplate("respond-within-two", "G (phi -> (psi | X psi | X X psi))", "safety"),
    LTLTemplate("once-then-never", "G (phi | G (!phi))", "safety"),
    LTLTemplate("response", "G (phi -> F psi)", "liveness"),
    LTLTemplate("eventually", "F phi", "liveness"),
    LTLTemplate("fair-response", "(G F phi) -> (G F psi)", "fairness"),
    LTLTemplate("recurrence", "G F phi", "fairness"),
    LTLTemplate("stability", "G (phi | G psi)", "fairness"),
    LTLTemplate("compassion", "(F G phi) -> (G F psi)", "fairness"),
)


def _subformulas(condition: Condition) -> List[Condition]:
    """The condition itself plus its boolean subformulas (atoms included)."""
    result: List[Condition] = []

    def walk(node: Condition) -> None:
        result.append(node)
        for attr in ("left", "right", "operand"):
            child = getattr(node, attr, None)
            if isinstance(child, Condition):
                walk(child)

    walk(condition)
    return result


def candidate_conditions(system: ArtifactSystem, task: Optional[str] = None) -> List[Condition]:
    """FO conditions usable as propositions: pre/post conditions and their subformulas."""
    task_name = task or system.root
    task_schema = system.task(task_name)
    allowed = set(task_schema.variable_names)
    candidates: List[Condition] = []
    sources: List[Condition] = []
    for service in system.internal_services(task_name):
        sources.append(service.pre)
        sources.append(service.post)
    for child in system.children_of(task_name):
        sources.append(system.opening_service(child).pre)
    sources.append(system.closing_service(task_name).pre)
    for source in sources:
        for sub in _subformulas(source):
            if isinstance(sub, (TrueCond, FalseCond)):
                continue
            if not sub.variables():
                continue
            if sub.variables() <= allowed:
                candidates.append(sub)
    # Deduplicate by their string rendering while preserving order.
    seen = set()
    unique: List[Condition] = []
    for condition in candidates:
        key = str(condition)
        if key not in seen:
            seen.add(key)
            unique.append(condition)
    return unique


def property_from_template(
    template: LTLTemplate,
    system: ArtifactSystem,
    task: Optional[str] = None,
    rng: Optional[random.Random] = None,
) -> LTLFOProperty:
    """Instantiate one template on a workflow by drawing FO conditions from its spec."""
    rng = rng or random.Random(0)
    task_name = task or system.root
    candidates = candidate_conditions(system, task_name)
    if not candidates:
        from repro.has.conditions import NULL, Var

        first_variable = system.task(task_name).variables[0].name
        candidates = [Neq(Var(first_variable), NULL)]
    conditions: Dict[str, Condition] = {}
    for placeholder in template.placeholders:
        conditions[placeholder] = rng.choice(candidates)
    return LTLFOProperty(
        task=task_name,
        formula=template.formula(),
        conditions=conditions,
        name=f"{template.name}@{system.name}",
    )


def generate_properties(
    system: ArtifactSystem,
    task: Optional[str] = None,
    seed: int = 0,
    templates: Sequence[LTLTemplate] = LTL_TEMPLATES,
) -> List[LTLFOProperty]:
    """One LTL-FO property per template (the paper's 12 properties per workflow)."""
    rng = random.Random(seed)
    return [property_from_template(template, system, task, rng) for template in templates]
