"""The synthetic workflow generator (Appendix D).

Every component of a synthetic HAS* specification is generated at random for
given size parameters:

* the database schema is a random tree of relations, each with a fixed number
  of data attributes plus a foreign key to its parent (hence acyclic);
* the task hierarchy is a random tree;
* each task gets the same number of variables of every type (data variables
  and id variables per relation); 1/10 of them are input variables and another
  1/10 are output variables;
* each task gets a fixed number of internal services with random pre- and
  post-conditions; with probability 1/3 a service either propagates a random
  1/10 subset of the variables, inserts a fixed tuple into the task's artifact
  relation, or retrieves a tuple from it;
* conditions are random trees over 5 random atoms (``x = y``, ``x = c`` or
  ``R(x̄)``, each negated with probability 1/2) whose internal nodes are ∧ with
  probability 4/5 and ∨ with probability 1/5.

Generation is fully deterministic given the seed, which the benchmark harness
relies on for reproducibility.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.has.artifact_system import ArtifactSystem, SpecificationError
from repro.has.builder import ArtifactSystemBuilder, TaskBuilder
from repro.has.conditions import And, Condition, Const, Eq, Neq, Not, NULL, Or, RelationAtom, TrueCond, Var
from repro.has.schema import DatabaseSchema, Relation, fk_attr, value_attr
from repro.has.types import IdType


@dataclass(frozen=True)
class SyntheticConfig:
    """Size parameters of one synthetic workflow (Appendix D / Table 1)."""

    relations: int = 5
    tasks: int = 5
    variables_per_task: int = 15
    services_per_task: int = 15
    attributes_per_relation: int = 4
    atoms_per_condition: int = 5
    constants: int = 4
    seed: int = 0

    def scaled(self, factor: float) -> "SyntheticConfig":
        """A copy scaled in the number of variables and services (used by Figure 9)."""
        return SyntheticConfig(
            relations=self.relations,
            tasks=self.tasks,
            variables_per_task=max(2, int(round(self.variables_per_task * factor))),
            services_per_task=max(2, int(round(self.services_per_task * factor))),
            attributes_per_relation=self.attributes_per_relation,
            atoms_per_condition=self.atoms_per_condition,
            constants=self.constants,
            seed=self.seed,
        )


_CONSTANT_POOL = ["c0", "c1", "c2", "c3", "c4", "c5", "c6", "c7"]


class _SyntheticGenerator:
    """Stateful helper that generates one synthetic artifact system."""

    def __init__(self, config: SyntheticConfig):
        self.config = config
        self.rng = random.Random(config.seed)
        self.constants = _CONSTANT_POOL[: max(1, config.constants)]

    # -- schema -------------------------------------------------------------------

    def _schema(self) -> DatabaseSchema:
        relations: List[Relation] = []
        names = [f"R{i}" for i in range(self.config.relations)]
        for index, name in enumerate(names):
            attributes = [value_attr(f"a{j}") for j in range(self.config.attributes_per_relation)]
            if index > 0:
                parent = names[self.rng.randrange(index)]
                attributes.append(fk_attr("ref", parent))
            relations.append(Relation(name, tuple(attributes)))
        return DatabaseSchema(relations)

    # -- tasks ----------------------------------------------------------------------

    def _hierarchy(self) -> List[Tuple[str, Optional[str]]]:
        names = [f"T{i}" for i in range(self.config.tasks)]
        result: List[Tuple[str, Optional[str]]] = [(names[0], None)]
        for index in range(1, len(names)):
            parent = names[self.rng.randrange(index)]
            result.append((names[index], parent))
        return result

    def _populate_task(
        self, task: TaskBuilder, schema: DatabaseSchema, is_root: bool
    ) -> None:
        relation_names = list(schema.relation_names)
        n_types = len(relation_names) + 1
        per_type = max(1, self.config.variables_per_task // n_types)
        variable_names: List[str] = []
        for i in range(per_type):
            name = f"v{i}"
            variable_names.append(name)
        for relation in relation_names:
            for i in range(per_type):
                variable_names.append(f"id_{relation}_{i}")

        n_io = max(1, len(variable_names) // 10)
        input_vars = [] if is_root else variable_names[:n_io]
        output_vars = [] if is_root else variable_names[n_io : 2 * n_io]

        for name in variable_names:
            if name.startswith("id_"):
                relation = name.split("_")[1]
                task.id_variable(
                    name, relation, input=name in input_vars, output=name in output_vars
                )
            else:
                task.variable(name, input=name in input_vars, output=name in output_vars)

        # One artifact relation per task over a small prefix of the variables.
        relation_vars = variable_names[: min(3, len(variable_names))]
        task.artifact_relation("SET", relation_vars)

        for i in range(self.config.services_per_task):
            self._add_service(task, schema, f"s{i}", variable_names, relation_vars, input_vars)

        # Opening / closing guards: a random (usually satisfiable) condition.
        if not is_root:
            task.opening(pre=TrueCond())
            task.closing(pre=self._condition(task, schema, variable_names, positive_bias=True))

    def _add_service(
        self,
        task: TaskBuilder,
        schema: DatabaseSchema,
        name: str,
        variables: Sequence[str],
        relation_vars: Sequence[str],
        input_vars: Sequence[str],
    ) -> None:
        pre = self._condition(task, schema, variables, positive_bias=True)
        post = self._condition(task, schema, variables, positive_bias=True)
        kind = self.rng.random()
        if kind < 1 / 3:
            choice = self.rng.randrange(3)
            if choice == 0:
                subset_size = max(1, len(variables) // 10)
                propagated = self.rng.sample(list(variables), subset_size)
                task.internal_service(name, pre=pre, post=post, propagated=propagated)
                return
            if choice == 1:
                task.internal_service(name, pre=pre, post=post, insert=("SET", relation_vars))
                return
            task.internal_service(name, pre=pre, post=post, retrieve=("SET", relation_vars))
            return
        task.internal_service(name, pre=pre, post=post)

    # -- conditions -------------------------------------------------------------------

    def _variable_type(self, task: TaskBuilder, name: str):
        for variable in task._variables:
            if variable.name == name:
                return variable.type
        return None

    def _atom(self, task: TaskBuilder, schema: DatabaseSchema, variables: Sequence[str]) -> Condition:
        choice = self.rng.randrange(3)
        if choice == 0:
            left, right = self.rng.sample(list(variables), 2) if len(variables) >= 2 else (variables[0], variables[0])
            # Only compare variables of the same type, otherwise fall back to x = c.
            if self._variable_type(task, left) == self._variable_type(task, right) and left != right:
                return Eq(Var(left), Var(right))
            choice = 1
        if choice == 1:
            data_vars = [v for v in variables if not isinstance(self._variable_type(task, v), IdType)]
            if data_vars:
                variable = self.rng.choice(data_vars)
                constant = self.rng.choice(self.constants)
                return Eq(Var(variable), Const(constant))
            choice = 2
        # Relational atom over a random relation with a matching id variable.
        for _attempt in range(4):
            relation = schema.relation(self.rng.choice(list(schema.relation_names)))
            id_candidates = [
                v for v in variables
                if isinstance(self._variable_type(task, v), IdType)
                and self._variable_type(task, v).relation == relation.name
            ]
            if not id_candidates:
                continue
            id_var = self.rng.choice(id_candidates)
            args: List = [Var(id_var)]
            feasible = True
            for attribute in relation.attributes:
                if attribute.is_foreign_key:
                    fk_candidates = [
                        v for v in variables
                        if isinstance(self._variable_type(task, v), IdType)
                        and self._variable_type(task, v).relation == attribute.target
                    ]
                    if not fk_candidates:
                        feasible = False
                        break
                    args.append(Var(self.rng.choice(fk_candidates)))
                else:
                    data_vars = [
                        v for v in variables
                        if not isinstance(self._variable_type(task, v), IdType)
                    ]
                    if data_vars and self.rng.random() < 0.5:
                        args.append(Var(self.rng.choice(data_vars)))
                    else:
                        args.append(Const(self.rng.choice(self.constants)))
            if feasible:
                return RelationAtom(relation.name, args)
        # Fallback: a simple (dis)equality with a constant.
        variable = self.rng.choice(list(variables))
        if isinstance(self._variable_type(task, variable), IdType):
            return Neq(Var(variable), NULL)
        return Eq(Var(variable), Const(self.rng.choice(self.constants)))

    def _condition(
        self,
        task: TaskBuilder,
        schema: DatabaseSchema,
        variables: Sequence[str],
        positive_bias: bool = False,
    ) -> Condition:
        """A random condition tree over ``atoms_per_condition`` random atoms."""
        negation_probability = 0.25 if positive_bias else 0.5
        atoms: List[Condition] = []
        for _ in range(self.config.atoms_per_condition):
            atom = self._atom(task, schema, variables)
            if self.rng.random() < negation_probability:
                atom = Not(atom)
            atoms.append(atom)
        while len(atoms) > 1:
            left = atoms.pop(self.rng.randrange(len(atoms)))
            right = atoms.pop(self.rng.randrange(len(atoms)))
            connective = And if self.rng.random() < 0.8 else Or
            atoms.append(connective(left, right))
        return atoms[0]

    # -- assembly ------------------------------------------------------------------------

    def generate(self) -> ArtifactSystem:
        schema = self._schema()
        builder = ArtifactSystemBuilder(f"synthetic-{self.config.seed}", schema)
        for name, parent in self._hierarchy():
            task = builder.task(name, parent=parent)
            self._populate_task(task, schema, is_root=parent is None)
        return builder.build()


def generate_synthetic_workflow(config: SyntheticConfig) -> ArtifactSystem:
    """Generate one synthetic workflow for the given size parameters and seed."""
    return _SyntheticGenerator(config).generate()


def synthetic_workflows(
    count: int = 20,
    base_config: Optional[SyntheticConfig] = None,
    seed: int = 0,
    scale_range: Tuple[float, float] = (0.3, 1.0),
) -> List[ArtifactSystem]:
    """A suite of synthetic workflows of increasing complexity.

    The i-th workflow is generated from ``base_config`` scaled linearly between
    the two ends of ``scale_range`` and seeded deterministically, mirroring the
    paper's stress-test set of specifications of increasing complexity.
    """
    base = base_config or SyntheticConfig()
    workflows: List[ArtifactSystem] = []
    for index in range(count):
        if count > 1:
            factor = scale_range[0] + (scale_range[1] - scale_range[0]) * index / (count - 1)
        else:
            factor = scale_range[1]
        config = base.scaled(factor)
        config = SyntheticConfig(
            relations=config.relations,
            tasks=config.tasks,
            variables_per_task=config.variables_per_task,
            services_per_task=config.services_per_task,
            attributes_per_relation=config.attributes_per_relation,
            atoms_per_condition=config.atoms_per_condition,
            constants=config.constants,
            seed=seed + index,
        )
        workflows.append(generate_synthetic_workflow(config))
    return workflows
