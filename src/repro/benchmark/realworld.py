"""The "real" workflow suite.

The paper's real benchmark rewrites 32 BPMN workflows from bpmn.org into HAS*.
Those originals are not redistributable here, so this module provides a
hand-modelled suite of realistic business processes with the same flavour and
comparable size statistics (Table 1: roughly 3-4 database relations, ~3 tasks,
~20 artifact variables and ~12 services per workflow).  The first entry is the
paper's own running example (Appendix B): the order fulfillment process, in
both a correct variant and the buggy variant discussed in Section 2.1 (the
in-stock check moved from the opening guard of ShipItem into its internal
services), which the verifier must catch.

Each factory returns a fresh :class:`~repro.has.artifact_system.ArtifactSystem`.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple

from repro.has.builder import ArtifactSystemBuilder
from repro.has.conditions import And, Const, Eq, Neq, NULL, Not, Or, RelationAtom, Var
from repro.has.schema import DatabaseSchema


def _order_fulfillment(buggy: bool) -> "ArtifactSystemBuilder":
    """The order fulfillment workflow of Appendix B (correct or buggy variant)."""
    schema = DatabaseSchema.from_dict(
        {
            "CUSTOMERS": {"name": None, "address": None, "record": "CREDIT_RECORD"},
            "ITEMS": {"item_name": None, "price": None},
            "CREDIT_RECORD": {"status": None},
        }
    )
    name = "order-fulfillment" + ("-buggy" if buggy else "")
    builder = ArtifactSystemBuilder(name, schema)

    # -- Root task: ProcessOrders -------------------------------------------------
    root = builder.task("ProcessOrders")
    root.id_variable("cust_id", "CUSTOMERS")
    root.id_variable("item_id", "ITEMS")
    root.variable("status")
    root.variable("instock")
    root.artifact_relation("ORDERS", ["cust_id", "item_id", "status", "instock"])
    root.internal_service(
        "Initialize",
        pre=And(Eq(Var("cust_id"), NULL), Eq(Var("item_id"), NULL)),
        post=And(
            And(Eq(Var("cust_id"), NULL), Eq(Var("item_id"), NULL)),
            Eq(Var("status"), Const("Init")),
        ),
    )
    root.internal_service(
        "StoreOrder",
        pre=And(
            And(Neq(Var("cust_id"), NULL), Neq(Var("item_id"), NULL)),
            Neq(Var("status"), Const("Failed")),
        ),
        post=And(
            And(Eq(Var("cust_id"), NULL), Eq(Var("item_id"), NULL)),
            Eq(Var("status"), Const("Init")),
        ),
        insert=("ORDERS", ["cust_id", "item_id", "status", "instock"]),
    )
    root.internal_service(
        "RetrieveOrder",
        pre=And(Eq(Var("cust_id"), NULL), Eq(Var("item_id"), NULL)),
        retrieve=("ORDERS", ["cust_id", "item_id", "status", "instock"]),
    )

    # -- TakeOrder -----------------------------------------------------------------
    take = builder.task("TakeOrder", parent="ProcessOrders")
    take.id_variable("cust_id", "CUSTOMERS", output=True)
    take.id_variable("item_id", "ITEMS", output=True)
    take.variable("status", output=True)
    take.variable("instock", output=True)
    take.id_variable("rec", "CREDIT_RECORD")
    take.opening(pre=Eq(Var("status"), Const("Init")))
    take.closing(pre=And(Neq(Var("cust_id"), NULL), Neq(Var("item_id"), NULL)))
    take.internal_service(
        "EnterCustomer",
        post=And(
            RelationAtom("CUSTOMERS", [Var("cust_id"), Var("n"), Var("a"), Var("rec")]),
            And(
                Or(
                    Or(Eq(Var("cust_id"), NULL), Eq(Var("item_id"), NULL)),
                    Eq(Var("status"), Const("OrderPlaced")),
                ),
                Or(
                    And(Neq(Var("cust_id"), NULL), Neq(Var("item_id"), NULL)),
                    Eq(Var("status"), NULL),
                ),
            ),
        ),
        propagated=["instock", "item_id"],
    )
    take.variable("n")
    take.variable("a")
    take.internal_service(
        "EnterItem",
        post=And(
            RelationAtom("ITEMS", [Var("item_id"), Var("iname"), Var("iprice")]),
            And(
                Or(Eq(Var("instock"), Const("Yes")), Eq(Var("instock"), Const("No"))),
                Or(
                    Or(Eq(Var("cust_id"), NULL), Eq(Var("item_id"), NULL)),
                    Eq(Var("status"), Const("OrderPlaced")),
                ),
            ),
        ),
        propagated=["cust_id", "status"],
    )
    take.variable("iname")
    take.variable("iprice")

    # -- CheckCredit ----------------------------------------------------------------
    check = builder.task("CheckCredit", parent="ProcessOrders")
    check.id_variable("cust_id", "CUSTOMERS", input=True)
    check.id_variable("record", "CREDIT_RECORD")
    check.variable("status", output=True)
    check.variable("n")
    check.variable("a")
    check.opening(pre=Eq(Var("status"), Const("OrderPlaced")), input_map={"cust_id": "cust_id"})
    check.closing(
        pre=Or(Eq(Var("status"), Const("Passed")), Eq(Var("status"), Const("Failed"))),
        output_map={"status": "status"},
    )
    check.internal_service(
        "Check",
        post=And(
            RelationAtom("CUSTOMERS", [Var("cust_id"), Var("n"), Var("a"), Var("record")]),
            Or(
                And(
                    RelationAtom("CREDIT_RECORD", [Var("record"), Const("Good")]),
                    Eq(Var("status"), Const("Passed")),
                ),
                And(
                    Not(RelationAtom("CREDIT_RECORD", [Var("record"), Const("Good")])),
                    Eq(Var("status"), Const("Failed")),
                ),
            ),
        ),
        propagated=["cust_id"],
    )

    # -- Restock -----------------------------------------------------------------------
    restock = builder.task("Restock", parent="ProcessOrders")
    restock.id_variable("item_id", "ITEMS", input=True)
    restock.variable("instock", output=True)
    restock.opening(pre=Eq(Var("instock"), Const("No")), input_map={"item_id": "item_id"})
    restock.closing(pre=Eq(Var("instock"), Const("Yes")), output_map={"instock": "instock"})
    restock.internal_service(
        "Procure",
        post=Or(Eq(Var("instock"), Const("Yes")), Eq(Var("instock"), Const("No"))),
        propagated=["item_id"],
    )

    # -- ShipItem -------------------------------------------------------------------------
    ship = builder.task("ShipItem", parent="ProcessOrders")
    ship.id_variable("item_id", "ITEMS", input=True)
    ship.id_variable("cust_id", "CUSTOMERS")
    ship.variable("status", output=True)
    ship.variable("instock")
    if buggy:
        # Buggy variant (Section 2.1): the in-stock test is performed inside the
        # task's internal services rather than in the opening guard, so ShipItem
        # can be opened for an out-of-stock item without calling Restock first.
        ship.opening(pre=Eq(Var("status"), Const("Passed")), input_map={"item_id": "item_id"})
        ship_pre = Eq(Var("instock"), Const("Yes"))
    else:
        ship.opening(
            pre=And(Eq(Var("status"), Const("Passed")), Eq(Var("instock"), Const("Yes"))),
            input_map={"item_id": "item_id"},
        )
        ship_pre = None
    ship.closing(
        pre=Or(Eq(Var("status"), Const("Shipped")), Eq(Var("status"), Const("Failed"))),
        output_map={"status": "status"},
    )
    ship.internal_service(
        "Ship",
        pre=ship_pre if ship_pre is not None else And(Eq(Var("status"), NULL), Eq(Var("status"), NULL)).nnf(),
        post=Or(Eq(Var("status"), Const("Shipped")), Eq(Var("status"), Const("Failed"))),
        propagated=["item_id"],
    )
    return builder


def order_fulfillment():
    """The order fulfillment workflow of the paper's Appendix B (correct variant)."""
    return _order_fulfillment(buggy=False).build()


def order_fulfillment_buggy():
    """The buggy variant of Section 2.1: ShipItem may open for an out-of-stock item."""
    return _order_fulfillment(buggy=True).build()


def loan_origination():
    """A bank loan origination process: applications are queued, assessed and decided."""
    schema = DatabaseSchema.from_dict(
        {
            "APPLICANTS": {"name": None, "segment": None, "score_ref": "SCORES"},
            "SCORES": {"band": None},
            "PRODUCTS": {"product_name": None, "rate": None},
        }
    )
    builder = ArtifactSystemBuilder("loan-origination", schema)

    root = builder.task("LoanDesk")
    root.id_variable("applicant", "APPLICANTS")
    root.id_variable("product", "PRODUCTS")
    root.variable("phase")
    root.variable("decision")
    root.artifact_relation("PIPELINE", ["applicant", "product", "phase", "decision"])
    root.internal_service(
        "NewApplication",
        pre=Eq(Var("applicant"), NULL),
        post=And(
            And(Neq(Var("applicant"), NULL), Neq(Var("product"), NULL)),
            And(Eq(Var("phase"), Const("Received")), Eq(Var("decision"), NULL)),
        ),
    )
    root.internal_service(
        "Park",
        pre=And(Neq(Var("applicant"), NULL), Neq(Var("phase"), Const("Closed"))),
        post=And(
            And(Eq(Var("applicant"), NULL), Eq(Var("product"), NULL)),
            And(Eq(Var("phase"), NULL), Eq(Var("decision"), NULL)),
        ),
        insert=("PIPELINE", ["applicant", "product", "phase", "decision"]),
    )
    root.internal_service(
        "Resume",
        pre=Eq(Var("applicant"), NULL),
        retrieve=("PIPELINE", ["applicant", "product", "phase", "decision"]),
    )
    root.internal_service(
        "Archive",
        pre=Or(Eq(Var("decision"), Const("Approved")), Eq(Var("decision"), Const("Rejected"))),
        post=And(
            And(Eq(Var("applicant"), NULL), Eq(Var("product"), NULL)),
            And(Eq(Var("phase"), Const("Closed")), Eq(Var("decision"), NULL)),
        ),
    )

    assess = builder.task("Assess", parent="LoanDesk")
    assess.id_variable("applicant", "APPLICANTS", input=True)
    assess.id_variable("score", "SCORES")
    assess.variable("phase", output=True)
    assess.variable("an")
    assess.variable("aseg")
    assess.opening(pre=Eq(Var("phase"), Const("Received")), input_map={"applicant": "applicant"})
    assess.closing(
        pre=Or(Eq(Var("phase"), Const("Assessed")), Eq(Var("phase"), Const("NeedsInfo"))),
        output_map={"phase": "phase"},
    )
    assess.internal_service(
        "Score",
        post=And(
            RelationAtom("APPLICANTS", [Var("applicant"), Var("an"), Var("aseg"), Var("score")]),
            Or(
                And(
                    RelationAtom("SCORES", [Var("score"), Const("Prime")]),
                    Eq(Var("phase"), Const("Assessed")),
                ),
                Eq(Var("phase"), Const("NeedsInfo")),
            ),
        ),
        propagated=["applicant"],
    )

    decide = builder.task("Decide", parent="LoanDesk")
    decide.id_variable("applicant", "APPLICANTS", input=True)
    decide.variable("decision", output=True)
    decide.variable("note")
    decide.opening(pre=Eq(Var("phase"), Const("Assessed")), input_map={"applicant": "applicant"})
    decide.closing(
        pre=Or(Eq(Var("decision"), Const("Approved")), Eq(Var("decision"), Const("Rejected"))),
        output_map={"decision": "decision"},
    )
    decide.internal_service(
        "Underwrite",
        post=Or(
            Eq(Var("decision"), Const("Approved")),
            Or(Eq(Var("decision"), Const("Rejected")), Eq(Var("decision"), Const("Escalate"))),
        ),
        propagated=["applicant"],
    )
    decide.internal_service(
        "Escalation",
        pre=Eq(Var("decision"), Const("Escalate")),
        post=Or(Eq(Var("decision"), Const("Approved")), Eq(Var("decision"), Const("Rejected"))),
        propagated=["applicant"],
    )
    return builder.build()


def insurance_claim():
    """An insurance claim handling process with triage, appraisal and settlement."""
    schema = DatabaseSchema.from_dict(
        {
            "POLICIES": {"holder": None, "tier_ref": "TIERS"},
            "TIERS": {"tier_name": None},
            "ADJUSTERS": {"adjuster_name": None, "region": None},
        }
    )
    builder = ArtifactSystemBuilder("insurance-claim", schema)

    root = builder.task("ClaimDesk")
    root.id_variable("policy", "POLICIES")
    root.id_variable("adjuster", "ADJUSTERS")
    root.variable("state")
    root.variable("severity")
    root.artifact_relation("CLAIMS", ["policy", "state", "severity"])
    root.internal_service(
        "Register",
        pre=Eq(Var("policy"), NULL),
        post=And(
            Neq(Var("policy"), NULL),
            And(Eq(Var("state"), Const("New")), Neq(Var("severity"), NULL)),
        ),
    )
    root.internal_service(
        "Queue",
        pre=And(Neq(Var("policy"), NULL), Neq(Var("state"), Const("Paid"))),
        post=And(Eq(Var("policy"), NULL), Eq(Var("adjuster"), NULL)),
        insert=("CLAIMS", ["policy", "state", "severity"]),
    )
    root.internal_service(
        "Dequeue",
        pre=Eq(Var("policy"), NULL),
        retrieve=("CLAIMS", ["policy", "state", "severity"]),
    )
    root.internal_service(
        "AssignAdjuster",
        pre=And(Neq(Var("policy"), NULL), Eq(Var("state"), Const("Triaged"))),
        post=And(Neq(Var("adjuster"), NULL), Eq(Var("state"), Const("Assigned"))),
        propagated=["policy", "severity", "state"],
    )

    triage = builder.task("Triage", parent="ClaimDesk")
    triage.id_variable("policy", "POLICIES", input=True)
    triage.variable("state", output=True)
    triage.variable("severity", output=True)
    triage.opening(pre=Eq(Var("state"), Const("New")), input_map={"policy": "policy"})
    triage.closing(pre=Eq(Var("state"), Const("Triaged")),
                   output_map={"state": "state", "severity": "severity"})
    triage.internal_service(
        "Classify",
        post=And(
            Eq(Var("state"), Const("Triaged")),
            Or(Eq(Var("severity"), Const("Minor")), Eq(Var("severity"), Const("Major"))),
        ),
        propagated=["policy"],
    )

    appraise = builder.task("Appraise", parent="ClaimDesk")
    appraise.id_variable("policy", "POLICIES", input=True)
    appraise.variable("state", output=True)
    appraise.variable("holder")
    appraise.id_variable("tier", "TIERS")
    appraise.opening(pre=Eq(Var("state"), Const("Assigned")), input_map={"policy": "policy"})
    appraise.closing(
        pre=Or(Eq(Var("state"), Const("Approved")), Eq(Var("state"), Const("Denied"))),
        output_map={"state": "state"},
    )
    appraise.internal_service(
        "Appraisal",
        post=And(
            RelationAtom("POLICIES", [Var("policy"), Var("holder"), Var("tier")]),
            Or(
                And(
                    RelationAtom("TIERS", [Var("tier"), Const("Gold")]),
                    Eq(Var("state"), Const("Approved")),
                ),
                Or(Eq(Var("state"), Const("Approved")), Eq(Var("state"), Const("Denied"))),
            ),
        ),
        propagated=["policy"],
    )

    settle = builder.task("Settle", parent="ClaimDesk")
    settle.id_variable("policy", "POLICIES", input=True)
    settle.variable("state", output=True)
    settle.opening(pre=Eq(Var("state"), Const("Approved")), input_map={"policy": "policy"})
    settle.closing(pre=Eq(Var("state"), Const("Paid")), output_map={"state": "state"})
    settle.internal_service(
        "Payout",
        post=Eq(Var("state"), Const("Paid")),
        propagated=["policy"],
    )
    return builder.build()


def travel_booking():
    """A travel booking process: itinerary building, reservation and payment."""
    schema = DatabaseSchema.from_dict(
        {
            "TRAVELLERS": {"traveller_name": None, "loyalty": "LOYALTY"},
            "LOYALTY": {"level": None},
            "FLIGHTS": {"origin": None, "destination": None},
            "HOTELS": {"city": None, "stars": None},
        }
    )
    builder = ArtifactSystemBuilder("travel-booking", schema)

    root = builder.task("TripDesk")
    root.id_variable("traveller", "TRAVELLERS")
    root.id_variable("flight", "FLIGHTS")
    root.id_variable("hotel", "HOTELS")
    root.variable("stage")
    root.variable("paid")
    root.artifact_relation("TRIPS", ["traveller", "flight", "hotel", "stage"])
    root.internal_service(
        "StartTrip",
        pre=Eq(Var("traveller"), NULL),
        post=And(Neq(Var("traveller"), NULL), Eq(Var("stage"), Const("Draft"))),
    )
    root.internal_service(
        "Suspend",
        pre=And(Neq(Var("traveller"), NULL), Neq(Var("stage"), Const("Confirmed"))),
        post=And(Eq(Var("traveller"), NULL), And(Eq(Var("flight"), NULL), Eq(Var("hotel"), NULL))),
        insert=("TRIPS", ["traveller", "flight", "hotel", "stage"]),
    )
    root.internal_service(
        "Restore",
        pre=Eq(Var("traveller"), NULL),
        retrieve=("TRIPS", ["traveller", "flight", "hotel", "stage"]),
    )

    reserve = builder.task("Reserve", parent="TripDesk")
    reserve.id_variable("traveller", "TRAVELLERS", input=True)
    reserve.id_variable("flight", "FLIGHTS", output=True)
    reserve.id_variable("hotel", "HOTELS", output=True)
    reserve.variable("stage", output=True)
    reserve.variable("fo")
    reserve.variable("fd")
    reserve.opening(pre=Eq(Var("stage"), Const("Draft")), input_map={"traveller": "traveller"})
    reserve.closing(pre=Eq(Var("stage"), Const("Reserved")),
                    output_map={"flight": "flight", "hotel": "hotel", "stage": "stage"})
    reserve.internal_service(
        "PickFlight",
        post=RelationAtom("FLIGHTS", [Var("flight"), Var("fo"), Var("fd")]),
        propagated=["traveller", "hotel", "stage"],
    )
    reserve.internal_service(
        "PickHotel",
        pre=Neq(Var("flight"), NULL),
        post=And(Neq(Var("hotel"), NULL), Eq(Var("stage"), Const("Reserved"))),
        propagated=["traveller", "flight"],
    )

    pay = builder.task("Pay", parent="TripDesk")
    pay.id_variable("traveller", "TRAVELLERS", input=True)
    pay.variable("paid", output=True)
    pay.variable("tname")
    pay.id_variable("level", "LOYALTY")
    pay.opening(pre=Eq(Var("stage"), Const("Reserved")), input_map={"traveller": "traveller"})
    pay.closing(pre=Or(Eq(Var("paid"), Const("Yes")), Eq(Var("paid"), Const("Declined"))),
                output_map={"paid": "paid"})
    pay.internal_service(
        "Charge",
        post=And(
            RelationAtom("TRAVELLERS", [Var("traveller"), Var("tname"), Var("level")]),
            Or(Eq(Var("paid"), Const("Yes")), Eq(Var("paid"), Const("Declined"))),
        ),
        propagated=["traveller"],
    )

    confirm = builder.task("Confirm", parent="TripDesk")
    confirm.id_variable("traveller", "TRAVELLERS", input=True)
    confirm.variable("stage", output=True)
    confirm.opening(pre=Eq(Var("paid"), Const("Yes")), input_map={"traveller": "traveller"})
    confirm.closing(pre=Eq(Var("stage"), Const("Confirmed")), output_map={"stage": "stage"})
    confirm.internal_service(
        "SendConfirmation",
        post=Eq(Var("stage"), Const("Confirmed")),
        propagated=["traveller"],
    )
    return builder.build()


def hiring_pipeline():
    """A hiring pipeline: screening, interviewing and offer management."""
    schema = DatabaseSchema.from_dict(
        {
            "CANDIDATES": {"cand_name": None, "source": None},
            "POSITIONS": {"title": None, "level": None},
        }
    )
    builder = ArtifactSystemBuilder("hiring-pipeline", schema)

    root = builder.task("Recruiting")
    root.id_variable("candidate", "CANDIDATES")
    root.id_variable("position", "POSITIONS")
    root.variable("stage")
    root.variable("outcome")
    root.artifact_relation("FUNNEL", ["candidate", "position", "stage"])
    root.internal_service(
        "Source",
        pre=Eq(Var("candidate"), NULL),
        post=And(
            And(Neq(Var("candidate"), NULL), Neq(Var("position"), NULL)),
            Eq(Var("stage"), Const("Applied")),
        ),
    )
    root.internal_service(
        "Shelve",
        pre=And(Neq(Var("candidate"), NULL), Neq(Var("stage"), Const("Hired"))),
        post=And(Eq(Var("candidate"), NULL), Eq(Var("position"), NULL)),
        insert=("FUNNEL", ["candidate", "position", "stage"]),
    )
    root.internal_service(
        "PickUp",
        pre=Eq(Var("candidate"), NULL),
        retrieve=("FUNNEL", ["candidate", "position", "stage"]),
    )
    root.internal_service(
        "Hire",
        pre=Eq(Var("outcome"), Const("Offer")),
        post=Eq(Var("stage"), Const("Hired")),
        propagated=["candidate", "position", "outcome"],
    )

    screen = builder.task("Screen", parent="Recruiting")
    screen.id_variable("candidate", "CANDIDATES", input=True)
    screen.variable("stage", output=True)
    screen.variable("sname")
    screen.variable("ssource")
    screen.opening(pre=Eq(Var("stage"), Const("Applied")), input_map={"candidate": "candidate"})
    screen.closing(
        pre=Or(Eq(Var("stage"), Const("Screened")), Eq(Var("stage"), Const("RejectedEarly"))),
        output_map={"stage": "stage"},
    )
    screen.internal_service(
        "ResumeReview",
        post=And(
            RelationAtom("CANDIDATES", [Var("candidate"), Var("sname"), Var("ssource")]),
            Or(Eq(Var("stage"), Const("Screened")), Eq(Var("stage"), Const("RejectedEarly"))),
        ),
        propagated=["candidate"],
    )

    interview = builder.task("Interview", parent="Recruiting")
    interview.id_variable("candidate", "CANDIDATES", input=True)
    interview.id_variable("position", "POSITIONS", input=True)
    interview.variable("outcome", output=True)
    interview.variable("round")
    interview.opening(
        pre=Eq(Var("stage"), Const("Screened")),
        input_map={"candidate": "candidate", "position": "position"},
    )
    interview.closing(
        pre=Or(Eq(Var("outcome"), Const("Offer")), Eq(Var("outcome"), Const("NoOffer"))),
        output_map={"outcome": "outcome"},
    )
    interview.internal_service(
        "PhoneScreen",
        pre=Eq(Var("round"), NULL),
        post=Or(Eq(Var("round"), Const("Onsite")), Eq(Var("outcome"), Const("NoOffer"))),
        propagated=["candidate", "position"],
    )
    interview.internal_service(
        "Onsite",
        pre=Eq(Var("round"), Const("Onsite")),
        post=Or(Eq(Var("outcome"), Const("Offer")), Eq(Var("outcome"), Const("NoOffer"))),
        propagated=["candidate", "position", "round"],
    )
    return builder.build()


def procurement():
    """A procure-to-pay process with requisitions, approvals and goods receipt."""
    schema = DatabaseSchema.from_dict(
        {
            "SUPPLIERS": {"supplier_name": None, "rating_ref": "RATINGS"},
            "RATINGS": {"grade": None},
            "MATERIALS": {"material_name": None, "unit": None},
        }
    )
    builder = ArtifactSystemBuilder("procurement", schema)

    root = builder.task("Purchasing")
    root.id_variable("supplier", "SUPPLIERS")
    root.id_variable("material", "MATERIALS")
    root.variable("status")
    root.variable("approved")
    root.artifact_relation("REQUISITIONS", ["supplier", "material", "status"])
    root.internal_service(
        "Raise",
        pre=Eq(Var("material"), NULL),
        post=And(
            And(Neq(Var("material"), NULL), Neq(Var("supplier"), NULL)),
            Eq(Var("status"), Const("Draft")),
        ),
    )
    root.internal_service(
        "Defer",
        pre=And(Neq(Var("material"), NULL), Neq(Var("status"), Const("Received"))),
        post=And(Eq(Var("material"), NULL), Eq(Var("supplier"), NULL)),
        insert=("REQUISITIONS", ["supplier", "material", "status"]),
    )
    root.internal_service(
        "Reopen",
        pre=Eq(Var("material"), NULL),
        retrieve=("REQUISITIONS", ["supplier", "material", "status"]),
    )

    approve = builder.task("Approve", parent="Purchasing")
    approve.id_variable("supplier", "SUPPLIERS", input=True)
    approve.variable("approved", output=True)
    approve.variable("sn")
    approve.id_variable("rating", "RATINGS")
    approve.opening(pre=Eq(Var("status"), Const("Draft")), input_map={"supplier": "supplier"})
    approve.closing(
        pre=Or(Eq(Var("approved"), Const("Yes")), Eq(Var("approved"), Const("No"))),
        output_map={"approved": "approved"},
    )
    approve.internal_service(
        "ManagerApproval",
        post=And(
            RelationAtom("SUPPLIERS", [Var("supplier"), Var("sn"), Var("rating")]),
            Or(
                And(
                    RelationAtom("RATINGS", [Var("rating"), Const("A")]),
                    Eq(Var("approved"), Const("Yes")),
                ),
                Eq(Var("approved"), Const("No")),
            ),
        ),
        propagated=["supplier"],
    )

    order = builder.task("PlaceOrder", parent="Purchasing")
    order.id_variable("supplier", "SUPPLIERS", input=True)
    order.id_variable("material", "MATERIALS", input=True)
    order.variable("status", output=True)
    order.opening(
        pre=Eq(Var("approved"), Const("Yes")),
        input_map={"supplier": "supplier", "material": "material"},
    )
    order.closing(pre=Eq(Var("status"), Const("Ordered")), output_map={"status": "status"})
    order.internal_service(
        "SendPO",
        post=Eq(Var("status"), Const("Ordered")),
        propagated=["supplier", "material"],
    )

    receive = builder.task("ReceiveGoods", parent="Purchasing")
    receive.id_variable("material", "MATERIALS", input=True)
    receive.variable("status", output=True)
    receive.opening(pre=Eq(Var("status"), Const("Ordered")), input_map={"material": "material"})
    receive.closing(
        pre=Or(Eq(Var("status"), Const("Received")), Eq(Var("status"), Const("Damaged"))),
        output_map={"status": "status"},
    )
    receive.internal_service(
        "Inspect",
        post=Or(Eq(Var("status"), Const("Received")), Eq(Var("status"), Const("Damaged"))),
        propagated=["material"],
    )
    return builder.build()


def support_tickets():
    """A customer support ticket workflow with escalation and resolution."""
    schema = DatabaseSchema.from_dict(
        {
            "USERS": {"user_name": None, "plan_ref": "PLANS"},
            "PLANS": {"plan_name": None},
        }
    )
    builder = ArtifactSystemBuilder("support-tickets", schema)

    root = builder.task("HelpDesk")
    root.id_variable("user", "USERS")
    root.variable("state")
    root.variable("priority")
    root.artifact_relation("BACKLOG", ["user", "state", "priority"])
    root.internal_service(
        "Open",
        pre=Eq(Var("user"), NULL),
        post=And(Neq(Var("user"), NULL),
                 And(Eq(Var("state"), Const("Open")), Neq(Var("priority"), NULL))),
    )
    root.internal_service(
        "Backlog",
        pre=And(Neq(Var("user"), NULL), Neq(Var("state"), Const("Closed"))),
        post=Eq(Var("user"), NULL),
        insert=("BACKLOG", ["user", "state", "priority"]),
    )
    root.internal_service(
        "Triage",
        pre=Eq(Var("user"), NULL),
        retrieve=("BACKLOG", ["user", "state", "priority"]),
    )
    root.internal_service(
        "Close",
        pre=Eq(Var("state"), Const("Resolved")),
        post=Eq(Var("state"), Const("Closed")),
        propagated=["user", "priority"],
    )

    resolve = builder.task("Resolve", parent="HelpDesk")
    resolve.id_variable("user", "USERS", input=True)
    resolve.variable("state", output=True)
    resolve.variable("un")
    resolve.id_variable("plan", "PLANS")
    resolve.opening(pre=Eq(Var("state"), Const("Open")), input_map={"user": "user"})
    resolve.closing(
        pre=Or(Eq(Var("state"), Const("Resolved")), Eq(Var("state"), Const("Escalated"))),
        output_map={"state": "state"},
    )
    resolve.internal_service(
        "FirstLine",
        post=And(
            RelationAtom("USERS", [Var("user"), Var("un"), Var("plan")]),
            Or(Eq(Var("state"), Const("Resolved")), Eq(Var("state"), Const("Escalated"))),
        ),
        propagated=["user"],
    )

    escalate = builder.task("Escalate", parent="HelpDesk")
    escalate.id_variable("user", "USERS", input=True)
    escalate.variable("state", output=True)
    escalate.opening(pre=Eq(Var("state"), Const("Escalated")), input_map={"user": "user"})
    escalate.closing(pre=Eq(Var("state"), Const("Resolved")), output_map={"state": "state"})
    escalate.internal_service(
        "SecondLine",
        post=Or(Eq(Var("state"), Const("Resolved")), Eq(Var("state"), Const("Escalated"))),
        propagated=["user"],
    )
    return builder.build()


def invoicing():
    """An accounts-receivable invoicing workflow with dunning."""
    schema = DatabaseSchema.from_dict(
        {
            "ACCOUNTS": {"account_name": None, "terms": None},
        }
    )
    builder = ArtifactSystemBuilder("invoicing", schema)

    root = builder.task("Billing")
    root.id_variable("account", "ACCOUNTS")
    root.variable("state")
    root.variable("reminders")
    root.artifact_relation("INVOICES", ["account", "state"])
    root.internal_service(
        "Issue",
        pre=Eq(Var("account"), NULL),
        post=And(Neq(Var("account"), NULL), Eq(Var("state"), Const("Issued"))),
    )
    root.internal_service(
        "File",
        pre=And(Neq(Var("account"), NULL), Neq(Var("state"), Const("Paid"))),
        post=Eq(Var("account"), NULL),
        insert=("INVOICES", ["account", "state"]),
    )
    root.internal_service(
        "Pull",
        pre=Eq(Var("account"), NULL),
        retrieve=("INVOICES", ["account", "state"]),
    )
    root.internal_service(
        "RecordPayment",
        pre=Eq(Var("state"), Const("Issued")),
        post=Or(Eq(Var("state"), Const("Paid")), Eq(Var("state"), Const("Overdue"))),
        propagated=["account", "reminders"],
    )
    root.internal_service(
        "Remind",
        pre=Eq(Var("state"), Const("Overdue")),
        post=And(Eq(Var("state"), Const("Issued")), Eq(Var("reminders"), Const("Sent"))),
        propagated=["account"],
    )
    root.internal_service(
        "WriteOff",
        pre=Eq(Var("state"), Const("Overdue")),
        post=Eq(Var("state"), Const("Cancelled")),
        propagated=["account", "reminders"],
    )
    return builder.build()


def shipment_tracking():
    """A logistics shipment tracking workflow with carrier hand-off."""
    schema = DatabaseSchema.from_dict(
        {
            "PARCELS": {"weight": None, "service_ref": "SERVICES"},
            "SERVICES": {"service_name": None},
            "CARRIERS": {"carrier_name": None},
        }
    )
    builder = ArtifactSystemBuilder("shipment-tracking", schema)

    root = builder.task("Dispatch")
    root.id_variable("parcel", "PARCELS")
    root.id_variable("carrier", "CARRIERS")
    root.variable("leg")
    root.artifact_relation("MANIFEST", ["parcel", "carrier", "leg"])
    root.internal_service(
        "Intake",
        pre=Eq(Var("parcel"), NULL),
        post=And(Neq(Var("parcel"), NULL), Eq(Var("leg"), Const("AtDepot"))),
    )
    root.internal_service(
        "Stage",
        pre=And(Neq(Var("parcel"), NULL), Neq(Var("leg"), Const("Delivered"))),
        post=And(Eq(Var("parcel"), NULL), Eq(Var("carrier"), NULL)),
        insert=("MANIFEST", ["parcel", "carrier", "leg"]),
    )
    root.internal_service(
        "LoadNext",
        pre=Eq(Var("parcel"), NULL),
        retrieve=("MANIFEST", ["parcel", "carrier", "leg"]),
    )

    handoff = builder.task("CarrierHandoff", parent="Dispatch")
    handoff.id_variable("parcel", "PARCELS", input=True)
    handoff.id_variable("carrier", "CARRIERS", output=True)
    handoff.variable("leg", output=True)
    handoff.opening(pre=Eq(Var("leg"), Const("AtDepot")), input_map={"parcel": "parcel"})
    handoff.closing(pre=Eq(Var("leg"), Const("InTransit")),
                    output_map={"carrier": "carrier", "leg": "leg"})
    handoff.internal_service(
        "Assign",
        post=And(Neq(Var("carrier"), NULL), Eq(Var("leg"), Const("InTransit"))),
        propagated=["parcel"],
    )

    deliver = builder.task("LastMile", parent="Dispatch")
    deliver.id_variable("parcel", "PARCELS", input=True)
    deliver.variable("leg", output=True)
    deliver.opening(pre=Eq(Var("leg"), Const("InTransit")), input_map={"parcel": "parcel"})
    deliver.closing(
        pre=Or(Eq(Var("leg"), Const("Delivered")), Eq(Var("leg"), Const("ReturnedToDepot"))),
        output_map={"leg": "leg"},
    )
    deliver.internal_service(
        "AttemptDelivery",
        post=Or(Eq(Var("leg"), Const("Delivered")), Eq(Var("leg"), Const("ReturnedToDepot"))),
        propagated=["parcel"],
    )
    return builder.build()


def patient_intake():
    """A clinic patient intake workflow with triage and treatment planning."""
    schema = DatabaseSchema.from_dict(
        {
            "PATIENTS": {"patient_name": None, "insurer_ref": "INSURERS"},
            "INSURERS": {"network": None},
        }
    )
    builder = ArtifactSystemBuilder("patient-intake", schema)

    root = builder.task("FrontDesk")
    root.id_variable("patient", "PATIENTS")
    root.variable("stage")
    root.variable("covered")
    root.artifact_relation("WAITING", ["patient", "stage"])
    root.internal_service(
        "CheckIn",
        pre=Eq(Var("patient"), NULL),
        post=And(Neq(Var("patient"), NULL), Eq(Var("stage"), Const("CheckedIn"))),
    )
    root.internal_service(
        "Wait",
        pre=And(Neq(Var("patient"), NULL), Neq(Var("stage"), Const("Discharged"))),
        post=Eq(Var("patient"), NULL),
        insert=("WAITING", ["patient", "stage"]),
    )
    root.internal_service(
        "CallNext",
        pre=Eq(Var("patient"), NULL),
        retrieve=("WAITING", ["patient", "stage"]),
    )
    root.internal_service(
        "Discharge",
        pre=Eq(Var("stage"), Const("Treated")),
        post=Eq(Var("stage"), Const("Discharged")),
        propagated=["patient", "covered"],
    )

    verify = builder.task("VerifyCoverage", parent="FrontDesk")
    verify.id_variable("patient", "PATIENTS", input=True)
    verify.variable("covered", output=True)
    verify.variable("pn")
    verify.id_variable("insurer", "INSURERS")
    verify.opening(pre=Eq(Var("stage"), Const("CheckedIn")), input_map={"patient": "patient"})
    verify.closing(
        pre=Or(Eq(Var("covered"), Const("Yes")), Eq(Var("covered"), Const("No"))),
        output_map={"covered": "covered"},
    )
    verify.internal_service(
        "QueryInsurer",
        post=And(
            RelationAtom("PATIENTS", [Var("patient"), Var("pn"), Var("insurer")]),
            Or(
                And(
                    RelationAtom("INSURERS", [Var("insurer"), Const("InNetwork")]),
                    Eq(Var("covered"), Const("Yes")),
                ),
                Eq(Var("covered"), Const("No")),
            ),
        ),
        propagated=["patient"],
    )

    treat = builder.task("Treat", parent="FrontDesk")
    treat.id_variable("patient", "PATIENTS", input=True)
    treat.variable("stage", output=True)
    treat.opening(pre=Eq(Var("covered"), Const("Yes")), input_map={"patient": "patient"})
    treat.closing(pre=Eq(Var("stage"), Const("Treated")), output_map={"stage": "stage"})
    treat.internal_service(
        "Consultation",
        post=Or(Eq(Var("stage"), Const("Treated")), Eq(Var("stage"), Const("NeedsFollowUp"))),
        propagated=["patient"],
    )
    treat.internal_service(
        "FollowUp",
        pre=Eq(Var("stage"), Const("NeedsFollowUp")),
        post=Eq(Var("stage"), Const("Treated")),
        propagated=["patient"],
    )
    return builder.build()


def expense_reimbursement():
    """An employee expense reimbursement workflow with audit sampling."""
    schema = DatabaseSchema.from_dict(
        {
            "EMPLOYEES": {"emp_name": None, "dept_ref": "DEPARTMENTS"},
            "DEPARTMENTS": {"dept_name": None},
        }
    )
    builder = ArtifactSystemBuilder("expense-reimbursement", schema)

    root = builder.task("ExpenseDesk")
    root.id_variable("employee", "EMPLOYEES")
    root.variable("state")
    root.variable("flagged")
    root.artifact_relation("REPORTS", ["employee", "state", "flagged"])
    root.internal_service(
        "Submit",
        pre=Eq(Var("employee"), NULL),
        post=And(Neq(Var("employee"), NULL), Eq(Var("state"), Const("Submitted"))),
    )
    root.internal_service(
        "Queue",
        pre=And(Neq(Var("employee"), NULL), Neq(Var("state"), Const("Reimbursed"))),
        post=Eq(Var("employee"), NULL),
        insert=("REPORTS", ["employee", "state", "flagged"]),
    )
    root.internal_service(
        "Process",
        pre=Eq(Var("employee"), NULL),
        retrieve=("REPORTS", ["employee", "state", "flagged"]),
    )
    root.internal_service(
        "Reimburse",
        pre=And(Eq(Var("state"), Const("Approved")), Neq(Var("flagged"), Const("Yes"))),
        post=Eq(Var("state"), Const("Reimbursed")),
        propagated=["employee", "flagged"],
    )
    root.internal_service(
        "Audit",
        pre=Eq(Var("state"), Const("Approved")),
        post=Or(Eq(Var("flagged"), Const("Yes")), Eq(Var("flagged"), Const("No"))),
        propagated=["employee", "state"],
    )

    review = builder.task("Review", parent="ExpenseDesk")
    review.id_variable("employee", "EMPLOYEES", input=True)
    review.variable("state", output=True)
    review.variable("en")
    review.id_variable("dept", "DEPARTMENTS")
    review.opening(pre=Eq(Var("state"), Const("Submitted")), input_map={"employee": "employee"})
    review.closing(
        pre=Or(Eq(Var("state"), Const("Approved")), Eq(Var("state"), Const("Rejected"))),
        output_map={"state": "state"},
    )
    review.internal_service(
        "ManagerReview",
        post=And(
            RelationAtom("EMPLOYEES", [Var("employee"), Var("en"), Var("dept")]),
            Or(Eq(Var("state"), Const("Approved")), Eq(Var("state"), Const("Rejected"))),
        ),
        propagated=["employee"],
    )
    return builder.build()


def course_registration():
    """A university course registration workflow with waitlisting."""
    schema = DatabaseSchema.from_dict(
        {
            "STUDENTS": {"student_name": None, "standing": None},
            "COURSES": {"course_name": None, "capacity": None},
        }
    )
    builder = ArtifactSystemBuilder("course-registration", schema)

    root = builder.task("Registrar")
    root.id_variable("student", "STUDENTS")
    root.id_variable("course", "COURSES")
    root.variable("state")
    root.artifact_relation("WAITLIST", ["student", "course", "state"])
    root.internal_service(
        "Request",
        pre=Eq(Var("student"), NULL),
        post=And(
            And(Neq(Var("student"), NULL), Neq(Var("course"), NULL)),
            Eq(Var("state"), Const("Requested")),
        ),
    )
    root.internal_service(
        "Waitlist",
        pre=And(Neq(Var("student"), NULL), Eq(Var("state"), Const("Full"))),
        post=And(Eq(Var("student"), NULL), Eq(Var("course"), NULL)),
        insert=("WAITLIST", ["student", "course", "state"]),
    )
    root.internal_service(
        "PromoteFromWaitlist",
        pre=Eq(Var("student"), NULL),
        retrieve=("WAITLIST", ["student", "course", "state"]),
    )
    root.internal_service(
        "Enroll",
        pre=Eq(Var("state"), Const("Requested")),
        post=Or(Eq(Var("state"), Const("Enrolled")), Eq(Var("state"), Const("Full"))),
        propagated=["student", "course"],
    )
    root.internal_service(
        "Drop",
        pre=Eq(Var("state"), Const("Enrolled")),
        post=And(
            And(Eq(Var("student"), NULL), Eq(Var("course"), NULL)),
            Eq(Var("state"), NULL),
        ),
    )

    advise = builder.task("Advising", parent="Registrar")
    advise.id_variable("student", "STUDENTS", input=True)
    advise.variable("state", output=True)
    advise.variable("sn")
    advise.variable("standing")
    advise.opening(pre=Eq(Var("state"), Const("Requested")), input_map={"student": "student"})
    advise.closing(
        pre=Or(Eq(Var("state"), Const("Cleared")), Eq(Var("state"), Const("Hold"))),
        output_map={"state": "state"},
    )
    advise.internal_service(
        "CheckStanding",
        post=And(
            RelationAtom("STUDENTS", [Var("student"), Var("sn"), Var("standing")]),
            Or(
                And(Eq(Var("standing"), Const("Good")), Eq(Var("state"), Const("Cleared"))),
                Eq(Var("state"), Const("Hold")),
            ),
        ),
        propagated=["student"],
    )
    return builder.build()


#: Factory registry: name -> zero-argument callable building a fresh system.
REAL_WORKFLOW_FACTORIES: Dict[str, Callable[[], object]] = {
    "order-fulfillment": order_fulfillment,
    "order-fulfillment-buggy": order_fulfillment_buggy,
    "loan-origination": loan_origination,
    "insurance-claim": insurance_claim,
    "travel-booking": travel_booking,
    "hiring-pipeline": hiring_pipeline,
    "procurement": procurement,
    "support-tickets": support_tickets,
    "invoicing": invoicing,
    "shipment-tracking": shipment_tracking,
    "patient-intake": patient_intake,
    "expense-reimbursement": expense_reimbursement,
    "course-registration": course_registration,
}


def real_workflows() -> List:
    """Fresh instances of every workflow in the real suite (excluding the buggy variant)."""
    return [
        factory()
        for name, factory in REAL_WORKFLOW_FACTORIES.items()
        if name != "order-fulfillment-buggy"
    ]
