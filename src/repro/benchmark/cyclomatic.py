"""Cyclomatic complexity of HAS* specifications (Section 4.2).

The paper adapts McCabe's cyclomatic complexity to HAS*: pick a task ``T`` and
a non-id variable ``x`` of ``T``, project every service of ``T`` onto ``{x}``
(keeping only the comparisons between ``x`` and constants), and view the
result as a control-flow graph whose nodes are the possible "abstract values"
of ``x`` (the constants it is compared against, ``null`` and a wildcard) and
whose edges are the value changes the services allow.  The cyclomatic
complexity of the projection is ``|E| - |V| + 2``; the complexity ``M(A)`` of
the specification is the maximum over all tasks and all non-id variables.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.has.artifact_system import ArtifactSystem
from repro.has.conditions import (
    And,
    Condition,
    Const,
    Eq,
    FalseCond,
    Neq,
    Not,
    Or,
    RelationAtom,
    TrueCond,
    Var,
)
from repro.has.tasks import TaskSchema

#: Abstract value standing for "any value not among the mentioned constants".
OTHER = "__other__"
#: Abstract value for null.
NULLVAL = "__null__"


def _constants_compared_with(variable: str, conditions: Sequence[Condition]) -> Set[object]:
    """Constants that appear in (dis)equalities with the variable."""
    constants: Set[object] = set()
    for condition in conditions:
        for atom in condition.atoms():
            if isinstance(atom, (Eq, Neq)):
                terms = (atom.left, atom.right)
                names = [t.name for t in terms if isinstance(t, Var)]
                consts = [t.value for t in terms if isinstance(t, Const)]
                if variable in names:
                    constants.update(consts)
    return constants


def _project_satisfiable(condition: Condition, variable: str, value: object) -> bool:
    """Whether the condition, projected onto ``{variable}``, can hold when variable = value.

    Atoms not mentioning the variable are treated as satisfiable (three-valued
    projection: only definite contradictions on the variable rule a value out).
    """
    if isinstance(condition, TrueCond):
        return True
    if isinstance(condition, FalseCond):
        return False
    if isinstance(condition, And):
        return _project_satisfiable(condition.left, variable, value) and _project_satisfiable(
            condition.right, variable, value
        )
    if isinstance(condition, Or):
        return _project_satisfiable(condition.left, variable, value) or _project_satisfiable(
            condition.right, variable, value
        )
    if isinstance(condition, Not):
        inner = condition.operand
        if isinstance(inner, Eq):
            return _project_satisfiable(Neq(inner.left, inner.right), variable, value)
        if isinstance(inner, Neq):
            return _project_satisfiable(Eq(inner.left, inner.right), variable, value)
        return True
    if isinstance(condition, (Eq, Neq)):
        left, right = condition.left, condition.right
        if isinstance(left, Var) and left.name == variable and isinstance(right, Const):
            constant = right.value
        elif isinstance(right, Var) and right.name == variable and isinstance(left, Const):
            constant = left.value
        else:
            return True
        if value == OTHER:
            # "Some value different from every mentioned constant": an equality
            # with a specific constant is unsatisfiable, a disequality holds.
            matches = False
        elif value == NULLVAL:
            matches = constant is None
        else:
            matches = constant == value
        return matches if isinstance(condition, Eq) else not matches
    return True


def _projection_graph(
    task: TaskSchema, variable: str, system: ArtifactSystem
) -> Tuple[int, int]:
    """(|V|, |E|) of the control-flow graph obtained by projecting onto the variable."""
    services = list(system.internal_services(task.name))
    conditions: List[Condition] = []
    for service in services:
        conditions.append(service.pre)
        conditions.append(service.post)
    for child in system.children_of(task.name):
        conditions.append(system.opening_service(child).pre)
    conditions.append(system.closing_service(task.name).pre)

    constants = _constants_compared_with(variable, conditions)
    constants.discard(None)
    nodes: List[object] = [NULLVAL, OTHER] + sorted(constants, key=str)
    edges: Set[Tuple[object, object]] = set()

    transitions: List[Tuple[str, Condition, Condition, bool]] = []
    for service in services:
        preserves = variable in service.propagated
        transitions.append((service.name, service.pre, service.post, preserves))
    for child in system.children_of(task.name):
        opening = system.opening_service(child)
        transitions.append((opening.name, opening.pre, TrueCond(), True))
        closing = system.closing_service(child)
        returned = set(closing.output_mapping().values())
        transitions.append((closing.name, TrueCond(), TrueCond(), variable not in returned))
    closing = system.closing_service(task.name)
    transitions.append((closing.name, closing.pre, TrueCond(), True))

    for _name, pre, post, preserves in transitions:
        post_mentions = variable in post.variables()
        for source in nodes:
            if not _project_satisfiable(pre, variable, source):
                continue
            if preserves:
                targets: Sequence[object] = [source]
            elif not post_mentions:
                # The projected service leaves x completely unconstrained:
                # abstract the outcome as the single wildcard node rather than
                # fanning out to every abstract value (keeps the metric in the
                # range the paper reports for hand-written workflows).
                targets = [OTHER]
            else:
                targets = [t for t in nodes if _project_satisfiable(post, variable, t)]
            for target in targets:
                edges.add((source, target))
    return len(nodes), len(edges)


def cyclomatic_complexity(system: ArtifactSystem) -> int:
    """``M(A)``: the maximum projected cyclomatic complexity over tasks and data variables."""
    best = 1
    for task in system.tasks:
        for variable in task.value_variables:
            n_nodes, n_edges = _projection_graph(task, variable.name, system)
            complexity = n_edges - n_nodes + 2
            best = max(best, complexity)
    return best
