"""Benchmark substrate: workflow suites, property templates, metrics, runner.

This subpackage provides everything needed to regenerate the paper's
evaluation (Section 4):

* :mod:`repro.benchmark.realworld` -- the "real" workflow suite (hand-modelled
  realistic business processes, including the order-fulfillment running
  example of the paper's Appendix B),
* :mod:`repro.benchmark.synthetic` -- the random workflow generator of
  Appendix D,
* :mod:`repro.benchmark.properties` -- the 12 LTL templates of Table 4 and
  their instantiation into LTL-FO properties,
* :mod:`repro.benchmark.cyclomatic` -- the cyclomatic-complexity metric for
  HAS* specifications (Section 4.2),
* :mod:`repro.benchmark.runner` -- the experiment runner that aggregates
  verification times, failures and speedups into the rows of Tables 1-4 and
  the series of Figure 9.
"""

from repro.benchmark.realworld import real_workflows, order_fulfillment, order_fulfillment_buggy
from repro.benchmark.synthetic import SyntheticConfig, generate_synthetic_workflow, synthetic_workflows
from repro.benchmark.properties import LTL_TEMPLATES, generate_properties, property_from_template
from repro.benchmark.cyclomatic import cyclomatic_complexity
from repro.benchmark.runner import BenchmarkRunner, RunRecord, WorkflowSuite

__all__ = [
    "real_workflows",
    "order_fulfillment",
    "order_fulfillment_buggy",
    "SyntheticConfig",
    "generate_synthetic_workflow",
    "synthetic_workflows",
    "LTL_TEMPLATES",
    "generate_properties",
    "property_from_template",
    "cyclomatic_complexity",
    "BenchmarkRunner",
    "RunRecord",
    "WorkflowSuite",
]
