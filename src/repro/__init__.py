"""VERIFAS reproduction: a practical verifier for artifact systems.

This package re-implements the system described in

    Yuliang Li, Alin Deutsch, Victor Vianu.
    "VERIFAS: A Practical Verifier for Artifact Systems." PVLDB 10(9), 2017.

The public API is intentionally small; most users only need:

* :mod:`repro.has` -- build HAS* artifact-system specifications,
* :mod:`repro.ltl` -- build LTL-FO properties,
* :class:`repro.core.Verifier` -- verify a property against a specification,
* :mod:`repro.api` -- cancellable, deadline-aware verification sessions with
  typed progress events (the stable public surface over the core search),
* :mod:`repro.client` -- the stdlib HTTP client for a verification server's
  ``/v1`` API (submit / wait / cancel / iter_events),
* :mod:`repro.spec` -- save / load specifications and properties as versioned
  spec files (``SCHEMA_VERSION``-stamped JSON or YAML),
* :mod:`repro.service` -- batch verification with a worker pool and a
  content-addressed result cache (also behind the ``python -m repro`` CLI),
* :mod:`repro.benchmark` -- the real / synthetic workflow suites and the
  experiment harness that regenerates the paper's tables and figures.
"""

from repro.core.verifier import VerificationOutcome, VerificationResult, Verifier
from repro.core.options import VerifierOptions

__all__ = [
    "Verifier",
    "VerifierOptions",
    "VerificationResult",
    "VerificationOutcome",
    "__version__",
]

__version__ = "1.0.0"
