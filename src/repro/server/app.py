"""The verification server: HTTP API + a worker pool over a persistent store.

A :class:`VerificationServer` owns

* a :class:`~repro.server.store.JobStore` (SQLite) holding the durable job
  queue and every computed result,
* a :class:`~repro.server.store.StoreBackedCache` (in-memory LRU read-through
  over the store) plugged into a
  :class:`~repro.service.engine.VerificationService`,
* a worker pool that claims queued jobs and verifies them -- either
  **thread** workers (in-process, GIL-shared; always available) or
  **process** workers (:mod:`repro.server.workers`: one long-lived OS
  process per slot, truly parallel CPU-bound searches, cross-process
  cancellation, crash requeue and recycling).  ``worker_model="process"``
  degrades to threads automatically when the sandbox cannot spawn
  processes, mirroring :mod:`repro.service.engine`'s ``BrokenProcessPool``
  fallback, and
* a :class:`~http.server.ThreadingHTTPServer` running
  :class:`~repro.server.handlers.ApiHandler`.

On startup the store is repaired with :func:`repro.server.recovery.recover`:
interrupted jobs re-queue, completed results survive, and re-submitted
payloads whose fingerprints are already stored complete as cache hits without
invoking the verifier (the ``verifications_run`` metric stays flat).

Several server processes may share one ``--store`` file (the store runs in
WAL mode with per-thread connections and atomic claim transactions): give
each a unique ``server_id`` so worker claims are attributable, startup
recovery only requeues that server's own previous claims, a ``DELETE``
handled by one server cancels a search running on another (workers poll the
persisted ``cancel_requested`` flag), and the store's ``sweeper`` lease
elects a single server to run TTL expiry and dead-server rescue at a time.

::

    server = VerificationServer(store_path="jobs.db", port=0, workers=2)
    server.start()
    ...  # POST http://127.0.0.1:{server.port}/v1/jobs
    server.stop()
"""

from __future__ import annotations

import os
import sqlite3
import threading
import time
import uuid
from http.server import ThreadingHTTPServer
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple, Union

from repro.analysis import (
    SpecRejectedError,
    analyze_property,
    analyze_system,
    sort_diagnostics,
)
from repro.core.control import (
    CancellationToken,
    PhaseTimer,
    RateLimitedPoll,
    SearchControl,
)
from repro.core.options import VerifierOptions
from repro.core.verifier import VerificationResult, Verifier
from repro.events import (
    CacheServed,
    CancelRequested,
    EventBroker,
    EventManager,
    JobCancelled,
    JobCompleted,
    JobFailed,
    JobSubmitted,
    LogSink,
    MetricsSink,
    QuotaExceeded,
    SpanRecorded,
    StaleJobsRequeued,
    StoreSink,
    SweepCompleted,
    SweeperLeaseMiss,
    TenantThrottled,
    TraceSink,
    VerificationStarted,
)
from repro.obs import (
    Span,
    TraceContext,
    TraceScope,
    Tracer,
    build_tree,
    new_trace_id,
)
from repro.server.handlers import ApiHandler
from repro.server.metrics import ServerMetrics
from repro.server.recovery import RecoveryReport, recover
from repro.server.store import (
    JOB_STATUSES,
    TERMINAL_STATUSES,
    JobStore,
    PendingQuotaExceeded,
    StoreBackedCache,
    StoredJob,
)
from repro.server.workers import (
    ProcessWorkerAgent,
    deadline_ms_binding,
    pool_snapshot,
    probe_process_support,
)
from repro.service.cache import ResultCache
from repro.service.engine import VerificationService
from repro.service.jobs import VerificationJob
from repro.spec.codec import (
    SCHEMA_VERSION,
    dump_property,
    dump_system,
    load_property,
    load_system,
)
from repro.spec.errors import SpecError, SpecVersionError
from repro.tenancy import (
    DEFAULT_TEST_API_KEY,
    AuthFailure,
    Tenant,
    TenantRateLimiter,
    TenantRegistry,
    ThrottledError,
)


class _HttpServer(ThreadingHTTPServer):
    daemon_threads = True
    allow_reuse_address = True


class VerificationServer:
    """Long-running verification-as-a-service process (HTTP + workers + store)."""

    def __init__(
        self,
        store_path: Union[str, "os.PathLike"] = ":memory:",
        host: str = "127.0.0.1",
        port: int = 8080,
        workers: int = 2,
        default_options: Optional[VerifierOptions] = None,
        cache_entries: int = 10_000,
        quiet: bool = True,
        sweep_interval: float = 2.0,
        progress_interval: int = 500,
        worker_model: str = "thread",
        max_jobs_per_worker: int = 32,
        heartbeat_interval: float = 1.0,
        stale_heartbeat_seconds: float = 15.0,
        server_id: Optional[str] = None,
        cancel_poll_interval: float = 0.25,
        long_poll_max_ms: int = 30_000,
        push_fallback_interval: float = 0.5,
        event_log_stream: Optional[Any] = None,
        trace_enabled: Optional[bool] = None,
        auth_enabled: Optional[bool] = None,
        tenant_cache_seconds: float = 1.0,
    ):
        if worker_model not in ("thread", "process"):
            raise ValueError(
                f"worker_model must be 'thread' or 'process', got {worker_model!r}"
            )
        if server_id is not None and (
            not isinstance(server_id, str)
            or not server_id
            or server_id.split() != [server_id]
            or ":" in server_id
        ):
            # ':' is the reserved claim-prefix separator: allowing it would
            # let one server's recovery prefix ("10.0.0.2:") accidentally
            # match a peer's claims ("10.0.0.2:8081:proc-0") and requeue
            # jobs running live on that peer.
            raise ValueError(
                "server_id must be a non-empty string without whitespace or ':',"
                f" got {server_id!r}"
            )
        #: This server's identity in a shared-store deployment.  Worker ids
        #: are prefixed ``"<server_id>:"`` so claims are attributable, and
        #: startup recovery requeues only this server's own previous claims.
        #: ``None`` (the default) is single-server mode: recovery repairs the
        #: whole store, exactly as before.
        self.server_id = server_id
        #: Nonce distinguishing this process *incarnation* inside worker ids.
        #: Ownership predicates compare full worker ids, so without it a
        #: same-server-id rolling restart would collide with its
        #: predecessor's claims ("a:proc-0" == "a:proc-0") and the old
        #: incarnation could keep heartbeating / finalising jobs the new
        #: one re-claimed.
        self._incarnation = uuid.uuid4().hex[:6]
        #: Prefix baked into every worker id; starts with "<server_id>:" in
        #: shared-store mode so claims stay attributable to the server.
        self.worker_id_prefix = (
            f"{server_id}:{self._incarnation}:"
            if server_id
            else f"{self._incarnation}:"
        )
        #: Identity used for store leases (unique per process even when the
        #: operator forgot to set distinct server ids).
        self._lease_owner = (
            f"{server_id}:{uuid.uuid4().hex[:8]}"
            if server_id
            else f"srv:{uuid.uuid4().hex[:8]}"
        )
        #: How often a *running* thread-model job's token re-polls the store's
        #: ``cancel_requested`` flag (cross-server DELETE latency bound).
        self.cancel_poll_interval = cancel_poll_interval
        self.host = host
        self.port = port
        self.quiet = quiet
        self.workers = max(0, workers)
        #: The worker model requested at construction ("thread" | "process").
        self.requested_worker_model = worker_model
        #: The model actually running (may degrade to "thread" at start()).
        self.worker_model = worker_model
        #: Why a requested process pool degraded to threads (None otherwise).
        self.worker_fallback_error: Optional[str] = None
        #: Recycle a worker process after this many dispatched jobs.
        self.max_jobs_per_worker = max(1, max_jobs_per_worker)
        if stale_heartbeat_seconds <= 2.0 * heartbeat_interval:
            # Workers (process agents in their drain loops, thread claims
            # via the dedicated heartbeat thread) refresh heartbeats once
            # per heartbeat_interval: a staleness threshold inside that
            # cadence would make the sweeper perpetually "rescue" live jobs
            # -- cancel, requeue, re-claim, forever.
            raise ValueError(
                f"stale_heartbeat_seconds ({stale_heartbeat_seconds}) must exceed"
                f" twice heartbeat_interval ({heartbeat_interval}): workers only"
                " refresh claims that often"
            )
        #: How often (seconds) workers refresh their jobs' store heartbeats
        #: (process agents from their drain loops; thread claims from the
        #: dedicated heartbeat thread).
        self.heartbeat_interval = heartbeat_interval
        #: Heartbeat age past which the sweeper requeues a running job whose
        #: owner is presumed dead.
        self.stale_heartbeat_seconds = stale_heartbeat_seconds
        #: How often (seconds) the sweeper thread expires TTL'd jobs/results.
        self.sweep_interval = sweep_interval
        #: Explored-state interval between persisted ``progress`` events.
        self.progress_interval = progress_interval
        #: Cap on a single long-poll / SSE wait (``?wait_ms=`` is clamped to
        #: this); also the default SSE streaming budget per request.
        self.long_poll_max_ms = max(0, int(long_poll_max_ms))
        #: How long a long-poll/SSE waiter sleeps between store re-reads when
        #: no in-process wakeup arrives.  This bounds the delivery latency of
        #: events written by *other* servers sharing the store file (their
        #: commits never reach this process's broker): push degrades to
        #: cursor polling at this cadence, never below it.
        self.push_fallback_interval = max(0.05, push_fallback_interval)
        self.store = JobStore(store_path)
        self.metrics = ServerMetrics(server_id=server_id)
        if auth_enabled is None:
            auth_enabled = os.environ.get("REPRO_TEST_AUTH", "").strip() == "1"
        #: Whether the multi-tenant front door is on (see
        #: :mod:`repro.tenancy`).  Default comes from ``REPRO_TEST_AUTH``
        #: (a test hook, like ``REPRO_TRACE``); operators use ``serve
        #: --auth``.  Off -- the zero-config default -- every request is
        #: anonymous and behaviour is exactly the pre-tenancy API.
        self.auth_enabled = bool(auth_enabled)
        #: Tenant records + API-key resolution, persisted in this store.
        #: ``tenant_cache_seconds`` bounds cross-server revocation latency.
        self.tenants = TenantRegistry(
            self.store, cache_ttl_seconds=tenant_cache_seconds
        )
        #: Per-tenant submit token buckets (in-memory, per server).
        self.rate_limiter = TenantRateLimiter()
        if self.auth_enabled and os.environ.get("REPRO_TEST_AUTH", "").strip() == "1":
            # Test bootstrap: a deterministic tenant every server sharing
            # the store converges on, so REPRO_TEST_AUTH=1 re-runs of the
            # e2e suites need no out-of-band key exchange.  `ensure` is
            # race-safe across processes.
            self.tenants.ensure(
                "repro-test",
                api_key=os.environ.get("REPRO_TEST_API_KEY", DEFAULT_TEST_API_KEY),
                tenant_id="repro-test",
            )
        #: The typed event bus: every job / worker / sweeper occurrence is
        #: fired here once, and the sinks fan it out to the durable per-job
        #: log, the /metrics counters, and (optionally) a log stream.
        self.events = EventManager()
        #: In-process wakeup hub for long-poll/SSE subscribers, fed by the
        #: store's post-commit update hook (so *any* committed write that an
        #: event poller could observe -- appends, terminal flips, cancels --
        #: wakes the waiters, whichever code path wrote it).
        self.broker = EventBroker()
        self.store.on_job_update = self.broker.notify
        self.events.add_sink(
            StoreSink(
                self.store,
                lossy_busy_timeout_seconds=self.store.heartbeat_busy_timeout_seconds,
            )
        )
        self.events.add_sink(MetricsSink(self.metrics))
        self.events.add_sink(TraceSink(self.store))
        if event_log_stream is not None:
            self.events.add_sink(LogSink(event_log_stream))
        if trace_enabled is None:
            trace_enabled = os.environ.get("REPRO_TRACE", "").strip().lower() not in (
                "", "0", "false", "no",
            )
        #: Whether this server records distributed-trace spans (see
        #: :mod:`repro.obs`).  Default comes from ``REPRO_TRACE``; when off,
        #: the tracer hands out a shared no-op span and the instrumented
        #: paths cost one attribute check each (``benchmarks/bench_trace.py``
        #: pins the overhead).  Incoming ``traceparent`` headers still land
        #: on the job row either way, so a traced *client* can correlate
        #: ``/events`` entries even against an untraced server.
        self.trace_enabled = bool(trace_enabled)
        self.tracer = Tracer(enabled=self.trace_enabled, exporter=self._export_span)
        # In shared-store mode, startup recovery spares own-prefix claims
        # whose heartbeats are still fresh: a rolling restart overlaps with
        # the old same-id instance draining (and heartbeating) its last
        # jobs, and yanking those would discard nearly-finished work.
        self.recovery: RecoveryReport = recover(
            self.store,
            server_id=server_id,
            heartbeat_grace_seconds=(
                stale_heartbeat_seconds if server_id is not None else None
            ),
            events=self.events,
        )
        self.cache = StoreBackedCache(self.store, ResultCache(max_entries=cache_entries))
        static_env = os.environ.get("REPRO_STATIC_PRUNING", "").strip().lower()
        if static_env:
            # Deployment kill-switch for the repro.analysis pre-search
            # pruning pass: REPRO_STATIC_PRUNING=0 forces the unpruned
            # search, =1 forces it on, overriding the constructed defaults
            # (mirrors REPRO_TRACE; per-job `options` still win).
            default_options = (default_options or VerifierOptions()).with_(
                static_pruning=static_env not in ("0", "false", "no")
            )
        dataflow_env = os.environ.get("REPRO_DATAFLOW_PRUNING", "").strip().lower()
        if dataflow_env:
            # Same kill-switch contract for the in-search dataflow pruning
            # pass: REPRO_DATAFLOW_PRUNING=0 forces it off, =1 forces it on.
            default_options = (default_options or VerifierOptions()).with_(
                dataflow_pruning=dataflow_env not in ("0", "false", "no")
            )
        self.service = VerificationService(
            cache=self.cache, default_options=default_options
        )
        self._stop_event = threading.Event()
        self._wakeup = threading.Event()
        self._worker_threads: List[threading.Thread] = []
        self._agents: List[ProcessWorkerAgent] = []
        self._httpd: Optional[_HttpServer] = None
        self._http_thread: Optional[threading.Thread] = None
        self._sweeper_thread: Optional[threading.Thread] = None
        self._heartbeat_thread: Optional[threading.Thread] = None
        # Cancel hooks of jobs currently running on this server's workers,
        # so `DELETE /v1/jobs/<id>` can trip a live search: a thread job
        # registers its CancellationToken.cancel, a process job the `set` of
        # the multiprocessing.Event its child polls.
        self._cancel_lock = threading.Lock()
        self._cancellers: Dict[str, Callable[[], None]] = {}
        # Thread-model jobs currently executing on this server (job id ->
        # worker id).  The dedicated heartbeat thread refreshes their store
        # heartbeats -- the worker thread itself is busy inside the search
        # -- so a peer server's stale sweep never mistakes a live thread
        # job for a dead one, while this process dying hard leaves the
        # heartbeat to go stale and the job to be rescued.  (Process-model
        # agents heartbeat from their own drain loops instead.)
        self._inflight: Dict[str, str] = {}
        #: Monotonic stamp of the sweeper loop's last completed pass (lease
        #: misses count: the loop is alive either way); ``/readyz`` flags a
        #: wedged sweeper through its age.
        self._last_sweep_tick: Optional[float] = None

    def _export_span(self, span: Span) -> None:
        """The tracer's exporter: finished spans ride the event bus to the
        :class:`~repro.events.TraceSink` (and the span counter)."""
        self.events.fire(
            SpanRecorded(job_id=span.job_id, data=span.as_dict(), trace_id=span.trace_id)
        )

    # ---------------------------------------------------------------- lifecycle

    def start(self) -> None:
        """Bind the HTTP socket (resolving ``port=0``) and start the workers.

        A requested ``worker_model="process"`` is probed first (one trivial
        spawn-and-join); environments that cannot spawn processes degrade to
        thread workers, recorded in :attr:`worker_fallback_error` and under
        ``workers.fallback_error`` in ``/metrics``.
        """
        if self._httpd is not None:
            raise RuntimeError("server already started")
        if self.worker_model == "process" and self.workers > 0:
            error = probe_process_support()
            if error is not None:
                self.worker_model = "thread"
                self.worker_fallback_error = error
        self._httpd = _HttpServer((self.host, self.port), ApiHandler)
        self._httpd.app = self  # type: ignore[attr-defined]
        self.port = self._httpd.server_address[1]
        self._http_thread = threading.Thread(
            target=self._httpd.serve_forever,
            kwargs={"poll_interval": 0.05},
            name="repro-http",
            daemon=True,
        )
        self._http_thread.start()
        if self.worker_model == "process":
            for index in range(self.workers):
                agent = ProcessWorkerAgent(self, index)
                agent.start()
                self._agents.append(agent)
        else:
            for index in range(self.workers):
                thread = threading.Thread(
                    target=self._worker_loop,
                    args=(index,),
                    name=f"repro-worker-{index}",
                    daemon=True,
                )
                thread.start()
                self._worker_threads.append(thread)
        self._sweeper_thread = threading.Thread(
            target=self._sweeper_loop, name="repro-sweeper", daemon=True
        )
        self._sweeper_thread.start()
        self._heartbeat_thread = threading.Thread(
            target=self._heartbeat_loop, name="repro-heartbeat", daemon=True
        )
        self._heartbeat_thread.start()

    def stop(self) -> None:
        """Graceful shutdown: finish in-flight jobs, leave the queue persisted."""
        self._stop_event.set()
        self._wakeup.set()
        if self._httpd is not None:
            self._httpd.shutdown()
            self._httpd.server_close()
        if self._http_thread is not None:
            self._http_thread.join(timeout=5)
        if self._sweeper_thread is not None:
            self._sweeper_thread.join(timeout=5)
        if self._heartbeat_thread is not None:
            self._heartbeat_thread.join(timeout=5)
        # The heartbeat thread is gone, but in-flight thread jobs may run for a while
        # yet -- keep their heartbeats fresh while waiting, or a peer
        # server's stale sweep would "rescue" (re-run) jobs that are about
        # to finish right here.  (Process agents heartbeat from their own
        # drain loops until done.)
        deadline = time.monotonic() + 60
        for thread in self._worker_threads:
            while thread.is_alive() and time.monotonic() < deadline:
                thread.join(timeout=max(0.05, min(1.0, self.heartbeat_interval)))
                if thread.is_alive():
                    try:
                        self._sync_inflight()
                    except Exception:  # pragma: no cover - store unusable
                        break
        for agent in self._agents:
            agent.join(timeout=60)
        for agent in self._agents:
            if not agent.is_alive():
                agent.close()  # tear down the (now idle) child process
        workers_done = all(
            not thread.is_alive() for thread in self._worker_threads
        ) and all(not agent.is_alive() for agent in self._agents)
        try:
            # Hand the sweeper role to a peer immediately instead of making
            # it wait out the lease TTL.
            self.store.release_lease("sweeper", self._lease_owner)
        except Exception:  # pragma: no cover - store already unusable
            pass
        if workers_done:
            self.store.close()
        # else: a worker is still mid-verification past the join timeout;
        # leave the store open so its mark_done can land (daemon threads die
        # with the process anyway, and the job would simply re-run on the
        # next restart if it doesn't).

    def serve_forever(self) -> None:
        """Block until stopped or interrupted; starts the server if needed."""
        if self._httpd is None:
            self.start()
        try:
            while not self._stop_event.wait(timeout=0.5):
                pass
        except KeyboardInterrupt:  # pragma: no cover - interactive use
            pass
        finally:
            self.stop()

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    # ------------------------------------------------------------------ workers

    def _worker_loop(self, index: int) -> None:
        worker_id = f"{self.worker_id_prefix}thread-{index}"
        while not self._stop_event.is_set():
            try:
                stored = self.store.claim_next(worker_id=worker_id)
            except sqlite3.ProgrammingError:
                return  # store closed mid-shutdown
            except Exception:
                # Transient (e.g. an exhausted busy timeout under heavy
                # multi-process contention): the claim loop must outlive it,
                # or worker capacity silently shrinks to zero.
                self._stop_event.wait(timeout=0.5)
                continue
            if stored is None:
                self._wakeup.wait(timeout=0.1)
                self._wakeup.clear()
                continue
            try:
                self._process(stored, worker_id)
            except sqlite3.ProgrammingError:
                return  # store closed mid-shutdown
            except Exception:
                # A finalisation write hit the same transient trouble the
                # claim above is hardened against; the job will be rescued
                # by the stale sweep, and this slot lives on.
                self._stop_event.wait(timeout=0.5)

    def _register_canceller(self, job_id: str, canceller: Callable[[], None]) -> None:
        """Register the hook `cancel_job` calls to trip *job_id*'s live search."""
        with self._cancel_lock:
            self._cancellers[job_id] = canceller

    def _unregister_canceller(self, job_id: str) -> None:
        with self._cancel_lock:
            self._cancellers.pop(job_id, None)

    def _finalize_result(
        self,
        stored: StoredJob,
        result: VerificationResult,
        cache_hit: bool,
        deadline_truncated: bool,
        started: float,
        owner: Optional[str] = None,
    ) -> None:
        """Land a finished job in the store (shared by both worker models).

        A cancelled run lands as terminal ``cancelled`` with its partial
        statistics (never cached); a ``deadline_ms``-truncated verdict stays
        on the job row only (``persist_result=False``), mirroring the
        decision to keep it out of the fingerprint-keyed cache.  ``owner``
        is the claiming worker id: the mark lands only while that worker
        still owns the claim, so a zombie whose job was rescued by a stale
        sweep (here or on a peer server) can never overwrite the live run's
        state.  A mark that does not land bumps no metrics.
        """
        if result.stats.cancelled:
            if self.store.mark_cancelled(stored.id, result.as_dict(), worker_id=owner):
                self.events.fire(
                    JobCancelled(job_id=stored.id, tenant_id=stored.tenant_id)
                )
            return
        if self.store.mark_done(
            stored.id,
            result.as_dict(),
            cache_hit=cache_hit,
            persist_result=not deadline_truncated,
            worker_id=owner,
        ):
            self.events.fire(
                JobCompleted(
                    job_id=stored.id,
                    data={
                        "seconds": time.monotonic() - started,
                        "cache_hit": cache_hit,
                    },
                    tenant_id=stored.tenant_id,
                )
            )

    def _start_job_spans(
        self, stored: StoredJob, worker_id: Optional[str]
    ) -> Optional[Span]:
        """Record the job's ``queue.wait`` span and open ``worker.execute``.

        Returns the open execute span (``None`` when tracing is off or the
        job carries no trace).  The queue wait happened before any traced
        code ran, so it is recorded retroactively from the store's
        ``submitted_at``/``started_at`` stamps.
        """
        if not self.tracer.enabled or stored.trace_id is None:
            return None
        claimed_at = stored.started_at if stored.started_at is not None else time.time()
        self.tracer.record_span(
            "queue.wait",
            trace_id=stored.trace_id,
            parent_id=stored.parent_span,
            start_time=stored.submitted_at,
            duration=claimed_at - stored.submitted_at,
            job_id=stored.id,
        )
        parent = (
            TraceContext(stored.trace_id, stored.parent_span)
            if stored.parent_span
            else None
        )
        return self.tracer.start_span(
            "worker.execute",
            parent=parent,
            trace_id=stored.trace_id,
            job_id=stored.id,
            worker_id=worker_id,
        )

    def _process(self, stored: StoredJob, worker_id: Optional[str] = None) -> None:
        started = time.monotonic()
        execute_span = self._start_job_spans(stored, worker_id)
        # The token's external backend re-polls the store's persisted
        # cancel_requested flag (rate-limited -- it is a SQL read), so a
        # DELETE accepted by *another server* sharing the store stops this
        # thread-model search within cancel_poll_interval.
        token = CancellationToken(
            external=RateLimitedPoll(
                lambda: self.store.is_cancel_requested(stored.id),
                interval=self.cancel_poll_interval,
            )
        )
        if stored.deadline_ms is not None:
            token.tighten_deadline(stored.deadline_ms / 1000.0)
        self._register_canceller(stored.id, token.cancel)
        if worker_id is not None:
            with self._cancel_lock:
                self._inflight[stored.id] = worker_id
        try:
            # A cancel accepted between the claim and the registration above
            # only reached the store; fold it into the live token now.
            if self.store.is_cancel_requested(stored.id):
                token.cancel()
            try:
                result, cache_hit, deadline_truncated = self._execute(
                    stored, token, deadline_ms_binding(stored), execute_span
                )
            except Exception as error:
                message = f"{type(error).__name__}: {error}"
                if execute_span is not None:
                    execute_span.set_error(message)
                if self.store.mark_error(stored.id, message, worker_id=worker_id):
                    self.events.fire(
                        JobFailed(
                            job_id=stored.id,
                            data={"error": message},
                            tenant_id=stored.tenant_id,
                        )
                    )
                return
            if execute_span is not None:
                execute_span.set_attr("cache_hit", cache_hit)
                if result.stats.cancelled:
                    execute_span.set_error("search cancelled", reason="cancelled")
            self._finalize_result(
                stored, result, cache_hit, deadline_truncated, started, owner=worker_id
            )
        finally:
            if execute_span is not None:
                self.tracer.finish(execute_span)
            self._unregister_canceller(stored.id)
            with self._cancel_lock:
                self._inflight.pop(stored.id, None)

    def _execute(
        self,
        stored: StoredJob,
        token: CancellationToken,
        deadline_binding: bool,
        execute_span: Optional[Span] = None,
    ) -> Tuple[VerificationResult, bool, bool]:
        """Run one claimed job: cache lookup, then a cancellable search.

        Returns ``(result, cache_hit, deadline_truncated)``; the last flag is
        the single source of truth for "this verdict was cut short by the
        job-level deadline_ms", used both here (skip the cache) and by
        ``_process`` (keep the result off the fingerprint-keyed table).

        Progress events stream into the store's per-job event log as the
        search runs, so ``GET /v1/jobs/<id>/events`` observes them live (the
        log is the only consumer, so no in-memory session buffer is kept).
        """
        job = stored.to_job()
        cached = self.cache.get(job.fingerprint)
        if cached is not None:
            self.events.fire(
                CacheServed(
                    job_id=stored.id,
                    data={"outcome": cached.outcome.value, "cache_hit": True},
                    tenant_id=stored.tenant_id,
                )
            )
            return cached, True, False
        self.events.fire(
            VerificationStarted(job_id=stored.id, tenant_id=stored.tenant_id)
        )
        traced: Dict[str, Any] = {}
        if execute_span is not None:
            # Per-phase hot-loop attribution plus nested verify.* spans,
            # parented under this worker's execute span.
            traced = {
                "phase_timer": PhaseTimer(),
                "trace": TraceScope(
                    self.tracer, parent=execute_span.context(), job_id=stored.id
                ),
            }
        control = SearchControl(
            token=token,
            event_sink=self.events.progress_sink(stored.id, trace_id=stored.trace_id),
            progress_interval=self.progress_interval,
            **traced,
        )
        result = Verifier(job.system(), job.options()).verify(job.ltl_property(), control)
        # Results truncated by job-level limits that are NOT part of the
        # content fingerprint (cancellation, a binding deadline_ms) must
        # never enter the fingerprint-keyed cache: a later job with the same
        # inputs but no such limit would be served the partial UNKNOWN
        # verdict forever.  Timeouts from the fingerprinted
        # options.timeout_seconds remain cacheable, as before.
        deadline_truncated = deadline_binding and result.stats.timed_out
        if not result.stats.cancelled and not deadline_truncated:
            self.cache.put(job.fingerprint, result)
        return result, False, deadline_truncated

    # ------------------------------------------------------------------ sweeper

    def _sweeper_loop(self) -> None:
        # The sweeper lease elects ONE sweeper among every server sharing
        # the store file: only the holder runs TTL expiry and stale-claim
        # rescue, so N servers never race each other over global repairs.
        # The TTL outlives a couple of missed beats; a crashed holder's
        # lease expires and a peer takes over.  (Should a slow sweep let
        # the lease lapse mid-pass, a concurrent peer sweep is safe -- the
        # repairs are atomic and idempotent; the lease is an optimisation.)
        lease_ttl = max(3.0 * self.sweep_interval, 1.0)
        while not self._stop_event.wait(timeout=self.sweep_interval):
            # Freshness stamp for /readyz: the loop is alive (lease misses
            # included -- a peer sweeping for us is a healthy state).
            self._last_sweep_tick = time.monotonic()
            try:
                if not self.store.acquire_lease(
                    "sweeper", self._lease_owner, lease_ttl
                ):
                    self.events.fire(SweeperLeaseMiss())
                    continue
                swept = self.store.sweep_expired()
                # Rescue jobs whose owner went dark (its heartbeats
                # stopped): a dead process-worker agent, a SIGKILL'd peer
                # server, a dead thread-model server.  Anonymous claims
                # carry no heartbeat and are never touched.
                stale = self.store.requeue_stale(self.stale_heartbeat_seconds)
                if stale:
                    self.events.fire(StaleJobsRequeued(data={"count": stale}))
                    self._wakeup.set()
            except sqlite3.ProgrammingError:  # store closed mid-shutdown
                return
            except Exception:
                # Transient store trouble (e.g. a busy timeout exhausted
                # under heavy multi-process write contention) must not kill
                # the sweeper: the next pass simply retries.
                continue
            if swept["jobs"]:
                self.events.fire(SweepCompleted(data=swept))

    def _heartbeat_loop(self) -> None:
        # A dedicated thread, deliberately NOT the sweeper: it is the only
        # heartbeat source for this server's thread-model claims, and a
        # long sweep (a contended write, a big expiry DELETE) must not
        # starve local heartbeats past the peers' staleness window.
        while not self._stop_event.wait(timeout=self.heartbeat_interval):
            try:
                self._sync_inflight()
            except sqlite3.ProgrammingError:  # store closed mid-shutdown
                return
            except Exception:  # transient: retry next tick
                continue

    def _sync_inflight(self) -> None:
        """Heartbeat this server's thread-model jobs and fold store-side
        cancels (e.g. a DELETE handled by a peer server) into their tokens."""
        with self._cancel_lock:
            inflight = dict(self._inflight)
        for job_id, worker_id in inflight.items():
            try:
                owned, cancel_requested = self.store.touch_claim(job_id, worker_id)
            except sqlite3.ProgrammingError:
                raise  # store closed: let the caller's shutdown path handle it
            except Exception:
                continue  # contended tick: this job's claim retries next pass
            if owned and not cancel_requested:
                continue
            # Cancelled through the store, or the claim was rescued from us:
            # either way the search should unwind now (its late mark would
            # bounce off the ownership predicate anyway).
            with self._cancel_lock:
                canceller = self._cancellers.get(job_id)
                if canceller is not None:
                    canceller()

    # -------------------------------------------------------------------- views

    def authenticate(self, authorization: Optional[str]) -> Optional[Tenant]:
        """Resolve an ``Authorization`` header to a tenant (the front door).

        With auth disabled this always returns ``None`` (anonymous) without
        looking at the header.  With auth enabled, a missing, non-Bearer,
        malformed or unknown key raises :class:`~repro.tenancy.AuthFailure`
        with status 401; a valid key of a revoked tenant raises it with 403.
        The handler maps the failure to the matching JSON error response.
        """
        if not self.auth_enabled:
            return None
        try:
            if not authorization:
                raise AuthFailure(
                    401, "missing Authorization header (expected 'Bearer <api-key>')"
                )
            scheme, _, key = authorization.partition(" ")
            key = key.strip()
            if scheme.lower() != "bearer" or not key:
                raise AuthFailure(
                    401, "malformed Authorization header (expected 'Bearer <api-key>')"
                )
            tenant = self.tenants.resolve(key)
            if tenant is None:
                raise AuthFailure(401, "unknown API key")
            if tenant.revoked:
                raise AuthFailure(403, "API key has been revoked")
        except AuthFailure:
            self.metrics.increment("auth_failures")
            raise
        return tenant

    def submit_payload(
        self,
        payload: Any,
        url_prefix: str = "/v1/jobs",
        trace_id: Optional[str] = None,
        parent_span: Optional[str] = None,
        tenant: Optional[Tenant] = None,
    ) -> Dict[str, Any]:
        """Validate a ``POST /v1/jobs`` payload and enqueue one job per property.

        The payload mirrors the spec-bundle document format (same
        ``schema_version`` rules): a ``system`` section plus either one
        ``property`` or a list of ``properties``, and optional ``options``,
        ``label``, ``ttl_seconds`` (expire the job record that long after it
        finishes) and ``deadline_ms`` (bound the search's wall-clock run
        time).  Inputs are canonicalised through the spec codecs, so
        fingerprints match jobs built anywhere else (CLI, Python API).

        ``trace_id``/``parent_span`` put the accepted jobs into a
        distributed trace (the HTTP handler passes the ``http.submit``
        span's context; every property of one POST shares it).  With
        tracing on and no incoming context, a fresh root trace is minted so
        programmatic submissions trace too.

        ``tenant`` is the authenticated submitter (``None`` = anonymous):
        its jobs are tenant-stamped for fair-share claiming and scoped
        listing, and its rate limit / in-flight quota are enforced here
        (:class:`ThrottledError` -> 429).  An optional integer ``priority``
        field (-100..100, default 0) orders jobs *within* the submitter's
        backlog; cross-tenant ordering is weight-based, so priority is not
        a queue-jumping lever against other tenants.
        """
        if not isinstance(payload, Mapping):
            raise SpecError(
                f"job payload must be a JSON object, got {type(payload).__name__}"
            )
        version = payload.get("schema_version", 1)
        if not isinstance(version, int) or version < 1 or version > SCHEMA_VERSION:
            raise SpecVersionError(version, SCHEMA_VERSION)
        system_data = payload.get("system")
        if system_data is None:
            raise SpecError("job payload has no 'system' section")
        system = load_system(system_data)
        system_dict = dump_system(system)

        if "property" in payload and "properties" in payload:
            raise SpecError("job payload has both 'property' and 'properties'")
        if "property" in payload:
            property_list = [payload["property"]]
        else:
            property_list = payload.get("properties")
            if not isinstance(property_list, (list, tuple)) or not property_list:
                raise SpecError(
                    "job payload needs a 'property' object or a non-empty 'properties' list"
                )
        loaded_properties = [load_property(p) for p in property_list]

        # Static analysis gate (see repro.analysis): error-severity
        # diagnostics fast-fail the whole POST as 422 before any job row is
        # written -- a rejected spec never reaches the queue, so it can never
        # claim a worker.  Warning-severity diagnostics ride along on the
        # accepted job rows (system-wide ones on every job, property ones on
        # the job verifying that property) and surface in the job view.
        system_diagnostics, _ = analyze_system(system)
        property_diagnostics = [
            analyze_property(system, p) for p in loaded_properties
        ]
        errors = [
            d
            for diagnostics in [system_diagnostics] + property_diagnostics
            for d in diagnostics
            if d.is_error
        ]
        if errors:
            self.metrics.increment("specs_rejected")
            for code in sorted({d.code for d in errors}):
                self.metrics.increment(f"specs_rejected_{code.lower()}")
            raise SpecRejectedError(errors)
        system_warnings = [d for d in system_diagnostics if not d.is_error]
        job_warnings = [
            [
                d.as_dict()
                for d in sort_diagnostics(
                    system_warnings + [d for d in diagnostics if not d.is_error]
                )
            ]
            for diagnostics in property_diagnostics
        ]

        options_data = payload.get("options")
        if options_data is None:
            options = self.service.default_options
        elif isinstance(options_data, Mapping):
            # Spec files tolerate unknown keys for forward compatibility; an
            # API submission with one is far more likely a typo (silently
            # dropping `timeout` for `timeout_seconds` would run unbounded).
            unknown = set(options_data) - VerifierOptions.known_keys()
            if unknown:
                raise SpecError(
                    f"unknown verifier option(s): {', '.join(sorted(unknown))}"
                )
            options = VerifierOptions.from_dict(options_data)
        else:
            raise SpecError("'options' must be a JSON object")
        options_dict = options.as_dict()

        label = payload.get("label")
        if label is not None and not isinstance(label, str):
            raise SpecError("'label' must be a string")

        ttl_seconds = payload.get("ttl_seconds")
        if ttl_seconds is not None:
            if isinstance(ttl_seconds, bool) or not isinstance(ttl_seconds, (int, float)):
                raise SpecError("'ttl_seconds' must be a number")
            if ttl_seconds < 0:
                raise SpecError("'ttl_seconds' must be non-negative")
        deadline_ms = payload.get("deadline_ms")
        if deadline_ms is not None:
            if isinstance(deadline_ms, bool) or not isinstance(deadline_ms, int):
                raise SpecError("'deadline_ms' must be an integer")
            if deadline_ms <= 0:
                raise SpecError("'deadline_ms' must be positive")
        priority = payload.get("priority", 0)
        if isinstance(priority, bool) or not isinstance(priority, int):
            raise SpecError("'priority' must be an integer")
        if not -100 <= priority <= 100:
            raise SpecError("'priority' must be between -100 and 100")

        jobs = [
            VerificationJob(
                system_dict=system_dict,
                property_dict=dump_property(loaded_property),
                options_dict=options_dict,
                label=label,
            )
            for loaded_property in loaded_properties
        ]
        if trace_id is None and self.tracer.enabled:
            trace_id = new_trace_id()
        tenant_id = tenant.id if tenant is not None else None
        if tenant is not None:
            # Tenant policy gates, before any job row is written.  The rate
            # limiter charges one token per job in the payload; the pending
            # quota is preflighted for the whole batch here (and enforced
            # atomically per job below, against racing submitters).
            retry_after = self.rate_limiter.check(tenant, tokens=float(len(jobs)))
            if retry_after > 0:
                self.events.fire(
                    TenantThrottled(
                        tenant_id=tenant_id,
                        data={"tenant": tenant_id, "retry_after": retry_after},
                    )
                )
                raise ThrottledError(
                    f"tenant {tenant.name!r} is over its submit rate limit"
                    f" ({tenant.rate_limit}/s); retry in {retry_after:.2f}s",
                    retry_after=retry_after,
                    reason="rate_limit",
                )
            if tenant.max_pending is not None:
                pending = self.store.pending_count(tenant_id)
                if pending + len(jobs) > tenant.max_pending:
                    self.events.fire(
                        QuotaExceeded(
                            tenant_id=tenant_id,
                            data={
                                "tenant": tenant_id,
                                "pending": pending,
                                "limit": tenant.max_pending,
                            },
                        )
                    )
                    raise ThrottledError(
                        f"tenant {tenant.name!r} has {pending} jobs in flight;"
                        f" accepting {len(jobs)} more would exceed its quota"
                        f" of {tenant.max_pending}",
                        retry_after=1.0,
                        reason="quota",
                    )
        accepted = []
        for job, warnings in zip(jobs, job_warnings):
            try:
                stored = self.store.submit(
                    job,
                    label=label,
                    ttl_seconds=ttl_seconds,
                    deadline_ms=deadline_ms,
                    trace_id=trace_id,
                    parent_span=parent_span,
                    tenant_id=tenant_id,
                    priority=priority,
                    pending_limit=(
                        tenant.max_pending if tenant is not None else None
                    ),
                    warnings=warnings or None,
                )
            except PendingQuotaExceeded as error:
                # A racing submitter consumed the preflighted headroom
                # mid-batch; earlier jobs of this POST stay accepted.
                self.events.fire(
                    QuotaExceeded(
                        tenant_id=tenant_id,
                        data={
                            "tenant": tenant_id,
                            "pending": error.pending,
                            "limit": error.limit,
                        },
                    )
                )
                if accepted:
                    self._wakeup.set()
                raise ThrottledError(
                    str(error),
                    retry_after=1.0,
                    reason="quota",
                    accepted=accepted,
                ) from error
            self.events.fire(
                JobSubmitted(
                    job_id=stored.id,
                    data={"fingerprint": stored.fingerprint},
                    trace_id=trace_id,
                    tenant_id=tenant_id,
                )
            )
            entry = {
                "id": stored.id,
                "fingerprint": stored.fingerprint,
                "system": stored.system_name,
                "property": stored.property_name,
                "status": stored.status,
                "url": f"{url_prefix}/{stored.id}",
                "events_url": f"{url_prefix}/{stored.id}/events",
            }
            if trace_id is not None:
                entry["trace_id"] = trace_id
            if warnings:
                entry["warnings"] = warnings
            accepted.append(entry)
        self._wakeup.set()
        return {"jobs": accepted}

    def _visible_job(
        self, job_id: str, tenant_id: Optional[str]
    ) -> Optional[StoredJob]:
        """The job, if *tenant_id* may see it.

        Tenant scoping deliberately conflates "no such job" with "someone
        else's job": both come back ``None`` (the handler's 404), so a
        tenant probing ids learns nothing about other tenants' workloads.
        ``tenant_id=None`` is the unscoped (anonymous / auth-off) view.
        """
        stored = self.store.get_job(job_id)
        if stored is None:
            return None
        if tenant_id is not None and stored.tenant_id != tenant_id:
            return None
        return stored

    def job_view(
        self, job_id: str, tenant_id: Optional[str] = None
    ) -> Optional[Dict[str, Any]]:
        """The ``GET /v1/jobs/<id>`` body: status, plus the result when done.

        Cancelled jobs surface their partial ``UNKNOWN`` result (stored on
        the job row) through the same ``result`` key.
        """
        stored = self._visible_job(job_id, tenant_id)
        if stored is None:
            return None
        result = None
        if stored.status == "done":
            # Status polling must not skew the cache-effectiveness counters.
            result = self.store.get_result(stored.fingerprint, count=False)
        return stored.as_dict(result=result)

    def cancel_job(
        self, job_id: str, tenant_id: Optional[str] = None
    ) -> Optional[Dict[str, Any]]:
        """The ``DELETE /v1/jobs/<id>`` body: cooperative cancellation.

        Queued jobs become ``cancelled`` immediately; running jobs get their
        canceller tripped -- the thread model cancels the in-process token,
        the process model sets the ``multiprocessing.Event`` the child's
        token polls, so the search unwinds at its next loop iteration on
        either side of the process boundary -- and land as ``cancelled``
        with partial statistics; already terminal jobs (and repeated
        DELETEs) are reported unchanged -- the store appends the ``cancel``
        event and bumps nothing twice.
        """
        if tenant_id is not None and self._visible_job(job_id, tenant_id) is None:
            # Cross-tenant DELETE: indistinguishable from an unknown id.
            return None
        outcome = self.store.request_cancel(job_id)
        if outcome is None:
            return None
        disposition, fresh = outcome
        if disposition == "cancelling":
            # Idempotent and racing-registration-safe: both worker models
            # re-check the persisted flag after registering their canceller.
            # The canceller is invoked *under* the lock: a process worker's
            # canceller is its agent's per-child Event.set, and firing a
            # stale reference after the agent moved on to its next job
            # would cancel that innocent job (the agent unregisters, then
            # clears the event, then re-registers -- all serialised against
            # this lock via register/unregister).
            with self._cancel_lock:
                canceller = self._cancellers.get(job_id)
                if canceller is not None:
                    canceller()
        if fresh:
            self.events.fire(CancelRequested(job_id=job_id, data={"disposition": disposition}))
        return {
            "id": job_id,
            "status": disposition,
            "cancelled": fresh,
            "already_finished": not fresh and disposition in TERMINAL_STATUSES,
        }

    def events_view(
        self,
        job_id: str,
        cursor: int = 0,
        limit: int = 500,
        tenant_id: Optional[str] = None,
    ) -> Optional[Dict[str, Any]]:
        """The ``GET /v1/jobs/<id>/events`` body: incremental event polling.

        Clients pass back the returned ``cursor`` to receive only newer
        events; ``terminal`` tells them when to stop polling.
        """
        stored = self._visible_job(job_id, tenant_id)
        if stored is None:
            return None
        events = self.store.events_after(job_id, cursor=cursor, limit=limit)
        next_cursor = events[-1]["seq"] if events else cursor
        return {
            "id": job_id,
            "status": stored.status,
            "events": events,
            "cursor": next_cursor,
            "terminal": stored.status in TERMINAL_STATUSES,
        }

    def events_view_wait(
        self,
        job_id: str,
        cursor: int = 0,
        limit: int = 500,
        wait_ms: int = 0,
        tenant_id: Optional[str] = None,
    ) -> Optional[Dict[str, Any]]:
        """:meth:`events_view`, but blocking up to *wait_ms* for news.

        Returns immediately when the page already has events, the job is
        terminal (nothing more will ever arrive), or the job is unknown.
        Otherwise the handler thread subscribes to the in-process broker and
        sleeps until a store commit touches the job -- re-reading the cursor
        at least every :attr:`push_fallback_interval` regardless, which is
        what bounds delivery of events written by *other* servers sharing
        the store.  A deadline hit returns the (empty) page: long-polling is
        plain polling with the dead time pushed server-side.
        """
        wait_ms = max(0, min(int(wait_ms), self.long_poll_max_ms))
        view = self.events_view(job_id, cursor=cursor, limit=limit, tenant_id=tenant_id)
        if view is None or view["events"] or view["terminal"] or wait_ms == 0:
            return view
        deadline = time.monotonic() + wait_ms / 1000.0
        # Subscribe BEFORE re-reading: a write landing between the read and
        # the wait bumps the subscription's generation, so the next wait()
        # returns at once instead of sleeping out the interval.
        with self.broker.subscription(job_id) as subscription:
            while True:
                view = self.events_view(
                    job_id, cursor=cursor, limit=limit, tenant_id=tenant_id
                )
                if view is None or view["events"] or view["terminal"]:
                    return view
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return view
                subscription.wait(min(remaining, self.push_fallback_interval))

    def jobs_view(
        self,
        status: Optional[str] = None,
        limit: int = 100,
        ids: Optional[List[str]] = None,
        tenant_id: Optional[str] = None,
    ) -> Dict[str, Any]:
        """The ``GET /v1/jobs`` body.

        With ``ids`` (repeated ``?id=`` query params) this is the *batch
        status view*: one round-trip returns the listed jobs -- including
        each done job's result, so a waiting client needs no follow-up GET
        per job -- with unknown ids simply absent (and another tenant's ids
        deliberately indistinguishable from unknown ones).  Without ``ids``
        it is the recency listing, as before.  An unknown ``status`` raises
        ``ValueError`` (-> 400) on *both* paths -- the batch path used to
        ignore it silently.
        """
        if status is not None and status not in JOB_STATUSES:
            raise ValueError(
                f"unknown job status {status!r}; expected one of {JOB_STATUSES}"
            )
        if ids is not None:
            views = []
            for stored in self.store.get_jobs(ids):
                if tenant_id is not None and stored.tenant_id != tenant_id:
                    continue
                if status is not None and stored.status != status:
                    continue
                result = None
                if stored.status == "done":
                    result = self.store.get_result(stored.fingerprint, count=False)
                views.append(stored.as_dict(result=result))
            return {"jobs": views}
        return {
            "jobs": [
                stored.as_dict()
                for stored in self.store.list_jobs(status, limit, tenant_id=tenant_id)
            ],
            "counts": self.store.counts(tenant_id=tenant_id),
        }

    def metrics_view(self) -> Dict[str, Any]:
        cache = self.cache.statistics()
        lookups = cache["hits"] + cache["misses"]
        served_from_cache = cache["hits"] + cache["store_hits"]
        counts = self.store.counts()
        view = {
            **self.metrics.snapshot(),
            "queue": {
                "depth": counts["queued"],
                "running": counts["running"],
                "jobs": counts,
            },
            "cache": {
                **cache,
                "hit_rate": (served_from_cache / lookups) if lookups else None,
            },
            "recovery": self.recovery.as_dict(),
            "workers": self.workers_view(),
            "store_path": self.store.path,
        }
        tenants = self.tenants_metrics_view()
        if tenants:
            view["tenants"] = tenants
        if self.auth_enabled:
            view["auth_enabled"] = True
        return view

    def tenants_metrics_view(self) -> Dict[str, Any]:
        """The per-tenant section of ``/v1/metrics``.

        One entry per tenant that owns jobs (store-wide state) or tripped a
        counter on *this* server; anonymous traffic is excluded -- the
        global counters already describe it.  Empty (and the ``tenants``
        key absent) on an auth-off server with no tenant-stamped jobs, so
        pre-tenancy consumers see an unchanged document.
        """
        job_counts = self.store.tenant_job_counts()
        job_counts.pop("", None)  # anonymous: covered by the global view
        counters = self.metrics.tenant_counters()
        tenant_ids = set(job_counts) | set(counters)
        if not tenant_ids:
            return {}
        names = {tenant.id: tenant.name for tenant in self.tenants.list()}
        section: Dict[str, Any] = {}
        for tenant_id in sorted(tenant_ids):
            entry: Dict[str, Any] = {}
            if tenant_id in names:
                entry["name"] = names[tenant_id]
            if tenant_id in job_counts:
                entry["jobs"] = job_counts[tenant_id]
            if tenant_id in counters:
                entry["counters"] = counters[tenant_id]
            section[tenant_id] = entry
        return section

    def trace_view(
        self, job_id: str, tenant_id: Optional[str] = None
    ) -> Optional[Dict[str, Any]]:
        """The ``GET /v1/jobs/<id>/trace`` body: the job's full span tree.

        The trace is keyed by the *trace id* on the job row, so it includes
        spans recorded by other parties -- the submitting server's
        ``http.submit``, a peer server's ``worker.execute`` in a
        shared-store deployment -- not just this process's.  An untraced
        job returns an empty span list (200, not 404: the job exists).
        """
        stored = self._visible_job(job_id, tenant_id)
        if stored is None:
            return None
        self.metrics.increment("trace_requests")
        spans = (
            self.store.spans_for_trace(stored.trace_id)
            if stored.trace_id is not None
            else []
        )
        return {
            "id": job_id,
            "status": stored.status,
            "trace_id": stored.trace_id,
            "spans": spans,
            "tree": build_tree(spans),
        }

    def health_view(self) -> Dict[str, Any]:
        """The ``GET /healthz`` body: pure liveness (we answered = alive)."""
        return {
            "status": "ok",
            "server_id": self.server_id,
            "uptime_seconds": self.metrics.uptime_seconds(),
        }

    def readiness_view(self) -> Tuple[bool, Dict[str, Any]]:
        """The ``GET /readyz`` decision: can this server do useful work *now*?

        Three checks, each reported individually so an operator sees what
        tripped: the store accepts a (fail-fast) write, at least one worker
        slot is alive (when any were configured), and the sweeper loop
        ticked recently (lease misses count as ticks -- a peer holding the
        lease is healthy).  Any failing check flips the endpoint to 503.
        """
        store_ok = self.store.ping()
        checks: Dict[str, Any] = {
            "store": {"ok": store_ok, "path": self.store.path},
        }

        if self.workers <= 0:
            workers_alive, workers_total = 0, 0
            workers_ok = True  # an API-only server is ready without workers
        elif self.worker_model == "process" and self._agents:
            workers_alive, workers_total = pool_snapshot(self._agents)
            workers_ok = workers_alive > 0
        else:
            workers_total = len(self._worker_threads)
            workers_alive = sum(
                1 for thread in self._worker_threads if thread.is_alive()
            )
            workers_ok = workers_alive > 0
        checks["workers"] = {
            "ok": workers_ok,
            "model": self.worker_model,
            "alive": workers_alive,
            "total": workers_total,
        }

        thread_alive = (
            self._sweeper_thread is not None and self._sweeper_thread.is_alive()
        )
        tick_age = (
            time.monotonic() - self._last_sweep_tick
            if self._last_sweep_tick is not None
            else None
        )
        # No tick yet is fine right after start (the first pass lands one
        # sweep_interval in); after that, a tick older than a few intervals
        # means the loop is wedged on a store write.
        sweeper_ok = thread_alive and (
            tick_age is None or tick_age < max(5.0 * self.sweep_interval, 5.0)
        )
        try:
            lease_holder = self.store.lease_holder("sweeper")
        except Exception:
            lease_holder = None
        checks["sweeper"] = {
            "ok": sweeper_ok,
            "thread_alive": thread_alive,
            "last_tick_age_seconds": tick_age,
            "lease_holder": lease_holder,
        }

        ready = store_ok and workers_ok and sweeper_ok
        return ready, {
            "status": "ready" if ready else "unready",
            "server_id": self.server_id,
            "checks": checks,
        }

    def workers_view(self) -> Dict[str, Any]:
        """The ``workers`` section of ``/metrics``: model + per-worker gauges."""
        # (server_id itself lives at the top level of /metrics, via
        # ServerMetrics.snapshot -- not duplicated here.)
        view: Dict[str, Any] = {
            "count": self.workers,
            "model": self.worker_model,
            "requested_model": self.requested_worker_model,
            "pool": self.metrics.worker_gauges.snapshot(),
        }
        if self.worker_model == "process":
            alive, total = pool_snapshot(self._agents)
            view["processes_alive"] = alive
            view["processes_total"] = total
        if self.worker_fallback_error is not None:
            view["fallback_error"] = self.worker_fallback_error
        return view
