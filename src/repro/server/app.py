"""The verification server: HTTP API + worker threads over a persistent store.

A :class:`VerificationServer` owns

* a :class:`~repro.server.store.JobStore` (SQLite) holding the durable job
  queue and every computed result,
* a :class:`~repro.server.store.StoreBackedCache` (in-memory LRU read-through
  over the store) plugged into a
  :class:`~repro.service.engine.VerificationService`,
* worker threads that claim queued jobs and verify them, and
* a :class:`~http.server.ThreadingHTTPServer` running
  :class:`~repro.server.handlers.ApiHandler`.

On startup the store is repaired with :func:`repro.server.recovery.recover`:
interrupted jobs re-queue, completed results survive, and re-submitted
payloads whose fingerprints are already stored complete as cache hits without
invoking the verifier (the ``verifications_run`` metric stays flat).

::

    server = VerificationServer(store_path="jobs.db", port=0, workers=2)
    server.start()
    ...  # POST http://127.0.0.1:{server.port}/jobs
    server.stop()
"""

from __future__ import annotations

import os
import threading
import time
from http.server import ThreadingHTTPServer
from typing import Any, Dict, List, Mapping, Optional, Union

from repro.core.options import VerifierOptions
from repro.server.handlers import ApiHandler
from repro.server.metrics import ServerMetrics
from repro.server.recovery import RecoveryReport, recover
from repro.server.store import JobStore, StoreBackedCache, StoredJob
from repro.service.cache import ResultCache
from repro.service.engine import JobCallbacks, VerificationService
from repro.service.jobs import VerificationJob
from repro.spec.codec import (
    SCHEMA_VERSION,
    dump_property,
    dump_system,
    load_property,
    load_system,
)
from repro.spec.errors import SpecError, SpecVersionError


class _HttpServer(ThreadingHTTPServer):
    daemon_threads = True
    allow_reuse_address = True


class VerificationServer:
    """Long-running verification-as-a-service process (HTTP + workers + store)."""

    def __init__(
        self,
        store_path: Union[str, "os.PathLike"] = ":memory:",
        host: str = "127.0.0.1",
        port: int = 8080,
        workers: int = 2,
        default_options: Optional[VerifierOptions] = None,
        cache_entries: int = 10_000,
        quiet: bool = True,
    ):
        self.host = host
        self.port = port
        self.quiet = quiet
        self.workers = max(0, workers)
        self.store = JobStore(store_path)
        self.recovery: RecoveryReport = recover(self.store)
        self.cache = StoreBackedCache(self.store, ResultCache(max_entries=cache_entries))
        self.metrics = ServerMetrics()
        self.service = VerificationService(
            cache=self.cache, default_options=default_options
        )
        self._stop_event = threading.Event()
        self._wakeup = threading.Event()
        self._worker_threads: List[threading.Thread] = []
        self._httpd: Optional[_HttpServer] = None
        self._http_thread: Optional[threading.Thread] = None

    # ---------------------------------------------------------------- lifecycle

    def start(self) -> None:
        """Bind the HTTP socket (resolving ``port=0``) and start all threads."""
        if self._httpd is not None:
            raise RuntimeError("server already started")
        self._httpd = _HttpServer((self.host, self.port), ApiHandler)
        self._httpd.app = self  # type: ignore[attr-defined]
        self.port = self._httpd.server_address[1]
        self._http_thread = threading.Thread(
            target=self._httpd.serve_forever,
            kwargs={"poll_interval": 0.05},
            name="repro-http",
            daemon=True,
        )
        self._http_thread.start()
        for index in range(self.workers):
            thread = threading.Thread(
                target=self._worker_loop, name=f"repro-worker-{index}", daemon=True
            )
            thread.start()
            self._worker_threads.append(thread)

    def stop(self) -> None:
        """Graceful shutdown: finish in-flight jobs, leave the queue persisted."""
        self._stop_event.set()
        self._wakeup.set()
        if self._httpd is not None:
            self._httpd.shutdown()
            self._httpd.server_close()
        if self._http_thread is not None:
            self._http_thread.join(timeout=5)
        for thread in self._worker_threads:
            thread.join(timeout=60)
        if all(not thread.is_alive() for thread in self._worker_threads):
            self.store.close()
        # else: a worker is still mid-verification past the join timeout;
        # leave the store open so its mark_done can land (daemon threads die
        # with the process anyway, and the job would simply re-run on the
        # next restart if it doesn't).

    def serve_forever(self) -> None:
        """Block until stopped or interrupted; starts the server if needed."""
        if self._httpd is None:
            self.start()
        try:
            while not self._stop_event.wait(timeout=0.5):
                pass
        except KeyboardInterrupt:  # pragma: no cover - interactive use
            pass
        finally:
            self.stop()

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    # ------------------------------------------------------------------ workers

    def _worker_loop(self) -> None:
        while not self._stop_event.is_set():
            stored = self.store.claim_next()
            if stored is None:
                self._wakeup.wait(timeout=0.1)
                self._wakeup.clear()
                continue
            self._process(stored)

    def _process(self, stored: StoredJob) -> None:
        callbacks = JobCallbacks(
            on_started=lambda _job: self.metrics.increment("verifications_run")
        )
        started = time.monotonic()
        try:
            job_result = self.service.run_batch([stored.to_job()], callbacks=callbacks)[0]
        except Exception as error:
            self.store.mark_error(stored.id, f"{type(error).__name__}: {error}")
            self.metrics.increment("jobs_failed")
            return
        self.store.mark_done(
            stored.id, job_result.result.as_dict(), cache_hit=job_result.cache_hit
        )
        self.metrics.increment("jobs_completed")
        self.metrics.job_latency.observe(time.monotonic() - started)

    # -------------------------------------------------------------------- views

    def submit_payload(self, payload: Any) -> Dict[str, Any]:
        """Validate a ``POST /jobs`` payload and enqueue one job per property.

        The payload mirrors the spec-bundle document format (same
        ``schema_version`` rules): a ``system`` section plus either one
        ``property`` or a list of ``properties``, and optional ``options``
        and ``label``.  Inputs are canonicalised through the spec codecs, so
        fingerprints match jobs built anywhere else (CLI, Python API).
        """
        if not isinstance(payload, Mapping):
            raise SpecError(
                f"job payload must be a JSON object, got {type(payload).__name__}"
            )
        version = payload.get("schema_version", 1)
        if not isinstance(version, int) or version < 1 or version > SCHEMA_VERSION:
            raise SpecVersionError(version, SCHEMA_VERSION)
        system_data = payload.get("system")
        if system_data is None:
            raise SpecError("job payload has no 'system' section")
        system_dict = dump_system(load_system(system_data))

        if "property" in payload and "properties" in payload:
            raise SpecError("job payload has both 'property' and 'properties'")
        if "property" in payload:
            property_list = [payload["property"]]
        else:
            property_list = payload.get("properties")
            if not isinstance(property_list, (list, tuple)) or not property_list:
                raise SpecError(
                    "job payload needs a 'property' object or a non-empty 'properties' list"
                )

        options_data = payload.get("options")
        if options_data is None:
            options = self.service.default_options
        elif isinstance(options_data, Mapping):
            # Spec files tolerate unknown keys for forward compatibility; an
            # API submission with one is far more likely a typo (silently
            # dropping `timeout` for `timeout_seconds` would run unbounded).
            unknown = set(options_data) - set(VerifierOptions().as_dict())
            if unknown:
                raise SpecError(
                    f"unknown verifier option(s): {', '.join(sorted(unknown))}"
                )
            options = VerifierOptions.from_dict(options_data)
        else:
            raise SpecError("'options' must be a JSON object")
        options_dict = options.as_dict()

        label = payload.get("label")
        if label is not None and not isinstance(label, str):
            raise SpecError("'label' must be a string")

        jobs = [
            VerificationJob(
                system_dict=system_dict,
                property_dict=dump_property(load_property(property_data)),
                options_dict=options_dict,
                label=label,
            )
            for property_data in property_list
        ]
        accepted = []
        for job in jobs:
            stored = self.store.submit(job, label=label)
            self.metrics.increment("jobs_submitted")
            accepted.append(
                {
                    "id": stored.id,
                    "fingerprint": stored.fingerprint,
                    "system": stored.system_name,
                    "property": stored.property_name,
                    "status": stored.status,
                    "url": f"/jobs/{stored.id}",
                }
            )
        self._wakeup.set()
        return {"jobs": accepted}

    def job_view(self, job_id: str) -> Optional[Dict[str, Any]]:
        """The ``GET /jobs/<id>`` body: status, plus the result when done."""
        stored = self.store.get_job(job_id)
        if stored is None:
            return None
        result = None
        if stored.status == "done":
            # Status polling must not skew the cache-effectiveness counters.
            result = self.store.get_result(stored.fingerprint, count=False)
        return stored.as_dict(result=result)

    def jobs_view(self, status: Optional[str] = None, limit: int = 100) -> Dict[str, Any]:
        return {
            "jobs": [stored.as_dict() for stored in self.store.list_jobs(status, limit)],
            "counts": self.store.counts(),
        }

    def metrics_view(self) -> Dict[str, Any]:
        cache = self.cache.statistics()
        lookups = cache["hits"] + cache["misses"]
        served_from_cache = cache["hits"] + cache["store_hits"]
        counts = self.store.counts()
        return {
            **self.metrics.snapshot(),
            "queue": {
                "depth": counts["queued"],
                "running": counts["running"],
                "jobs": counts,
            },
            "cache": {
                **cache,
                "hit_rate": (served_from_cache / lookups) if lookups else None,
            },
            "recovery": self.recovery.as_dict(),
            "workers": self.workers,
            "store_path": self.store.path,
        }
