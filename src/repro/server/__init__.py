"""Verification-as-a-service: a persistent job store behind an HTTP JSON API.

The server turns the batch :mod:`repro.service` engine into a long-running
process with durable state (pure stdlib: ``http.server`` + ``sqlite3``):

::

    python -m repro serve --port 8080 --workers 4 --store jobs.db

Submitted jobs, their lifecycle and every computed result persist in the
SQLite store, keyed by content fingerprint.  A restarted server re-queues
interrupted jobs and serves previously computed results without re-verifying
(see :mod:`repro.server.recovery`); the in-memory LRU result cache acts as a
read-through layer over the store (:class:`repro.server.store.StoreBackedCache`).
Endpoints: ``POST /jobs``, ``GET /jobs``, ``GET /jobs/<id>``, ``GET /metrics``,
``GET /healthz`` -- documented in ``README.md`` and
:mod:`repro.server.handlers`.
"""

from repro.server.app import VerificationServer
from repro.server.metrics import LatencyTracker, ServerMetrics
from repro.server.recovery import RecoveryReport, recover
from repro.server.store import JobStore, StoreBackedCache, StoredJob

__all__ = [
    "JobStore",
    "LatencyTracker",
    "RecoveryReport",
    "ServerMetrics",
    "StoreBackedCache",
    "StoredJob",
    "VerificationServer",
    "recover",
]
