"""Verification-as-a-service: a persistent job store behind an HTTP JSON API.

The server turns the batch :mod:`repro.service` engine into a long-running
process with durable state (pure stdlib: ``http.server`` + ``sqlite3``):

::

    python -m repro serve --port 8080 --workers 4 --store jobs.db

Submitted jobs, their lifecycle (``queued -> running -> done | error |
cancelled``), every computed result and the per-job progress-event log
persist in the SQLite store, keyed by content fingerprint.  A restarted
server re-queues interrupted jobs (finalising those whose cancellation was
already accepted) and serves previously computed results without
re-verifying (see :mod:`repro.server.recovery`); the in-memory LRU result
cache acts as a read-through layer over the store
(:class:`repro.server.store.StoreBackedCache`); a sweeper thread expires
TTL'd jobs and their now-unreferenced results.

The HTTP surface is versioned under ``/v1`` (``POST /v1/jobs``,
``GET /v1/jobs``, ``GET /v1/jobs/<id>``, ``DELETE /v1/jobs/<id>``,
``GET /v1/jobs/<id>/events``, ``GET /v1/metrics``, ``GET /v1/healthz``);
the original unversioned routes answer identically but carry deprecation
headers -- documented in ``README.md`` and :mod:`repro.server.handlers`.
:mod:`repro.client` is the matching Python client library.
"""

from repro.server.app import VerificationServer
from repro.server.metrics import LatencyTracker, ServerMetrics, WorkerGauges
from repro.server.recovery import RecoveryReport, recover
from repro.server.store import (
    JOB_STATUSES,
    TERMINAL_STATUSES,
    JobStore,
    PendingQuotaExceeded,
    StoreBackedCache,
    StoredJob,
)
from repro.server.workers import ProcessWorkerAgent, probe_process_support

__all__ = [
    "JOB_STATUSES",
    "JobStore",
    "LatencyTracker",
    "PendingQuotaExceeded",
    "ProcessWorkerAgent",
    "RecoveryReport",
    "ServerMetrics",
    "StoreBackedCache",
    "StoredJob",
    "TERMINAL_STATUSES",
    "VerificationServer",
    "WorkerGauges",
    "probe_process_support",
    "recover",
]
