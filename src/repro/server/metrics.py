"""Server metrics: counters and latency percentiles for ``GET /metrics``.

Latencies are kept in a bounded reservoir (the most recent ``window``
observations), which is enough for interactive p50/p90/p99 readouts without
unbounded memory growth on a long-running server.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Deque, Dict, Optional


class LatencyTracker:
    """Sliding-window latency observations with percentile readouts."""

    def __init__(self, window: int = 1024):
        if window < 1:
            raise ValueError("window must be positive")
        self._samples: Deque[float] = deque(maxlen=window)
        self._lock = threading.Lock()
        self.count = 0
        self.total_seconds = 0.0

    def observe(self, seconds: float) -> None:
        with self._lock:
            self._samples.append(seconds)
            self.count += 1
            self.total_seconds += seconds

    @staticmethod
    def _rank(ordered, fraction: float) -> Optional[float]:
        if not ordered:
            return None
        return ordered[min(len(ordered) - 1, max(0, int(fraction * len(ordered))))]

    def percentile(self, fraction: float) -> Optional[float]:
        """The *fraction*-quantile (nearest-rank) of the window, or ``None``."""
        with self._lock:
            return self._rank(sorted(self._samples), fraction)

    def snapshot(self) -> Dict[str, Optional[float]]:
        # One lock acquisition and one sort: the counters and all three
        # percentiles describe the same sample set.
        with self._lock:
            ordered = sorted(self._samples)
            count, total = self.count, self.total_seconds
        return {
            "count": count,
            "mean_seconds": (total / count) if count else None,
            "p50_seconds": self._rank(ordered, 0.50),
            "p90_seconds": self._rank(ordered, 0.90),
            "p99_seconds": self._rank(ordered, 0.99),
        }


class ServerMetrics:
    """Counters + latency tracker, snapshotted by the ``/metrics`` endpoint."""

    def __init__(self):
        self._lock = threading.Lock()
        self._counters: Dict[str, int] = {
            "jobs_submitted": 0,
            "jobs_completed": 0,
            "jobs_failed": 0,
            "jobs_cancelled": 0,
            "jobs_expired": 0,
            "results_expired": 0,
            "cancel_requests": 0,
            "verifications_run": 0,
            "requests": 0,
        }
        self.job_latency = LatencyTracker()
        self.started_at = time.time()

    def increment(self, name: str, amount: int = 1) -> None:
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + amount

    def counter(self, name: str) -> int:
        with self._lock:
            return self._counters.get(name, 0)

    def counters(self) -> Dict[str, int]:
        with self._lock:
            return dict(self._counters)

    def snapshot(self) -> Dict[str, object]:
        return {
            "uptime_seconds": time.time() - self.started_at,
            "counters": self.counters(),
            "job_latency": self.job_latency.snapshot(),
        }
