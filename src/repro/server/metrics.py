"""Server metrics: counters and latency percentiles for ``GET /metrics``.

Latencies are kept in a bounded reservoir (the most recent ``window``
observations), which is enough for interactive p50/p90/p99 readouts without
unbounded memory growth on a long-running server.
"""

from __future__ import annotations

import math
import threading
import time
from collections import deque
from typing import Any, Deque, Dict, List, Mapping, Optional


class LatencyTracker:
    """Sliding-window latency observations with percentile readouts."""

    def __init__(self, window: int = 1024):
        if window < 1:
            raise ValueError("window must be positive")
        self._samples: Deque[float] = deque(maxlen=window)
        self._lock = threading.Lock()
        self.count = 0
        self.total_seconds = 0.0

    def observe(self, seconds: float) -> None:
        with self._lock:
            self._samples.append(seconds)
            self.count += 1
            self.total_seconds += seconds

    @staticmethod
    def _rank(ordered, fraction: float) -> Optional[float]:
        # Nearest-rank quantile: the smallest sample with at least a
        # `fraction` share of the observations at or below it, i.e. index
        # ceil(f * n) - 1.  (`int(f * n)` is off by one: p50 of [1, 2]
        # would read 2, biasing every small-sample percentile upward.)
        if not ordered:
            return None
        return ordered[min(len(ordered) - 1, max(0, math.ceil(fraction * len(ordered)) - 1))]

    def percentile(self, fraction: float) -> Optional[float]:
        """The *fraction*-quantile (nearest-rank) of the window, or ``None``."""
        with self._lock:
            return self._rank(sorted(self._samples), fraction)

    def snapshot(self) -> Dict[str, Optional[float]]:
        # One lock acquisition and one sort: the counters and all three
        # percentiles describe the same sample set.
        with self._lock:
            ordered = sorted(self._samples)
            count, total = self.count, self.total_seconds
        return {
            "count": count,
            "mean_seconds": (total / count) if count else None,
            "p50_seconds": self._rank(ordered, 0.50),
            "p90_seconds": self._rank(ordered, 0.90),
            "p99_seconds": self._rank(ordered, 0.99),
        }


class WorkerGauges:
    """Per-worker gauges: one row per worker slot, updated by its owner.

    Process workers report their child pid, busy/idle state, the job
    currently on the wire, and cumulative jobs / crashes / recycles;
    thread workers report a subset.  Snapshotted into ``/metrics`` under
    ``workers.pool``.
    """

    _DEFAULTS = {
        "state": "idle",
        "pid": None,
        "current_job": None,
        "jobs_completed": 0,
        "crashes": 0,
        "recycles": 0,
    }

    def __init__(self):
        self._lock = threading.Lock()
        self._workers: Dict[str, Dict[str, Any]] = {}

    def update(self, worker_id: str, **fields: Any) -> None:
        with self._lock:
            gauge = self._workers.setdefault(
                worker_id, {"worker_id": worker_id, **self._DEFAULTS}
            )
            gauge.update(fields)

    def increment(self, worker_id: str, name: str, amount: int = 1) -> None:
        with self._lock:
            gauge = self._workers.setdefault(
                worker_id, {"worker_id": worker_id, **self._DEFAULTS}
            )
            gauge[name] = gauge.get(name, 0) + amount

    def get(self, worker_id: str) -> Dict[str, Any]:
        with self._lock:
            return dict(self._workers.get(worker_id, {}))

    def snapshot(self) -> List[Dict[str, Any]]:
        with self._lock:
            return [dict(self._workers[key]) for key in sorted(self._workers)]


class ServerMetrics:
    """Counters + latency tracker, snapshotted by the ``/metrics`` endpoint.

    ``server_id`` tags the snapshot in shared-store deployments, so an
    operator scraping several servers' ``/metrics`` can attribute each
    counter set (all counters are per-server: each server counts only the
    jobs *its* workers ran, the cancels *it* accepted, the sweeps *it* won).
    """

    def __init__(self, server_id: Optional[str] = None):
        self.server_id = server_id
        self._lock = threading.Lock()
        self._counters: Dict[str, int] = {
            "jobs_submitted": 0,
            "jobs_completed": 0,
            "jobs_failed": 0,
            "jobs_cancelled": 0,
            "jobs_expired": 0,
            "results_expired": 0,
            "cancel_requests": 0,
            "verifications_run": 0,
            "worker_crashes": 0,
            "worker_recycles": 0,
            # Shared-store citizenship: jobs this server's sweeper rescued
            # from dead owners, and sweep rounds skipped because a peer
            # server currently holds the sweeper lease.
            "stale_jobs_requeued": 0,
            "sweeper_lease_misses": 0,
            "requests": 0,
            # Event-bus delivery: every typed event fired through the
            # EventManager, and how many /v1/jobs/<id>/events requests used
            # push-style delivery (long-poll via ?wait_ms=, SSE streams).
            "events_emitted": 0,
            "long_poll_requests": 0,
            "sse_requests": 0,
            # Observability: spans the TraceSink persisted, /trace reads.
            "spans_recorded": 0,
            "trace_requests": 0,
            # Multi-tenant front door (see repro.tenancy): requests rejected
            # by authentication, the token-bucket rate limit, and the
            # in-flight pending quota.
            "auth_failures": 0,
            "tenant_throttled": 0,
            "quota_exceeded": 0,
            # Submissions rejected by the static analysis gate (HTTP 422);
            # per-code shadows appear as specs_rejected_va1xx on first use.
            "specs_rejected": 0,
        }
        #: Per-tenant shadows of the counters above, keyed by tenant id --
        #: populated only for tenant-attributed events/rejections, so an
        #: anonymous server pays nothing for the feature.
        self._tenant_counters: Dict[str, Dict[str, int]] = {}
        self.job_latency = LatencyTracker()
        self.worker_gauges = WorkerGauges()
        #: Wall-clock start stamp, for display only.  Uptime arithmetic uses
        #: the monotonic anchor below: ``time.time() - started_at`` goes
        #: negative (or jumps) when NTP steps the wall clock, the same
        #: failure mode the store clock guards against (see
        #: ``JobStore._now``).
        self.started_at = time.time()
        self._mono_started = time.monotonic()

    def increment(self, name: str, amount: int = 1) -> None:
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + amount

    def counter(self, name: str) -> int:
        with self._lock:
            return self._counters.get(name, 0)

    def counters(self) -> Dict[str, int]:
        with self._lock:
            return dict(self._counters)

    def increment_tenant(self, tenant_id: str, name: str, amount: int = 1) -> None:
        """Bump the per-tenant shadow of counter *name* (see ``/v1/metrics``)."""
        with self._lock:
            per_tenant = self._tenant_counters.setdefault(tenant_id, {})
            per_tenant[name] = per_tenant.get(name, 0) + amount

    def tenant_counters(self) -> Dict[str, Dict[str, int]]:
        with self._lock:
            return {
                tenant_id: dict(values)
                for tenant_id, values in self._tenant_counters.items()
            }

    def uptime_seconds(self) -> float:
        """Seconds since construction, immune to wall-clock steps."""
        return time.monotonic() - self._mono_started

    def snapshot(self) -> Dict[str, object]:
        return {
            "server_id": self.server_id,
            "uptime_seconds": self.uptime_seconds(),
            "counters": self.counters(),
            "job_latency": self.job_latency.snapshot(),
        }


# ---------------------------------------------------------------- prometheus

PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def _escape_label(value: Any) -> str:
    return str(value).replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _number(value: Any) -> str:
    if value is None:
        return "NaN"
    if isinstance(value, bool):
        return "1" if value else "0"
    return repr(float(value)) if isinstance(value, float) else str(value)


def render_prometheus(view: Mapping[str, Any]) -> str:
    """Render a ``metrics_view()`` dict in Prometheus text exposition 0.0.4.

    Served when ``GET /v1/metrics`` negotiates ``text/plain`` (or is asked
    via ``?format=prometheus``); the JSON view stays the default.  Counters
    become ``repro_<name>_total``, the latency snapshot a summary with
    nearest-rank quantiles, per-worker gauges get a ``worker_id`` label.
    All metrics are per-server (scrape every server of a shared-store
    deployment; ``repro_server_info``'s ``server_id`` label attributes
    them).
    """
    lines: List[str] = []

    def emit(name: str, value: Any, help_text: str, kind: str, labels: str = "") -> None:
        lines.append(f"# HELP {name} {help_text}")
        lines.append(f"# TYPE {name} {kind}")
        lines.append(f"{name}{labels} {_number(value)}")

    server_id = view.get("server_id")
    lines.append("# HELP repro_server_info Static server identity (value is always 1).")
    lines.append("# TYPE repro_server_info gauge")
    lines.append(
        f'repro_server_info{{server_id="{_escape_label(server_id or "")}"}} 1'
    )
    emit(
        "repro_uptime_seconds",
        view.get("uptime_seconds", 0.0),
        "Seconds since server start (monotonic).",
        "gauge",
    )

    for name, value in sorted((view.get("counters") or {}).items()):
        metric = f"repro_{name}_total"
        emit(metric, value, f"Total {name.replace('_', ' ')}.", "counter")

    latency = view.get("job_latency") or {}
    count = latency.get("count") or 0
    mean = latency.get("mean_seconds") or 0.0
    lines.append(
        "# HELP repro_job_latency_seconds Job completion latency"
        " (sliding-window summary)."
    )
    lines.append("# TYPE repro_job_latency_seconds summary")
    for quantile, key in (("0.5", "p50_seconds"), ("0.9", "p90_seconds"), ("0.99", "p99_seconds")):
        lines.append(
            f'repro_job_latency_seconds{{quantile="{quantile}"}}'
            f" {_number(latency.get(key))}"
        )
    lines.append(f"repro_job_latency_seconds_sum {_number(mean * count)}")
    lines.append(f"repro_job_latency_seconds_count {count}")

    queue = view.get("queue") or {}
    emit("repro_queue_depth", queue.get("depth", 0), "Queued jobs awaiting a worker.", "gauge")
    emit("repro_jobs_running", queue.get("running", 0), "Jobs currently executing.", "gauge")
    for status, value in sorted((queue.get("jobs") or {}).items()):
        lines.append(f'repro_jobs{{status="{_escape_label(status)}"}} {_number(value)}')

    cache = view.get("cache") or {}
    emit("repro_cache_entries", cache.get("entries", 0), "In-memory result cache entries.", "gauge")
    emit(
        "repro_cache_hit_rate",
        cache.get("hit_rate"),
        "Fraction of lookups served from cache or store.",
        "gauge",
    )

    workers = view.get("workers") or {}
    emit("repro_workers", workers.get("count", 0), "Configured worker slots.", "gauge")
    pool = workers.get("pool") or []
    if pool:
        lines.append("# HELP repro_worker_busy Whether the worker slot is running a job.")
        lines.append("# TYPE repro_worker_busy gauge")
        for gauge in pool:
            label = f'{{worker_id="{_escape_label(gauge.get("worker_id"))}"}}'
            lines.append(
                f"repro_worker_busy{label}"
                f" {1 if gauge.get('state') == 'busy' else 0}"
            )
        for field_name, help_text in (
            ("jobs_completed", "Jobs completed by the worker slot."),
            ("crashes", "Worker process crashes observed on the slot."),
            ("recycles", "Worker process recycles performed on the slot."),
        ):
            metric = f"repro_worker_{field_name}_total"
            lines.append(f"# HELP {metric} {help_text}")
            lines.append(f"# TYPE {metric} counter")
            for gauge in pool:
                label = f'{{worker_id="{_escape_label(gauge.get("worker_id"))}"}}'
                lines.append(f"{metric}{label} {_number(gauge.get(field_name, 0))}")

    tenants = view.get("tenants") or {}
    if tenants:
        lines.append("# HELP repro_tenant_jobs Jobs per tenant and status (store-wide).")
        lines.append("# TYPE repro_tenant_jobs gauge")
        for tenant_id in sorted(tenants):
            for status, value in sorted((tenants[tenant_id].get("jobs") or {}).items()):
                lines.append(
                    f'repro_tenant_jobs{{tenant_id="{_escape_label(tenant_id)}",'
                    f'status="{_escape_label(status)}"}} {_number(value)}'
                )
        counter_names = sorted(
            {
                name
                for section in tenants.values()
                for name in (section.get("counters") or {})
            }
        )
        for name in counter_names:
            metric = f"repro_tenant_{name}_total"
            lines.append(
                f"# HELP {metric} Per-tenant {name.replace('_', ' ')} (this server)."
            )
            lines.append(f"# TYPE {metric} counter")
            for tenant_id in sorted(tenants):
                value = (tenants[tenant_id].get("counters") or {}).get(name)
                if value is not None:
                    lines.append(
                        f'{metric}{{tenant_id="{_escape_label(tenant_id)}"}}'
                        f" {_number(value)}"
                    )

    lines.append("# HELP repro_up Scrape success indicator.")
    lines.append("# TYPE repro_up gauge")
    lines.append("repro_up 1")
    return "\n".join(lines) + "\n"
