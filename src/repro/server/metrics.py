"""Server metrics: counters and latency percentiles for ``GET /metrics``.

Latencies are kept in a bounded reservoir (the most recent ``window``
observations), which is enough for interactive p50/p90/p99 readouts without
unbounded memory growth on a long-running server.
"""

from __future__ import annotations

import math
import threading
import time
from collections import deque
from typing import Any, Deque, Dict, List, Optional


class LatencyTracker:
    """Sliding-window latency observations with percentile readouts."""

    def __init__(self, window: int = 1024):
        if window < 1:
            raise ValueError("window must be positive")
        self._samples: Deque[float] = deque(maxlen=window)
        self._lock = threading.Lock()
        self.count = 0
        self.total_seconds = 0.0

    def observe(self, seconds: float) -> None:
        with self._lock:
            self._samples.append(seconds)
            self.count += 1
            self.total_seconds += seconds

    @staticmethod
    def _rank(ordered, fraction: float) -> Optional[float]:
        # Nearest-rank quantile: the smallest sample with at least a
        # `fraction` share of the observations at or below it, i.e. index
        # ceil(f * n) - 1.  (`int(f * n)` is off by one: p50 of [1, 2]
        # would read 2, biasing every small-sample percentile upward.)
        if not ordered:
            return None
        return ordered[min(len(ordered) - 1, max(0, math.ceil(fraction * len(ordered)) - 1))]

    def percentile(self, fraction: float) -> Optional[float]:
        """The *fraction*-quantile (nearest-rank) of the window, or ``None``."""
        with self._lock:
            return self._rank(sorted(self._samples), fraction)

    def snapshot(self) -> Dict[str, Optional[float]]:
        # One lock acquisition and one sort: the counters and all three
        # percentiles describe the same sample set.
        with self._lock:
            ordered = sorted(self._samples)
            count, total = self.count, self.total_seconds
        return {
            "count": count,
            "mean_seconds": (total / count) if count else None,
            "p50_seconds": self._rank(ordered, 0.50),
            "p90_seconds": self._rank(ordered, 0.90),
            "p99_seconds": self._rank(ordered, 0.99),
        }


class WorkerGauges:
    """Per-worker gauges: one row per worker slot, updated by its owner.

    Process workers report their child pid, busy/idle state, the job
    currently on the wire, and cumulative jobs / crashes / recycles;
    thread workers report a subset.  Snapshotted into ``/metrics`` under
    ``workers.pool``.
    """

    _DEFAULTS = {
        "state": "idle",
        "pid": None,
        "current_job": None,
        "jobs_completed": 0,
        "crashes": 0,
        "recycles": 0,
    }

    def __init__(self):
        self._lock = threading.Lock()
        self._workers: Dict[str, Dict[str, Any]] = {}

    def update(self, worker_id: str, **fields: Any) -> None:
        with self._lock:
            gauge = self._workers.setdefault(
                worker_id, {"worker_id": worker_id, **self._DEFAULTS}
            )
            gauge.update(fields)

    def increment(self, worker_id: str, name: str, amount: int = 1) -> None:
        with self._lock:
            gauge = self._workers.setdefault(
                worker_id, {"worker_id": worker_id, **self._DEFAULTS}
            )
            gauge[name] = gauge.get(name, 0) + amount

    def get(self, worker_id: str) -> Dict[str, Any]:
        with self._lock:
            return dict(self._workers.get(worker_id, {}))

    def snapshot(self) -> List[Dict[str, Any]]:
        with self._lock:
            return [dict(self._workers[key]) for key in sorted(self._workers)]


class ServerMetrics:
    """Counters + latency tracker, snapshotted by the ``/metrics`` endpoint.

    ``server_id`` tags the snapshot in shared-store deployments, so an
    operator scraping several servers' ``/metrics`` can attribute each
    counter set (all counters are per-server: each server counts only the
    jobs *its* workers ran, the cancels *it* accepted, the sweeps *it* won).
    """

    def __init__(self, server_id: Optional[str] = None):
        self.server_id = server_id
        self._lock = threading.Lock()
        self._counters: Dict[str, int] = {
            "jobs_submitted": 0,
            "jobs_completed": 0,
            "jobs_failed": 0,
            "jobs_cancelled": 0,
            "jobs_expired": 0,
            "results_expired": 0,
            "cancel_requests": 0,
            "verifications_run": 0,
            "worker_crashes": 0,
            "worker_recycles": 0,
            # Shared-store citizenship: jobs this server's sweeper rescued
            # from dead owners, and sweep rounds skipped because a peer
            # server currently holds the sweeper lease.
            "stale_jobs_requeued": 0,
            "sweeper_lease_misses": 0,
            "requests": 0,
            # Event-bus delivery: every typed event fired through the
            # EventManager, and how many /v1/jobs/<id>/events requests used
            # push-style delivery (long-poll via ?wait_ms=, SSE streams).
            "events_emitted": 0,
            "long_poll_requests": 0,
            "sse_requests": 0,
        }
        self.job_latency = LatencyTracker()
        self.worker_gauges = WorkerGauges()
        self.started_at = time.time()

    def increment(self, name: str, amount: int = 1) -> None:
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + amount

    def counter(self, name: str) -> int:
        with self._lock:
            return self._counters.get(name, 0)

    def counters(self) -> Dict[str, int]:
        with self._lock:
            return dict(self._counters)

    def snapshot(self) -> Dict[str, object]:
        return {
            "server_id": self.server_id,
            "uptime_seconds": time.time() - self.started_at,
            "counters": self.counters(),
            "job_latency": self.job_latency.snapshot(),
        }
