"""The persistent SQLite job/result store behind the verification server.

Three tables (plus a small ``leases`` table) back verification-as-a-service:

* ``jobs`` -- one row per submitted job: the canonical spec payload (system,
  property, options dicts as JSON text), lifecycle status (``queued`` ->
  ``running`` -> ``done`` | ``error`` | ``cancelled``), timestamps, cache
  provenance, TTL / deadline limits, the cooperative ``cancel_requested``
  flag, and worker-claim bookkeeping (``claimed_by`` + ``heartbeat_at``,
  kept fresh by workers so dead ones are detected and their jobs
  requeued).  A ``cancelled`` job may carry a *partial* result (``UNKNOWN`` with
  the statistics gathered before the stop) in ``partial_json`` -- partial
  results are deliberately **not** written to ``results``, so they can never
  be served as cache hits.
* ``results`` -- serialized :class:`~repro.core.verifier.VerificationResult`
  dicts keyed by job *content fingerprint* (see
  :mod:`repro.spec.fingerprint`), shared by every job with the same inputs.
* ``events`` -- the per-job progress-event log behind
  ``GET /v1/jobs/<id>/events``: monotonically increasing ``seq`` per job, so
  clients poll incrementally with a cursor.
* ``leases`` -- named, TTL'd advisory leases (:meth:`JobStore.acquire_lease`)
  used by servers sharing one store file to elect a single sweeper: only the
  lease holder runs TTL expiry and stale-claim rescue at any moment.

Concurrency model
=================

The store is safe to share between threads **and between processes** pointed
at the same file:

* every thread gets its **own** SQLite connection (lazily, from a per-store
  pool), so readers never queue behind a Python lock;
* file-backed stores run in **WAL** journal mode with a busy timeout --
  readers proceed concurrently with one writer, and a second writer waits on
  SQLite's own file lock instead of failing;
* every mutating method is one atomic ``BEGIN IMMEDIATE`` transaction, so a
  read-decide-write sequence (claim, release, cancel, ...) can never
  interleave with another process's transaction;
* claim-ownership is enforced *in SQL*: :meth:`heartbeat`, :meth:`release`
  and the ``mark_*`` finalisers take the claiming ``worker_id`` and update
  only rows whose ``claimed_by`` still matches, so a zombie worker whose job
  was rescued and re-claimed elsewhere can neither keep it alive, yank it
  back, nor overwrite its state.

In-memory stores (``:memory:``) are invisible to other connections, so they
keep the legacy single-connection design serialized behind an ``RLock`` --
they exist for tests and throwaway servers only.

Jobs submitted with ``ttl_seconds`` get an ``expires_at`` stamp when they
reach a terminal state; :meth:`JobStore.sweep_expired` (driven by the
server's sweeper thread) deletes expired jobs, their events, and any result
rows no remaining job references.

Older (PR 2) store files are migrated in place on open: the ``jobs`` table is
rebuilt with the extended schema and every existing row is preserved.

Both survive process restarts: a restarted server re-queues interrupted
``running`` jobs (see :mod:`repro.server.recovery`) and serves previously
computed results straight from the ``results`` table without re-verifying.

:class:`StoreBackedCache` layers the in-memory
:class:`~repro.service.cache.ResultCache` *read-through* over the store: it
satisfies the same ``get``/``put``/``statistics`` duck type the
:class:`~repro.service.engine.VerificationService` expects, so the engine's
cache path transparently hits memory first, then SQLite, then verifies.
"""

from __future__ import annotations

import json
import os
import sqlite3
import threading
import time
import uuid
from contextlib import contextmanager
from dataclasses import dataclass
from typing import (
    Any,
    Callable,
    ContextManager,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.core.verifier import VerificationResult
from repro.service.cache import ResultCache
from repro.service.jobs import VerificationJob

#: Lifecycle states of a stored job.
JOB_STATUSES = ("queued", "running", "done", "error", "cancelled")

#: States a job can never leave (sweeping and cancellation only apply here).
TERMINAL_STATUSES = ("done", "error", "cancelled")


class PendingQuotaExceeded(Exception):
    """A tenant's in-flight (queued + running) job quota is full.

    Raised by :meth:`JobStore.submit` when called with a ``pending_limit``;
    the check runs inside the submit transaction, so the quota holds exactly
    even under concurrent submissions across server processes.  The HTTP
    layer maps it to ``429 Too Many Requests``.
    """

    def __init__(self, pending: int, limit: int):
        super().__init__(
            f"tenant has {pending} jobs in flight (limit {limit})"
        )
        self.pending = pending
        self.limit = limit

_JOBS_DDL = """
CREATE TABLE IF NOT EXISTS jobs (
    id               TEXT PRIMARY KEY,
    fingerprint      TEXT NOT NULL,
    system_name      TEXT NOT NULL,
    property_name    TEXT NOT NULL,
    label            TEXT,
    status           TEXT NOT NULL
                     CHECK (status IN ('queued', 'running', 'done', 'error', 'cancelled')),
    error            TEXT,
    cache_hit        INTEGER NOT NULL DEFAULT 0,
    cancel_requested INTEGER NOT NULL DEFAULT 0,
    claimed_by       TEXT,
    heartbeat_at     REAL,
    ttl_seconds      REAL,
    deadline_ms      INTEGER,
    expires_at       REAL,
    submitted_at     REAL NOT NULL,
    started_at       REAL,
    finished_at      REAL,
    partial_json     TEXT,
    trace_id         TEXT,
    parent_span      TEXT,
    tenant_id        TEXT,
    priority         INTEGER NOT NULL DEFAULT 0,
    warnings_json    TEXT,
    system_json      TEXT NOT NULL,
    property_json    TEXT NOT NULL,
    options_json     TEXT NOT NULL
)
"""

_SCHEMA_STATEMENTS = (
    _JOBS_DDL,
    "CREATE INDEX IF NOT EXISTS jobs_by_status ON jobs (status, submitted_at)",
    "CREATE INDEX IF NOT EXISTS jobs_by_fingerprint ON jobs (fingerprint)",
    "CREATE INDEX IF NOT EXISTS jobs_by_expiry ON jobs (expires_at)"
    " WHERE expires_at IS NOT NULL",
    """
    CREATE TABLE IF NOT EXISTS results (
        fingerprint TEXT PRIMARY KEY,
        result_json TEXT NOT NULL,
        created_at  REAL NOT NULL
    )
    """,
    """
    CREATE TABLE IF NOT EXISTS events (
        job_id     TEXT NOT NULL,
        seq        INTEGER NOT NULL,
        created_at REAL NOT NULL,
        kind       TEXT NOT NULL,
        payload    TEXT NOT NULL,
        PRIMARY KEY (job_id, seq)
    )
    """,
    """
    CREATE TABLE IF NOT EXISTS leases (
        name       TEXT PRIMARY KEY,
        owner      TEXT NOT NULL,
        expires_at REAL NOT NULL
    )
    """,
    """
    CREATE TABLE IF NOT EXISTS spans (
        trace_id   TEXT NOT NULL,
        span_id    TEXT NOT NULL,
        parent_id  TEXT,
        job_id     TEXT,
        name       TEXT NOT NULL,
        start_time REAL NOT NULL,
        duration   REAL NOT NULL,
        status     TEXT NOT NULL DEFAULT 'ok',
        attrs      TEXT NOT NULL DEFAULT '{}',
        PRIMARY KEY (trace_id, span_id)
    )
    """,
    "CREATE INDEX IF NOT EXISTS spans_by_job ON spans (job_id)"
    " WHERE job_id IS NOT NULL",
    "CREATE INDEX IF NOT EXISTS jobs_by_tenant ON jobs (tenant_id, status)",
    # The multi-tenant front door (see repro.tenancy): one row per tenant,
    # API keys stored as salted SHA-256 digests (the plaintext ``key_id``
    # prefix is the lookup handle; the secret half never touches disk).
    """
    CREATE TABLE IF NOT EXISTS tenants (
        id          TEXT PRIMARY KEY,
        name        TEXT NOT NULL UNIQUE,
        key_id      TEXT NOT NULL UNIQUE,
        key_hash    TEXT NOT NULL,
        key_salt    TEXT NOT NULL,
        weight      REAL NOT NULL DEFAULT 1.0,
        rate_limit  REAL,
        burst       REAL,
        max_pending INTEGER,
        revoked     INTEGER NOT NULL DEFAULT 0,
        created_at  REAL NOT NULL
    )
    """,
    # Stride-scheduling state for weighted fair-share claiming: each
    # tenant's virtual time advances by 1/weight per claim, and claim_next
    # always serves the backlogged tenant with the smallest vtime.  The
    # anonymous (unauthenticated) stream shares the '' row.
    """
    CREATE TABLE IF NOT EXISTS claim_shares (
        tenant_key TEXT PRIMARY KEY,
        vtime      REAL NOT NULL DEFAULT 0
    )
    """,
)

#: Columns shared by the PR 2 ``jobs`` table and the current one, used to
#: carry rows across the in-place migration.
_V1_COLUMNS = (
    "id, fingerprint, system_name, property_name, label, status, error,"
    " cache_hit, submitted_at, started_at, finished_at,"
    " system_json, property_json, options_json"
)


@dataclass
class StoredJob:
    """One persisted verification job (a ``jobs`` table row)."""

    id: str
    fingerprint: str
    system_name: str
    property_name: str
    label: Optional[str]
    status: str
    error: Optional[str]
    cache_hit: bool
    cancel_requested: bool
    claimed_by: Optional[str]
    heartbeat_at: Optional[float]
    ttl_seconds: Optional[float]
    deadline_ms: Optional[int]
    expires_at: Optional[float]
    submitted_at: float
    started_at: Optional[float]
    finished_at: Optional[float]
    partial_result: Optional[Dict[str, Any]]
    system_dict: Dict[str, Any]
    property_dict: Dict[str, Any]
    options_dict: Dict[str, Any]
    #: Distributed-trace correlation (see :mod:`repro.obs`): the trace this
    #: job belongs to and the submitting span it should parent under.
    trace_id: Optional[str] = None
    parent_span: Optional[str] = None
    #: Multi-tenant front door (see :mod:`repro.tenancy`): the owning tenant
    #: (``None`` for anonymous submissions) and the intra-tenant priority
    #: (higher first; fairness *between* tenants is weight-based instead).
    tenant_id: Optional[str] = None
    priority: int = 0
    #: Warning-severity diagnostics from the submit-time static analysis
    #: pass (see :mod:`repro.analysis`); error-severity ones reject the
    #: whole submission with 422 before any row is written.
    warnings: Optional[List[Dict[str, Any]]] = None

    def to_job(self) -> VerificationJob:
        """The engine-level job this row was built from."""
        return VerificationJob(
            system_dict=self.system_dict,
            property_dict=self.property_dict,
            options_dict=self.options_dict,
            label=self.label,
        )

    def as_dict(self, result: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
        """The JSON view served by ``GET /v1/jobs/<id>`` (payload omitted)."""
        data: Dict[str, Any] = {
            "id": self.id,
            "fingerprint": self.fingerprint,
            "system": self.system_name,
            "property": self.property_name,
            "label": self.label,
            "status": self.status,
            "cache_hit": self.cache_hit,
            "cancel_requested": self.cancel_requested,
            "claimed_by": self.claimed_by,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
        }
        if self.ttl_seconds is not None:
            data["ttl_seconds"] = self.ttl_seconds
        if self.deadline_ms is not None:
            data["deadline_ms"] = self.deadline_ms
        if self.expires_at is not None:
            data["expires_at"] = self.expires_at
        if self.error is not None:
            data["error"] = self.error
        if self.trace_id is not None:
            data["trace_id"] = self.trace_id
        if self.tenant_id is not None:
            data["tenant_id"] = self.tenant_id
        if self.priority:
            data["priority"] = self.priority
        if self.warnings:
            data["warnings"] = self.warnings
        if result is not None:
            data["result"] = result
        elif self.partial_result is not None:
            # A cancelled job's UNKNOWN verdict with its partial statistics.
            data["result"] = self.partial_result
        return data

    @classmethod
    def _from_row(cls, row: sqlite3.Row) -> "StoredJob":
        return cls(
            id=row["id"],
            fingerprint=row["fingerprint"],
            system_name=row["system_name"],
            property_name=row["property_name"],
            label=row["label"],
            status=row["status"],
            error=row["error"],
            cache_hit=bool(row["cache_hit"]),
            cancel_requested=bool(row["cancel_requested"]),
            claimed_by=row["claimed_by"],
            heartbeat_at=row["heartbeat_at"],
            ttl_seconds=row["ttl_seconds"],
            deadline_ms=row["deadline_ms"],
            expires_at=row["expires_at"],
            submitted_at=row["submitted_at"],
            started_at=row["started_at"],
            finished_at=row["finished_at"],
            partial_result=(
                json.loads(row["partial_json"]) if row["partial_json"] else None
            ),
            system_dict=json.loads(row["system_json"]),
            property_dict=json.loads(row["property_json"]),
            options_dict=json.loads(row["options_json"]),
            trace_id=row["trace_id"],
            parent_span=row["parent_span"],
            tenant_id=row["tenant_id"],
            priority=row["priority"],
            warnings=(
                json.loads(row["warnings_json"]) if row["warnings_json"] else None
            ),
        )


class JobStore:
    """Persistent job queue + result store on one SQLite file.

    Safe to share between threads (per-thread connections) and between
    processes pointed at the same file (WAL + ``BEGIN IMMEDIATE``
    transactions with in-SQL ownership predicates) -- see the module
    docstring for the full concurrency model.
    """

    def __init__(
        self,
        path: Union[str, os.PathLike] = ":memory:",
        busy_timeout_seconds: float = 30.0,
        heartbeat_busy_timeout_seconds: float = 5.0,
    ):
        self.path = os.fspath(path)
        #: How long a writer waits on another process's transaction before
        #: surfacing ``sqlite3.OperationalError: database is locked``.
        self.busy_timeout_seconds = busy_timeout_seconds
        #: The (much shorter) wait for the heartbeat path: a heartbeat that
        #: blocks longer than the staleness threshold is worse than one that
        #: fails fast and retries next tick -- the default full timeout (30s)
        #: exceeds the default staleness window (15s), so a single heavily
        #: contended write could otherwise starve every local claim into a
        #: spurious peer rescue.
        self.heartbeat_busy_timeout_seconds = min(
            heartbeat_busy_timeout_seconds, busy_timeout_seconds
        )
        #: In-memory databases are private to one connection: they keep the
        #: legacy single-connection design behind a lock (tests / dev only).
        self._memory = self.path in ("", ":memory:") or "mode=memory" in self.path
        self._serial: Optional[threading.RLock] = (
            threading.RLock() if self._memory else None
        )
        self._local = threading.local()
        #: Every live per-thread connection, paired with its owning thread
        #: so dead threads' connections can be pruned (see _connection).
        self._pool: List[Tuple[threading.Thread, sqlite3.Connection]] = []
        self._pool_lock = threading.Lock()
        self._closed = False
        #: Post-commit hook called with a job id after any write that could
        #: make new data visible to an event poller of that job (an event
        #: append or a status flip).  The server wires this to its
        #: ``EventBroker.notify`` so long-poll/SSE waiters wake immediately
        #: instead of sleeping out their fallback interval.  Fired strictly
        #: *after* the transaction commits -- a woken waiter re-reads the
        #: store and must see the data -- and never from inside one, so the
        #: hook cannot extend the write lock.  Exceptions are swallowed:
        #: delivery is best-effort on top of the durable log.
        self.on_job_update: Optional[Callable[[str], None]] = None
        self._stats_lock = threading.Lock()
        self.store_hits = 0
        self.store_misses = 0
        # Wall-clock anchor for the monotonic store clock (see _now): all
        # in-process time arithmetic (TTL sweeps, heartbeat staleness,
        # expires_at computation) is immune to wall-clock steps, while the
        # persisted timestamps stay in the wall epoch for display -- and
        # hence comparable between processes sharing one store file.
        self._wall_anchor = time.time()
        self._mono_anchor = time.monotonic()
        if self._memory:
            self._memory_conn = self._new_connection()
        #: The journal mode actually in effect ("wal" for file stores on
        #: WAL-capable filesystems, "memory" for in-memory stores).
        self.journal_mode = self._connection().execute(
            "PRAGMA journal_mode"
        ).fetchone()[0]
        with self._write() as conn:
            self._migrate(conn)
            for statement in _SCHEMA_STATEMENTS:
                conn.execute(statement)

    def _now(self) -> float:
        """A monotonically advancing clock expressed in the wall epoch.

        ``time.time()`` is sampled once at open; afterwards the store clock
        advances with ``time.monotonic()``, so an NTP step (or a manual
        ``date`` change) can neither instantly expire every TTL'd job nor
        immortalise them, and heartbeat/deadline arithmetic never goes
        backwards.  Persisted values remain ordinary epoch seconds.
        """
        return self._wall_anchor + (time.monotonic() - self._mono_anchor)

    def _shared_now(self) -> float:
        """The clock for stamps compared against *other processes'* clocks
        (``heartbeat_at``, lease ``expires_at``): never behind the wall clock.

        The store clock is monotonic-anchored, and ``CLOCK_MONOTONIC`` does
        not advance through a host suspend / VM pause -- after resume, pure
        ``_now()`` stamps would lag real time by the pause forever: every
        job this server claims would look permanently stale to its peers,
        and its lease renewals would read as already expired (two elected
        sweepers).  Taking the later of the store clock and the wall clock
        cures that lag while staying monotonic per store (the store clock
        is the floor when the wall clock steps backwards).

        TTL arithmetic (``expires_at`` written by the ``mark_*`` finalisers
        and compared by :meth:`sweep_expired`) deliberately stays on the
        plain store clock: wall-step immunity for expiry is pinned
        behaviour (an NTP step must neither mass-expire nor immortalise
        jobs), at the accepted cost that a suspended host's TTL stamps
        drift by the pause -- expiry is garbage collection, not claim
        correctness.
        """
        return max(self._now(), time.time())

    def _notify(self, job_id: str) -> None:
        """Fire :attr:`on_job_update` (post-commit, best-effort)."""
        listener = self.on_job_update
        if listener is None:
            return
        try:
            listener(job_id)
        except Exception:
            pass

    # ------------------------------------------------------------- connections

    def _new_connection(self) -> sqlite3.Connection:
        # isolation_level=None puts the connection in autocommit mode so the
        # store controls transactions explicitly (BEGIN IMMEDIATE below);
        # check_same_thread=False only so close() can reach every pooled
        # connection -- each one is otherwise used by a single thread.
        connection = sqlite3.connect(
            self.path,
            timeout=self.busy_timeout_seconds,
            isolation_level=None,
            check_same_thread=False,
        )
        connection.row_factory = sqlite3.Row
        if not self._memory:
            # WAL lets readers proceed while one writer commits; NORMAL sync
            # is durable across application crashes (WAL is replayed) and
            # avoids an fsync per transaction.
            connection.execute("PRAGMA journal_mode=WAL")
            connection.execute("PRAGMA synchronous=NORMAL")
        connection.execute(
            f"PRAGMA busy_timeout={int(self.busy_timeout_seconds * 1000)}"
        )
        return connection

    def _connection(self) -> sqlite3.Connection:
        """This thread's connection (the single shared one for ``:memory:``).

        Creating a connection for a new thread also prunes (and closes) the
        connections of threads that have since died -- the HTTP server
        spawns one thread per request, so without pruning a busy server
        would leak one file descriptor per request ever handled.
        """
        if self._memory:
            return self._memory_conn
        connection = getattr(self._local, "connection", None)
        if connection is None:
            if self._closed:
                raise sqlite3.ProgrammingError("cannot use a closed JobStore")
            connection = self._new_connection()
            with self._pool_lock:
                if self._closed:
                    # close() drained the pool between our check above and
                    # here: registering now would leak the connection and
                    # keep a "closed" store usable.
                    connection.close()
                    raise sqlite3.ProgrammingError("cannot use a closed JobStore")
                self._local.connection = connection
                dead = [c for t, c in self._pool if not t.is_alive()]
                self._pool = [
                    (t, c) for t, c in self._pool if t.is_alive()
                ]
                self._pool.append((threading.current_thread(), connection))
            for stale in dead:
                try:
                    stale.close()
                except sqlite3.Error:  # pragma: no cover - already broken
                    pass
        return connection

    @contextmanager
    def _read(self) -> Iterator[sqlite3.Connection]:
        """A connection for plain reads (no transaction, no Python lock).

        WAL readers see the last committed state without blocking writers;
        in-memory stores serialize on the store lock instead.
        """
        if self._serial is not None:
            with self._serial:
                yield self._memory_conn
        else:
            yield self._connection()

    @contextmanager
    def _write(
        self, busy_timeout_seconds: Optional[float] = None
    ) -> Iterator[sqlite3.Connection]:
        """One atomic ``BEGIN IMMEDIATE`` transaction on this thread's connection.

        ``IMMEDIATE`` takes SQLite's write lock up front, so the whole
        read-decide-write body is atomic with respect to every other thread
        *and process* on the same file; a concurrent writer waits on the
        busy timeout instead of failing.  ``busy_timeout_seconds`` bounds
        that wait below the store default for callers (the heartbeat path)
        that would rather fail fast and retry than block.
        """
        if self._serial is not None:
            self._serial.acquire()
        try:
            connection = self._connection()
            if busy_timeout_seconds is not None:
                connection.execute(
                    f"PRAGMA busy_timeout={int(busy_timeout_seconds * 1000)}"
                )
            try:
                connection.execute("BEGIN IMMEDIATE")
                try:
                    yield connection
                except BaseException:
                    connection.rollback()
                    raise
                connection.commit()
            finally:
                if busy_timeout_seconds is not None:
                    try:
                        connection.execute(
                            f"PRAGMA busy_timeout={int(self.busy_timeout_seconds * 1000)}"
                        )
                    except sqlite3.ProgrammingError:  # pragma: no cover - closed under us
                        pass
        finally:
            if self._serial is not None:
                self._serial.release()

    def read_connection(self) -> ContextManager[sqlite3.Connection]:
        """Public form of :meth:`_read` for sibling subsystems.

        :class:`repro.tenancy.TenantRegistry` keeps its tables in this store
        file and must share the store's connection pool and locking rules
        rather than invent its own; this (and :meth:`write_transaction`) is
        the supported way in.
        """
        return self._read()

    def write_transaction(
        self, busy_timeout_seconds: Optional[float] = None
    ) -> ContextManager[sqlite3.Connection]:
        """Public form of :meth:`_write` (one ``BEGIN IMMEDIATE`` transaction)."""
        return self._write(busy_timeout_seconds)

    def _migrate(self, connection: sqlite3.Connection) -> None:
        """Rebuild a PR 2 ``jobs`` table in place (new columns, new CHECK).

        Runs inside the opening ``BEGIN IMMEDIATE`` transaction, so two
        processes opening one store concurrently serialize here and the
        whole rename/copy/drop sequence is atomic.  Every step is also
        idempotent and keyed off the on-disk state: a leftover
        ``jobs_migrating`` table (from a pre-WAL store that crashed
        mid-migration) is resumed -- rows are copied with ``INSERT OR
        IGNORE`` and the leftover dropped -- so no open can strand rows.
        """
        tables = {
            row[0]
            for row in connection.execute(
                "SELECT name FROM sqlite_master WHERE type = 'table'"
            )
        }
        if "jobs_migrating" not in tables:
            if "jobs" not in tables:
                return
            columns = {
                row[1] for row in connection.execute("PRAGMA table_info(jobs)")
            }
            if "cancel_requested" in columns:
                # A PR 3+ store only lacks columns added since (worker
                # claims in PR 5, trace correlation in PR 7, tenancy in
                # PR 8), which need no CHECK change: plain ALTERs suffice.
                for name, kind in (
                    ("claimed_by", "TEXT"),
                    ("heartbeat_at", "REAL"),
                    ("trace_id", "TEXT"),
                    ("parent_span", "TEXT"),
                    ("tenant_id", "TEXT"),
                    ("priority", "INTEGER NOT NULL DEFAULT 0"),
                    ("warnings_json", "TEXT"),
                ):
                    if name not in columns:
                        connection.execute(
                            f"ALTER TABLE jobs ADD COLUMN {name} {kind}"
                        )
                return
            # SQLite cannot alter a CHECK constraint: rename, then fall
            # through to the (resumable) recreate-copy-drop below.
            connection.execute("ALTER TABLE jobs RENAME TO jobs_migrating")
        connection.execute(_JOBS_DDL)
        connection.execute(
            f"INSERT OR IGNORE INTO jobs ({_V1_COLUMNS})"
            f" SELECT {_V1_COLUMNS} FROM jobs_migrating"
        )
        connection.execute("DROP TABLE jobs_migrating")

    def close(self) -> None:
        """Close every pooled connection; subsequent use raises
        ``sqlite3.ProgrammingError`` (the signal the server's shutdown paths
        already handle)."""
        if self._memory:
            self._closed = True
            with self._serial:
                self._memory_conn.close()
            return
        with self._pool_lock:
            # Under the pool lock, so no racing thread can register a fresh
            # connection after the drain (see _connection's re-check).
            self._closed = True
            entries, self._pool = self._pool, []
        for _, connection in entries:
            try:
                connection.close()
            except sqlite3.ProgrammingError:  # pragma: no cover - owner racing us
                pass

    # ---------------------------------------------------------------- lifecycle

    def submit(
        self,
        job: VerificationJob,
        label: Optional[str] = None,
        ttl_seconds: Optional[float] = None,
        deadline_ms: Optional[int] = None,
        trace_id: Optional[str] = None,
        parent_span: Optional[str] = None,
        tenant_id: Optional[str] = None,
        priority: int = 0,
        pending_limit: Optional[int] = None,
        warnings: Optional[List[Dict[str, Any]]] = None,
    ) -> StoredJob:
        """Persist *job* as ``queued`` and return its stored form (with id).

        ``ttl_seconds`` schedules the job row (and, transitively, any result
        no other job references) for deletion that long after it reaches a
        terminal state; ``deadline_ms`` bounds the wall-clock time the search
        may run once claimed.  ``trace_id``/``parent_span`` attach the job to
        a distributed trace (see :mod:`repro.obs`): whichever server claims
        it -- this process or a peer sharing the store -- parents its worker
        spans there, so one coherent trace spans the deployment.

        ``tenant_id`` records the owning tenant (``None`` = anonymous) and
        feeds weighted fair-share claiming; ``priority`` orders jobs within
        one tenant's backlog (higher first).  ``pending_limit`` enforces the
        tenant's in-flight quota atomically inside the submit transaction:
        when the tenant already has that many queued + running jobs the
        INSERT never happens and :class:`PendingQuotaExceeded` is raised.

        Job ids are 12 random hex digits; on the (astronomically rare but
        not impossible) collision with an existing row, the INSERT is simply
        retried with a fresh id rather than surfacing an ``IntegrityError``
        to the submitter.
        """
        now = self._now()
        for attempt in range(16):
            job_id = uuid.uuid4().hex[:12]
            try:
                with self._write() as conn:
                    pending = conn.execute(
                        "SELECT COUNT(*) FROM jobs"
                        " WHERE status IN ('queued', 'running') AND tenant_id IS ?",
                        (tenant_id,),
                    ).fetchone()[0]
                    if pending_limit is not None and pending >= pending_limit:
                        raise PendingQuotaExceeded(pending, pending_limit)
                    if pending == 0:
                        # Idle tenant rejoining the queue: lift its virtual
                        # time to the smallest vtime among currently
                        # backlogged tenants, so sitting out never banks
                        # credit it could later spend as a claim burst.
                        self._lift_vtime_txn(conn, tenant_id)
                    conn.execute(
                        "INSERT INTO jobs (id, fingerprint, system_name, property_name,"
                        " label, status, cache_hit, ttl_seconds, deadline_ms,"
                        " submitted_at, trace_id, parent_span, tenant_id, priority,"
                        " warnings_json, system_json, property_json, options_json)"
                        " VALUES (?, ?, ?, ?, ?, 'queued', 0, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
                        (
                            job_id,
                            job.fingerprint,
                            job.system_name,
                            job.property_name,
                            label if label is not None else job.label,
                            ttl_seconds,
                            deadline_ms,
                            now,
                            trace_id,
                            parent_span,
                            tenant_id,
                            int(priority),
                            json.dumps(warnings) if warnings else None,
                            json.dumps(job.system_dict),
                            json.dumps(job.property_dict),
                            json.dumps(job.options_dict),
                        ),
                    )
                    row = conn.execute(
                        "SELECT * FROM jobs WHERE id = ?", (job_id,)
                    ).fetchone()
                return StoredJob._from_row(row)
            except sqlite3.IntegrityError:
                if attempt == 15:  # pragma: no cover - 16 collisions in a row
                    raise
        raise AssertionError("unreachable")  # pragma: no cover

    @staticmethod
    def _lift_vtime_txn(
        conn: sqlite3.Connection, tenant_id: Optional[str]
    ) -> None:
        """Raise *tenant_id*'s stride vtime to the backlogged minimum.

        Part of the submit transaction.  ``MAX(vtime, excluded.vtime)``
        makes the lift monotonic: a tenant ahead of the pack keeps its own
        (higher) vtime and still waits its turn.
        """
        floor_row = conn.execute(
            "SELECT MIN(COALESCE(s.vtime, 0.0)) FROM ("
            " SELECT DISTINCT COALESCE(tenant_id, '') AS tkey FROM jobs"
            " WHERE status IN ('queued', 'running')) b"
            " LEFT JOIN claim_shares s ON s.tenant_key = b.tkey"
        ).fetchone()
        floor = floor_row[0] if floor_row is not None else None
        if floor is None or floor <= 0:
            return
        conn.execute(
            "INSERT INTO claim_shares (tenant_key, vtime) VALUES (?, ?)"
            " ON CONFLICT(tenant_key)"
            " DO UPDATE SET vtime = MAX(vtime, excluded.vtime)",
            (tenant_id if tenant_id is not None else "", floor),
        )

    def claim_next(self, worker_id: Optional[str] = None) -> Optional[StoredJob]:
        """Atomically pop the next claimable ``queued`` job, marking it ``running``.

        One ``BEGIN IMMEDIATE`` transaction, so each queued job is handed to
        exactly one worker even when several server *processes* claim from
        the same store file concurrently.

        A queued job whose fingerprint is already ``running`` on another
        worker is not claimable yet: claiming it would verify the same
        content twice concurrently.  It stays queued until the in-flight twin
        finishes, at which point it completes as a cache hit (or, when the
        twin ends uncached -- cancelled, deadline-truncated, crashed -- is
        claimed and verified in its own right).

        ``worker_id`` records who claimed the job (``claimed_by``) and stamps
        an initial heartbeat; workers keep the heartbeat fresh via
        :meth:`heartbeat` / :meth:`touch_claim` so :meth:`requeue_stale` can
        detect dead workers.  Claims without a ``worker_id`` never heartbeat
        and are never considered stale.

        Selection is weighted fair share (stride scheduling) across tenants:
        the claimable job whose tenant has the smallest virtual time wins,
        and the winner's tenant is charged ``1/weight`` of virtual time --
        so over any busy interval tenants receive claims proportional to
        their configured weights instead of arrival order.  Unauthenticated
        jobs share one anonymous stream (weight 1.0).  Within a tenant,
        higher ``priority`` goes first, then FIFO; with a single (or no)
        tenant the order degenerates to exactly the old
        ``ORDER BY submitted_at, rowid``.
        """
        peek_sql = (
            "SELECT 1 FROM jobs WHERE status = 'queued' AND fingerprint NOT IN"
            " (SELECT fingerprint FROM jobs WHERE status = 'running') LIMIT 1"
        )
        candidate_sql = (
            "SELECT j.id AS id, COALESCE(j.tenant_id, '') AS tenant_key,"
            " COALESCE(s.vtime, 0.0) AS vtime"
            " FROM jobs j"
            " LEFT JOIN claim_shares s ON s.tenant_key = COALESCE(j.tenant_id, '')"
            " WHERE j.status = 'queued' AND j.fingerprint NOT IN"
            " (SELECT fingerprint FROM jobs WHERE status = 'running')"
            " ORDER BY vtime, j.priority DESC, j.submitted_at, j.rowid LIMIT 1"
        )
        # Cheap lock-free peek first: idle workers poll this at ~10 Hz per
        # slot across every server, and an empty queue must not cost the
        # fleet a continuous stream of cross-process write-lock
        # acquisitions.  The candidate is re-selected inside the write
        # transaction, so a racing claimer is still excluded.
        with self._read() as conn:
            if conn.execute(peek_sql).fetchone() is None:
                return None
        with self._write() as conn:
            row = conn.execute(candidate_sql).fetchone()
            if row is None:
                return None
            weight_row = conn.execute(
                "SELECT weight FROM tenants WHERE id = ?", (row["tenant_key"],)
            ).fetchone()
            weight = weight_row["weight"] if weight_row is not None else 1.0
            if not weight or weight <= 0:  # registry validates; belt and braces
                weight = 1.0
            # Charge the claim inside the same transaction that takes the
            # job, so concurrent claimers (threads and peer server
            # processes) each advance the stride clock exactly once.
            conn.execute(
                "INSERT INTO claim_shares (tenant_key, vtime) VALUES (?, ?)"
                " ON CONFLICT(tenant_key) DO UPDATE SET vtime = excluded.vtime",
                (row["tenant_key"], row["vtime"] + 1.0 / weight),
            )
            now = self._now()
            conn.execute(
                "UPDATE jobs SET status = 'running', started_at = ?,"
                " claimed_by = ?, heartbeat_at = ? WHERE id = ?",
                (
                    now,
                    worker_id,
                    self._shared_now() if worker_id is not None else None,
                    row["id"],
                ),
            )
            claimed = conn.execute(
                "SELECT * FROM jobs WHERE id = ?", (row["id"],)
            ).fetchone()
        return StoredJob._from_row(claimed)

    def heartbeat(self, job_id: str, worker_id: Optional[str] = None) -> bool:
        """Refresh a running job's liveness stamp; returns whether it landed.

        The stamp lands only while *worker_id* still owns the claim
        (``claimed_by`` matches -- ``NULL`` claims match ``worker_id=None``),
        so after :meth:`requeue_stale` hands the job to a new worker the dead
        worker's heartbeats bounce instead of keeping it alive forever.
        The ownership semantics live in :meth:`touch_claim` (the superset
        the workers use); this is the plain liveness-only form.
        """
        return self.touch_claim(job_id, worker_id)[0]

    def touch_claim(self, job_id: str, worker_id: Optional[str]) -> Tuple[bool, bool]:
        """Heartbeat + cancel-flag read in one transaction.

        Returns ``(still_owned, cancel_requested)``: the liveness stamp lands
        only if *worker_id* still owns the claim (exactly like
        :meth:`heartbeat`), and ``cancel_requested`` reports the persisted
        cooperative-cancel flag -- which may have been set by *another
        server* sharing the store, so workers polling this see cross-server
        DELETEs.  ``(False, False)`` when the job no longer exists.

        Runs with the short heartbeat busy timeout: under pathological
        write contention it raises ``sqlite3.OperationalError`` quickly
        (callers skip the tick and retry) instead of blocking past the
        staleness window.
        """
        with self._write(
            busy_timeout_seconds=self.heartbeat_busy_timeout_seconds
        ) as conn:
            cursor = conn.execute(
                "UPDATE jobs SET heartbeat_at = ? WHERE id = ?"
                " AND status = 'running' AND claimed_by IS ?",
                (self._shared_now(), job_id, worker_id),
            )
            row = conn.execute(
                "SELECT cancel_requested FROM jobs WHERE id = ?", (job_id,)
            ).fetchone()
            return cursor.rowcount > 0, bool(row and row["cancel_requested"])

    def release(self, job_id: str, worker_id: Optional[str] = None) -> bool:
        """Return one ``running`` job to the queue (its worker died mid-run).

        No-op (returns False) unless the job is currently ``running`` **and**
        still claimed by *worker_id* -- a crashed worker's cleanup can race
        the stale-heartbeat sweeper, and without the ownership predicate it
        would yank a job that was already rescued and re-claimed elsewhere,
        aborting a healthy run.  A job whose cancellation was already
        requested is finalised as ``cancelled`` instead of being resurrected.
        """
        with self._write() as conn:
            row = conn.execute(
                "SELECT status, cancel_requested, claimed_by FROM jobs WHERE id = ?",
                (job_id,),
            ).fetchone()
            if row is None or row["status"] != "running":
                return False
            if row["claimed_by"] != worker_id:
                return False
            if row["cancel_requested"]:
                now = self._now()
                conn.execute(
                    "UPDATE jobs SET status = 'cancelled', finished_at = ?,"
                    " claimed_by = NULL, heartbeat_at = NULL,"
                    " expires_at = CASE WHEN ttl_seconds IS NOT NULL"
                    "   THEN ? + ttl_seconds ELSE NULL END WHERE id = ?",
                    (now, now, job_id),
                )
            else:
                conn.execute(
                    "UPDATE jobs SET status = 'queued', started_at = NULL,"
                    " claimed_by = NULL, heartbeat_at = NULL WHERE id = ?",
                    (job_id,),
                )
        self._notify(job_id)
        return True

    def requeue_stale(self, max_age_seconds: float) -> int:
        """Re-queue ``running`` jobs whose heartbeat went stale; returns the count.

        Only heartbeat-carrying claims are eligible -- claims without a
        ``worker_id`` never heartbeat, so they are never mistaken for a dead
        worker.  Stale jobs with a pending cancel are finalised ``cancelled``
        rather than requeued.  Both timestamps are computed *inside* the
        transaction (a pre-lock cutoff could drift from the stamps under
        contention), each on the clock family its comparison needs: the
        staleness cutoff uses the *shared* clock -- the one heartbeat stamps
        are written with, so both sides of the comparison agree even after
        the sweeping host was suspended -- while the ``finished_at`` /
        ``expires_at`` stamps stay on the plain store clock like every other
        TTL stamp (:meth:`sweep_expired` compares them against it).
        """
        with self._write() as conn:
            now = self._now()
            cutoff = self._shared_now() - max_age_seconds
            conn.execute(
                "UPDATE jobs SET status = 'cancelled', finished_at = ?,"
                " claimed_by = NULL, heartbeat_at = NULL,"
                " expires_at = CASE WHEN ttl_seconds IS NOT NULL"
                "   THEN ? + ttl_seconds ELSE NULL END"
                " WHERE status = 'running' AND cancel_requested = 1"
                " AND heartbeat_at IS NOT NULL AND heartbeat_at <= ?",
                (now, now, cutoff),
            )
            cursor = conn.execute(
                "UPDATE jobs SET status = 'queued', started_at = NULL,"
                " claimed_by = NULL, heartbeat_at = NULL"
                " WHERE status = 'running' AND cancel_requested = 0"
                " AND heartbeat_at IS NOT NULL AND heartbeat_at <= ?",
                (cutoff,),
            )
            return cursor.rowcount

    def mark_done(
        self,
        job_id: str,
        result: Dict[str, Any],
        cache_hit: bool = False,
        persist_result: bool = True,
        worker_id: Optional[str] = None,
    ) -> bool:
        """Record a finished job and persist its result under the fingerprint.

        ``persist_result=False`` keeps the result on the job row only (like a
        cancelled job's partial result) -- used for verdicts truncated by
        job-level limits (``deadline_ms``) that are not part of the content
        fingerprint, so they can never be served as cache hits to jobs
        without that limit.

        Terminal states are never overwritten, and when *worker_id* is given
        the update additionally lands only while that worker still owns the
        claim: a zombie whose job was rescued, re-claimed and re-run
        elsewhere cannot overwrite the live claim's state even before it
        turns terminal.  A mark that does not land returns ``False``.  The
        computed result itself is still persisted under the fingerprint when
        eligible -- verification is deterministic, so the verdict is valid
        regardless of which claim produced it.
        """
        with self._write() as conn:
            row = conn.execute(
                "SELECT fingerprint FROM jobs WHERE id = ?", (job_id,)
            ).fetchone()
            if row is None:
                raise KeyError(f"no stored job with id {job_id!r}")
            partial_json = None
            if persist_result:
                # The read-through cache usually persisted the result already
                # (results are deterministic per fingerprint): skip the
                # redundant serialize-and-write on the hot path.
                exists = conn.execute(
                    "SELECT 1 FROM results WHERE fingerprint = ?", (row["fingerprint"],)
                ).fetchone()
                if exists is None:
                    self._put_result_txn(conn, row["fingerprint"], result)
            else:
                partial_json = json.dumps(result)
            now = self._now()
            cursor = conn.execute(
                "UPDATE jobs SET status = 'done', cache_hit = ?, finished_at = ?,"
                " partial_json = ?, claimed_by = NULL, heartbeat_at = NULL,"
                " expires_at = CASE WHEN ttl_seconds IS NOT NULL"
                "   THEN ? + ttl_seconds ELSE NULL END,"
                " error = NULL"
                " WHERE id = ? AND status NOT IN ('done', 'error', 'cancelled')"
                " AND (? IS NULL OR claimed_by IS ?)",
                (
                    1 if cache_hit else 0,
                    now,
                    partial_json,
                    now,
                    job_id,
                    worker_id,
                    worker_id,
                ),
            )
            landed = cursor.rowcount > 0
        if landed:
            self._notify(job_id)
        return landed

    def mark_error(
        self, job_id: str, message: str, worker_id: Optional[str] = None
    ) -> bool:
        """Land the ``error`` state; no-op (False) on already-terminal jobs or
        when *worker_id* (if given) no longer owns the claim."""
        with self._write() as conn:
            now = self._now()
            cursor = conn.execute(
                "UPDATE jobs SET status = 'error', error = ?, finished_at = ?,"
                " claimed_by = NULL, heartbeat_at = NULL,"
                " expires_at = CASE WHEN ttl_seconds IS NOT NULL"
                "   THEN ? + ttl_seconds ELSE NULL END"
                " WHERE id = ? AND status NOT IN ('done', 'error', 'cancelled')"
                " AND (? IS NULL OR claimed_by IS ?)",
                (message, now, now, job_id, worker_id, worker_id),
            )
            landed = cursor.rowcount > 0
        if landed:
            self._notify(job_id)
        return landed

    def mark_cancelled(
        self,
        job_id: str,
        partial_result: Optional[Dict[str, Any]] = None,
        worker_id: Optional[str] = None,
    ) -> bool:
        """Land the terminal ``cancelled`` state, keeping any partial result.

        The partial result (an ``UNKNOWN`` verdict with the statistics
        gathered before the stop) lives on the job row only -- never in the
        ``results`` table, so it can never satisfy a cache lookup.  No-op
        (False) on already-terminal jobs or when *worker_id* (if given) no
        longer owns the claim.
        """
        with self._write() as conn:
            now = self._now()
            cursor = conn.execute(
                "UPDATE jobs SET status = 'cancelled', finished_at = ?,"
                " partial_json = ?, claimed_by = NULL, heartbeat_at = NULL,"
                " expires_at = CASE WHEN ttl_seconds IS NOT NULL"
                "   THEN ? + ttl_seconds ELSE NULL END"
                " WHERE id = ? AND status NOT IN ('done', 'error', 'cancelled')"
                " AND (? IS NULL OR claimed_by IS ?)",
                (
                    now,
                    json.dumps(partial_result) if partial_result is not None else None,
                    now,
                    job_id,
                    worker_id,
                    worker_id,
                ),
            )
            landed = cursor.rowcount > 0
        if landed:
            self._notify(job_id)
        return landed

    def request_cancel(self, job_id: str) -> Optional[Tuple[str, bool]]:
        """Request cooperative cancellation of a job.

        Returns ``(disposition, fresh)`` -- or ``None`` when no such job
        exists.  The disposition is the job's *resulting* state:
        ``"cancelled"`` for a queued job (terminal immediately -- no worker
        ever sees it), ``"cancelling"`` for a running one (the
        ``cancel_requested`` flag is persisted; the owning worker's token is
        tripped by its server, and workers on *other* servers observe the
        flag through :meth:`touch_claim` / :meth:`is_cancel_requested`), or
        the unchanged terminal status.  ``fresh`` is True only when *this*
        call changed something, so repeated DELETEs don't inflate metrics or
        append duplicate events.

        The ``cancel`` event is appended in the same transaction, *before*
        the status flips terminal: a poller that observes ``terminal`` is
        guaranteed the event log is already complete.
        """
        with self._write() as conn:
            row = conn.execute(
                "SELECT status, cancel_requested FROM jobs WHERE id = ?", (job_id,)
            ).fetchone()
            if row is None:
                return None
            status = row["status"]
            outcome: Tuple[str, bool]
            if status == "queued":
                self._append_event_txn(
                    conn, job_id, "cancel", {"data": {"disposition": "cancelled"}}
                )
                now = self._now()
                conn.execute(
                    "UPDATE jobs SET status = 'cancelled', cancel_requested = 1,"
                    " finished_at = ?,"
                    " expires_at = CASE WHEN ttl_seconds IS NOT NULL"
                    "   THEN ? + ttl_seconds ELSE NULL END WHERE id = ?",
                    (now, now, job_id),
                )
                outcome = ("cancelled", True)
            elif status == "running":
                if row["cancel_requested"]:
                    return "cancelling", False
                self._append_event_txn(
                    conn, job_id, "cancel", {"data": {"disposition": "cancelling"}}
                )
                conn.execute(
                    "UPDATE jobs SET cancel_requested = 1 WHERE id = ?", (job_id,)
                )
                outcome = ("cancelling", True)
            else:
                return status, False
        self._notify(job_id)
        return outcome

    def is_cancel_requested(self, job_id: str) -> bool:
        with self._read() as conn:
            row = conn.execute(
                "SELECT cancel_requested FROM jobs WHERE id = ?", (job_id,)
            ).fetchone()
        return bool(row and row["cancel_requested"])

    def requeue_running(
        self,
        owner_prefix: Optional[str] = None,
        heartbeat_grace_seconds: Optional[float] = None,
    ) -> int:
        """Re-queue jobs left ``running`` by a dead process; returns the count.

        ``owner_prefix`` scopes the repair for shared-store deployments: only
        jobs whose ``claimed_by`` starts with the prefix (this server's own
        workers from a previous incarnation) or carries no claim at all are
        requeued -- jobs running live on *other* servers are left alone.
        ``None`` keeps the legacy single-server behaviour (everything).

        ``heartbeat_grace_seconds`` additionally spares heartbeat-carrying
        claims whose stamp is younger than the grace: during a rolling
        restart, the replacement server starts while the old same-id
        instance is still draining (and heartbeating) its last jobs --
        without the grace, startup recovery would yank live, nearly-finished
        work.  Claims with no heartbeat at all are always eligible.

        Interrupted jobs whose cancellation was already requested are *not*
        requeued: the cancel was accepted before the crash, so they land in
        the terminal ``cancelled`` state instead (see
        :meth:`cancel_interrupted`, which recovery runs first).
        """
        with self._write() as conn:
            cutoff = self._heartbeat_cutoff(heartbeat_grace_seconds)
            cursor = conn.execute(
                "UPDATE jobs SET status = 'queued', started_at = NULL,"
                " claimed_by = NULL, heartbeat_at = NULL"
                " WHERE status = 'running' AND cancel_requested = 0"
                " AND (? IS NULL OR claimed_by IS NULL"
                "      OR substr(claimed_by, 1, ?) = ?)"
                " AND (heartbeat_at IS NULL OR ? IS NULL OR heartbeat_at <= ?)",
                (
                    owner_prefix,
                    len(owner_prefix or ""),
                    owner_prefix,
                    cutoff,
                    cutoff,
                ),
            )
            return cursor.rowcount

    def cancel_interrupted(
        self,
        owner_prefix: Optional[str] = None,
        heartbeat_grace_seconds: Optional[float] = None,
    ) -> int:
        """Finalise ``running`` jobs with a pending cancel as ``cancelled``.

        Scoped by ``owner_prefix`` and ``heartbeat_grace_seconds`` exactly
        like :meth:`requeue_running` (a still-heartbeating claim will honour
        its cancel itself).
        """
        with self._write() as conn:
            now = self._now()
            cutoff = self._heartbeat_cutoff(heartbeat_grace_seconds)
            cursor = conn.execute(
                "UPDATE jobs SET status = 'cancelled', finished_at = ?,"
                " claimed_by = NULL, heartbeat_at = NULL,"
                " expires_at = CASE WHEN ttl_seconds IS NOT NULL"
                "   THEN ? + ttl_seconds ELSE NULL END"
                " WHERE status = 'running' AND cancel_requested = 1"
                " AND (? IS NULL OR claimed_by IS NULL"
                "      OR substr(claimed_by, 1, ?) = ?)"
                " AND (heartbeat_at IS NULL OR ? IS NULL OR heartbeat_at <= ?)",
                (
                    now,
                    now,
                    owner_prefix,
                    len(owner_prefix or ""),
                    owner_prefix,
                    cutoff,
                    cutoff,
                ),
            )
            return cursor.rowcount

    def _heartbeat_cutoff(self, grace_seconds: Optional[float]) -> Optional[float]:
        """Shared-clock staleness cutoff for a grace window (``None``: no limit)."""
        if grace_seconds is None:
            return None
        return self._shared_now() - grace_seconds

    # ------------------------------------------------------------------- leases

    def acquire_lease(self, name: str, owner: str, ttl_seconds: float) -> bool:
        """Take (or renew) the named advisory lease; returns whether it is held.

        A lease is free when absent or expired; the current holder renews
        unconditionally.  Servers sharing one store use this to elect a
        single sweeper: only the ``"sweeper"`` lease holder runs TTL expiry
        and stale-claim rescue, so N servers don't race each other over
        global repairs.  Expiry stamps use the shared clock
        (:meth:`_shared_now`) so they stay comparable between processes
        even after a host suspend.
        """
        with self._write() as conn:
            now = self._shared_now()
            row = conn.execute(
                "SELECT owner, expires_at FROM leases WHERE name = ?", (name,)
            ).fetchone()
            if row is not None and row["owner"] != owner and row["expires_at"] > now:
                return False
            conn.execute(
                "INSERT OR REPLACE INTO leases (name, owner, expires_at)"
                " VALUES (?, ?, ?)",
                (name, owner, now + ttl_seconds),
            )
            return True

    def release_lease(self, name: str, owner: str) -> bool:
        """Drop the named lease if *owner* holds it (e.g. on graceful stop)."""
        with self._write() as conn:
            cursor = conn.execute(
                "DELETE FROM leases WHERE name = ? AND owner = ?", (name, owner)
            )
            return cursor.rowcount > 0

    def lease_holder(self, name: str) -> Optional[str]:
        """The current (unexpired) holder of the named lease, or ``None``."""
        with self._read() as conn:
            row = conn.execute(
                "SELECT owner, expires_at FROM leases WHERE name = ?", (name,)
            ).fetchone()
        if row is None or row["expires_at"] <= self._shared_now():
            return None
        return row["owner"]

    # ------------------------------------------------------------------ queries

    def get_job(self, job_id: str) -> Optional[StoredJob]:
        with self._read() as conn:
            row = conn.execute(
                "SELECT * FROM jobs WHERE id = ?", (job_id,)
            ).fetchone()
        return StoredJob._from_row(row) if row is not None else None

    def get_jobs(self, job_ids: Sequence[str]) -> List[StoredJob]:
        """The stored jobs among *job_ids*, in input order; unknown ids are
        simply absent (the caller decides whether that is an error).

        One ``IN (...)`` query per 500 ids -- the batch-status primitive
        behind ``GET /v1/jobs?id=a&id=b``, turning a client's per-job status
        polling into one round-trip per poll cycle.
        """
        ids = [str(job_id) for job_id in job_ids]
        by_id: Dict[str, StoredJob] = {}
        with self._read() as conn:
            for start in range(0, len(ids), 500):
                chunk = ids[start : start + 500]
                placeholders = ",".join("?" for _ in chunk)
                rows = conn.execute(
                    f"SELECT * FROM jobs WHERE id IN ({placeholders})", chunk
                ).fetchall()
                for row in rows:
                    by_id[row["id"]] = StoredJob._from_row(row)
        seen = set()
        ordered = []
        for job_id in ids:
            if job_id in by_id and job_id not in seen:
                seen.add(job_id)
                ordered.append(by_id[job_id])
        return ordered

    def list_jobs(
        self,
        status: Optional[str] = None,
        limit: int = 100,
        tenant_id: Optional[str] = None,
    ) -> List[StoredJob]:
        """Most recently submitted jobs first, optionally filtered by status.

        ``tenant_id`` restricts the listing to one tenant's jobs -- the
        scoping behind authenticated ``GET /v1/jobs`` (``None`` means no
        tenant filter, i.e. the anonymous/admin view of everything).
        """
        if status is not None and status not in JOB_STATUSES:
            raise ValueError(f"unknown job status {status!r}; expected one of {JOB_STATUSES}")
        query = "SELECT * FROM jobs"
        conditions: List[str] = []
        parameters: List[Any] = []
        if status is not None:
            conditions.append("status = ?")
            parameters.append(status)
        if tenant_id is not None:
            conditions.append("tenant_id IS ?")
            parameters.append(tenant_id)
        if conditions:
            query += " WHERE " + " AND ".join(conditions)
        query += " ORDER BY submitted_at DESC, rowid DESC LIMIT ?"
        parameters.append(max(0, limit))
        with self._read() as conn:
            rows = conn.execute(query, parameters).fetchall()
        return [StoredJob._from_row(row) for row in rows]

    def counts(self, tenant_id: Optional[str] = None) -> Dict[str, int]:
        """Jobs per status (every status present, zero when empty);
        ``tenant_id`` scopes the tally to one tenant's jobs."""
        query = "SELECT status, COUNT(*) AS n FROM jobs"
        parameters: List[Any] = []
        if tenant_id is not None:
            query += " WHERE tenant_id IS ?"
            parameters.append(tenant_id)
        query += " GROUP BY status"
        with self._read() as conn:
            rows = conn.execute(query, parameters).fetchall()
        counts = {status: 0 for status in JOB_STATUSES}
        for row in rows:
            counts[row["status"]] = row["n"]
        return counts

    def pending_count(self, tenant_id: Optional[str]) -> int:
        """Queued + running jobs owned by *tenant_id* (``None`` = anonymous).

        The read-only preflight for batch submissions; the authoritative
        quota check is :meth:`submit`'s in-transaction ``pending_limit``.
        """
        with self._read() as conn:
            return conn.execute(
                "SELECT COUNT(*) FROM jobs"
                " WHERE status IN ('queued', 'running') AND tenant_id IS ?",
                (tenant_id,),
            ).fetchone()[0]

    def tenant_job_counts(self) -> Dict[str, Dict[str, int]]:
        """Jobs per (tenant, status) for tenants that own at least one job.

        Keys are tenant ids, with ``''`` standing for anonymous submissions;
        feeds the per-tenant section of ``GET /v1/metrics``.
        """
        with self._read() as conn:
            rows = conn.execute(
                "SELECT COALESCE(tenant_id, '') AS tkey, status, COUNT(*) AS n"
                " FROM jobs GROUP BY tkey, status"
            ).fetchall()
        result: Dict[str, Dict[str, int]] = {}
        for row in rows:
            per_status = result.setdefault(
                row["tkey"], {status: 0 for status in JOB_STATUSES}
            )
            per_status[row["status"]] = row["n"]
        return result

    # ------------------------------------------------------------------ results

    def get_result(self, fingerprint: str, count: bool = True) -> Optional[Dict[str, Any]]:
        """The persisted result dict for *fingerprint*.

        ``count=True`` (the default, used by the read-through cache) updates
        the store hit/miss counters; status polling passes ``count=False`` so
        it cannot skew the cache-effectiveness metrics.
        """
        with self._read() as conn:
            row = conn.execute(
                "SELECT result_json FROM results WHERE fingerprint = ?", (fingerprint,)
            ).fetchone()
        if count:
            with self._stats_lock:
                if row is None:
                    self.store_misses += 1
                else:
                    self.store_hits += 1
        return json.loads(row["result_json"]) if row is not None else None

    def has_result(self, fingerprint: str) -> bool:
        """Whether a result is persisted, without touching the hit/miss counters."""
        with self._read() as conn:
            row = conn.execute(
                "SELECT 1 FROM results WHERE fingerprint = ?", (fingerprint,)
            ).fetchone()
        return row is not None

    def put_result(self, fingerprint: str, result: Dict[str, Any]) -> None:
        with self._write() as conn:
            self._put_result_txn(conn, fingerprint, result)

    def _put_result_txn(
        self, conn: sqlite3.Connection, fingerprint: str, result: Dict[str, Any]
    ) -> None:
        conn.execute(
            "INSERT OR REPLACE INTO results (fingerprint, result_json, created_at)"
            " VALUES (?, ?, ?)",
            (fingerprint, json.dumps(result), self._now()),
        )

    def result_count(self) -> int:
        with self._read() as conn:
            return conn.execute("SELECT COUNT(*) FROM results").fetchone()[0]

    # ------------------------------------------------------------------- events

    def append_event(
        self,
        job_id: str,
        kind: str,
        payload: Dict[str, Any],
        busy_timeout_seconds: Optional[float] = None,
    ) -> int:
        """Append one progress event to the job's log; returns its ``seq``.

        Sequence numbers are store-assigned (``MAX(seq) + 1`` inside the
        write transaction) so they stay strictly increasing across restarts,
        re-runs of the same job, and concurrent appenders in other server
        processes.  ``busy_timeout_seconds`` lets callers on a
        heartbeat-critical thread fail fast (and drop a lossy progress
        event) instead of blocking on a contended write lock.
        """
        with self._write(busy_timeout_seconds=busy_timeout_seconds) as conn:
            seq = self._append_event_txn(conn, job_id, kind, payload)
        self._notify(job_id)
        return seq

    def _append_event_txn(
        self, conn: sqlite3.Connection, job_id: str, kind: str, payload: Dict[str, Any]
    ) -> int:
        row = conn.execute(
            "SELECT COALESCE(MAX(seq), 0) + 1 FROM events WHERE job_id = ?",
            (job_id,),
        ).fetchone()
        seq = row[0]
        conn.execute(
            "INSERT INTO events (job_id, seq, created_at, kind, payload)"
            " VALUES (?, ?, ?, ?, ?)",
            (job_id, seq, self._now(), kind, json.dumps(payload)),
        )
        return seq

    def events_after(
        self, job_id: str, cursor: int = 0, limit: int = 500
    ) -> List[Dict[str, Any]]:
        """Events with ``seq > cursor``, oldest first (the polling primitive)."""
        with self._read() as conn:
            rows = conn.execute(
                "SELECT seq, created_at, kind, payload FROM events"
                " WHERE job_id = ? AND seq > ? ORDER BY seq LIMIT ?",
                (job_id, cursor, max(0, limit)),
            ).fetchall()
        return [
            {
                "seq": row["seq"],
                "created_at": row["created_at"],
                "kind": row["kind"],
                **json.loads(row["payload"]),
            }
            for row in rows
        ]

    def event_count(self, job_id: str) -> int:
        with self._read() as conn:
            return conn.execute(
                "SELECT COUNT(*) FROM events WHERE job_id = ?", (job_id,)
            ).fetchone()[0]

    # ------------------------------------------------------------------- spans

    def append_span(
        self,
        span: Dict[str, Any],
        busy_timeout_seconds: Optional[float] = None,
    ) -> None:
        """Persist one finished trace span (see :class:`repro.obs.Span`).

        ``INSERT OR REPLACE`` keyed on ``(trace_id, span_id)`` makes retries
        (a worker crash between export and ack, a drain-loop replay)
        idempotent.  ``busy_timeout_seconds`` lets heartbeat-adjacent
        callers fail fast; the caller decides whether a dropped span is
        acceptable.
        """
        with self._write(busy_timeout_seconds=busy_timeout_seconds) as conn:
            conn.execute(
                "INSERT OR REPLACE INTO spans"
                " (trace_id, span_id, parent_id, job_id, name,"
                "  start_time, duration, status, attrs)"
                " VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?)",
                (
                    span["trace_id"],
                    span["span_id"],
                    span.get("parent_id"),
                    span.get("job_id"),
                    span.get("name", "?"),
                    span.get("start_time", 0.0),
                    span.get("duration", 0.0),
                    span.get("status", "ok"),
                    json.dumps(span.get("attrs", {})),
                ),
            )

    def spans_for_trace(self, trace_id: str) -> List[Dict[str, Any]]:
        """All spans of one trace, oldest first (the ``/trace`` view body)."""
        with self._read() as conn:
            rows = conn.execute(
                "SELECT * FROM spans WHERE trace_id = ?"
                " ORDER BY start_time, span_id",
                (trace_id,),
            ).fetchall()
        return [
            {
                "trace_id": row["trace_id"],
                "span_id": row["span_id"],
                "parent_id": row["parent_id"],
                "job_id": row["job_id"],
                "name": row["name"],
                "start_time": row["start_time"],
                "duration": row["duration"],
                "status": row["status"],
                "attrs": json.loads(row["attrs"]),
            }
            for row in rows
        ]

    def span_count(self, trace_id: str) -> int:
        with self._read() as conn:
            return conn.execute(
                "SELECT COUNT(*) FROM spans WHERE trace_id = ?", (trace_id,)
            ).fetchone()[0]

    # --------------------------------------------------------------- readiness

    def ping(self, busy_timeout_seconds: float = 0.25) -> bool:
        """Fail-fast liveness probe for ``/readyz``: one trivial write
        transaction under a short busy timeout, so a wedged or contended
        store reads as *not ready* within the probe budget instead of
        hanging the health check behind the full store timeout."""
        try:
            with self._write(busy_timeout_seconds=busy_timeout_seconds) as conn:
                conn.execute("SELECT 1").fetchone()
            return True
        except sqlite3.Error:
            return False

    # ----------------------------------------------------------------- sweeping

    def sweep_expired(self, now: Optional[float] = None) -> Dict[str, int]:
        """Delete TTL-expired terminal jobs, their events, and orphaned results.

        A result row is deleted only when no remaining job references its
        fingerprint, so results shared with unexpired (or TTL-less) jobs
        survive.  Returns ``{"jobs": ..., "events": ..., "results": ...}``
        deletion counts.  The implicit *now* comes from the store's
        monotonic clock, so a wall-clock step can neither mass-expire nor
        immortalise jobs.
        """
        now = self._now() if now is None else now
        with self._write() as conn:
            expired = [
                row["id"]
                for row in conn.execute(
                    "SELECT id FROM jobs WHERE expires_at IS NOT NULL"
                    " AND expires_at <= ? AND status IN ('done', 'error', 'cancelled')",
                    (now,),
                )
            ]
            if not expired:
                return {"jobs": 0, "events": 0, "results": 0, "spans": 0}
            placeholders = ",".join("?" for _ in expired)
            events = conn.execute(
                f"DELETE FROM events WHERE job_id IN ({placeholders})", expired
            ).rowcount
            spans = conn.execute(
                f"DELETE FROM spans WHERE job_id IN ({placeholders})", expired
            ).rowcount
            conn.execute(
                f"DELETE FROM jobs WHERE id IN ({placeholders})", expired
            )
            # Job-less spans (the HTTP submit span is shared by every job of
            # its request) go once no live job references their trace.
            spans += conn.execute(
                "DELETE FROM spans WHERE job_id IS NULL AND trace_id NOT IN"
                " (SELECT trace_id FROM jobs WHERE trace_id IS NOT NULL)"
            ).rowcount
            results = conn.execute(
                "DELETE FROM results WHERE fingerprint NOT IN"
                " (SELECT fingerprint FROM jobs)"
            ).rowcount
            return {
                "jobs": len(expired),
                "events": events,
                "results": results,
                "spans": spans,
            }

    def statistics(self) -> Dict[str, int]:
        with self._stats_lock:
            hits, misses = self.store_hits, self.store_misses
        return {
            "results": self.result_count(),
            "store_hits": hits,
            "store_misses": misses,
        }


class StoreBackedCache:
    """Read-through layer: in-memory LRU :class:`ResultCache` over a :class:`JobStore`.

    ``get`` consults memory first, then the store (promoting store hits into
    memory); ``put`` writes both.  Implements the cache duck type the
    verification engine uses, so plugging it into a
    :class:`~repro.service.engine.VerificationService` makes every previously
    persisted result a cache hit -- including after a process restart with a
    cold memory cache.
    """

    def __init__(self, store: JobStore, memory: Optional[ResultCache] = None):
        self.store = store
        self.memory = memory if memory is not None else ResultCache()

    def get(self, fingerprint: str) -> Optional[VerificationResult]:
        cached = self.memory.get(fingerprint)
        if cached is not None:
            return cached
        persisted = self.store.get_result(fingerprint)
        if persisted is None:
            return None
        result = VerificationResult.from_dict(persisted)
        self.memory.put(fingerprint, result)
        return result

    def peek(self, fingerprint: str) -> bool:
        return self.memory.peek(fingerprint) or self.store.has_result(fingerprint)

    def put(self, fingerprint: str, result: VerificationResult) -> None:
        self.memory.put(fingerprint, result)
        self.store.put_result(fingerprint, result.as_dict())

    def statistics(self) -> Dict[str, int]:
        memory = self.memory.statistics()
        return {
            "entries": memory["entries"],
            "hits": memory["hits"],
            "misses": memory["misses"],
            **self.store.statistics(),
        }
