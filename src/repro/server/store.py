"""The persistent SQLite job/result store behind the verification server.

Two tables back verification-as-a-service:

* ``jobs`` -- one row per submitted job: the canonical spec payload (system,
  property, options dicts as JSON text), lifecycle status (``queued`` ->
  ``running`` -> ``done`` | ``error``), timestamps and cache provenance.
* ``results`` -- serialized :class:`~repro.core.verifier.VerificationResult`
  dicts keyed by job *content fingerprint* (see
  :mod:`repro.spec.fingerprint`), shared by every job with the same inputs.

Both survive process restarts: a restarted server re-queues interrupted
``running`` jobs (see :mod:`repro.server.recovery`) and serves previously
computed results straight from the ``results`` table without re-verifying.

:class:`StoreBackedCache` layers the in-memory
:class:`~repro.service.cache.ResultCache` *read-through* over the store: it
satisfies the same ``get``/``put``/``statistics`` duck type the
:class:`~repro.service.engine.VerificationService` expects, so the engine's
cache path transparently hits memory first, then SQLite, then verifies.
"""

from __future__ import annotations

import json
import os
import sqlite3
import threading
import time
import uuid
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Union

from repro.core.verifier import VerificationResult
from repro.service.cache import ResultCache
from repro.service.jobs import VerificationJob

#: Lifecycle states of a stored job.
JOB_STATUSES = ("queued", "running", "done", "error")

_SCHEMA = """
CREATE TABLE IF NOT EXISTS jobs (
    id            TEXT PRIMARY KEY,
    fingerprint   TEXT NOT NULL,
    system_name   TEXT NOT NULL,
    property_name TEXT NOT NULL,
    label         TEXT,
    status        TEXT NOT NULL CHECK (status IN ('queued', 'running', 'done', 'error')),
    error         TEXT,
    cache_hit     INTEGER NOT NULL DEFAULT 0,
    submitted_at  REAL NOT NULL,
    started_at    REAL,
    finished_at   REAL,
    system_json   TEXT NOT NULL,
    property_json TEXT NOT NULL,
    options_json  TEXT NOT NULL
);
CREATE INDEX IF NOT EXISTS jobs_by_status ON jobs (status, submitted_at);
CREATE INDEX IF NOT EXISTS jobs_by_fingerprint ON jobs (fingerprint);
CREATE TABLE IF NOT EXISTS results (
    fingerprint TEXT PRIMARY KEY,
    result_json TEXT NOT NULL,
    created_at  REAL NOT NULL
);
"""


@dataclass
class StoredJob:
    """One persisted verification job (a ``jobs`` table row)."""

    id: str
    fingerprint: str
    system_name: str
    property_name: str
    label: Optional[str]
    status: str
    error: Optional[str]
    cache_hit: bool
    submitted_at: float
    started_at: Optional[float]
    finished_at: Optional[float]
    system_dict: Dict[str, Any]
    property_dict: Dict[str, Any]
    options_dict: Dict[str, Any]

    def to_job(self) -> VerificationJob:
        """The engine-level job this row was built from."""
        return VerificationJob(
            system_dict=self.system_dict,
            property_dict=self.property_dict,
            options_dict=self.options_dict,
            label=self.label,
        )

    def as_dict(self, result: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
        """The JSON view served by ``GET /jobs/<id>`` (payload omitted)."""
        data: Dict[str, Any] = {
            "id": self.id,
            "fingerprint": self.fingerprint,
            "system": self.system_name,
            "property": self.property_name,
            "label": self.label,
            "status": self.status,
            "cache_hit": self.cache_hit,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
        }
        if self.error is not None:
            data["error"] = self.error
        if result is not None:
            data["result"] = result
        return data

    @classmethod
    def _from_row(cls, row: sqlite3.Row) -> "StoredJob":
        return cls(
            id=row["id"],
            fingerprint=row["fingerprint"],
            system_name=row["system_name"],
            property_name=row["property_name"],
            label=row["label"],
            status=row["status"],
            error=row["error"],
            cache_hit=bool(row["cache_hit"]),
            submitted_at=row["submitted_at"],
            started_at=row["started_at"],
            finished_at=row["finished_at"],
            system_dict=json.loads(row["system_json"]),
            property_dict=json.loads(row["property_json"]),
            options_dict=json.loads(row["options_json"]),
        )


class JobStore:
    """Thread-safe persistent job queue + result store on one SQLite file.

    All access goes through a single connection guarded by a lock, so worker
    threads and HTTP handler threads can share one store instance.  ``claim``
    transitions are atomic under that lock: each queued job is handed to
    exactly one worker.
    """

    def __init__(self, path: Union[str, os.PathLike] = ":memory:"):
        self.path = os.fspath(path)
        self._connection = sqlite3.connect(self.path, check_same_thread=False)
        self._connection.row_factory = sqlite3.Row
        self._lock = threading.RLock()
        self.store_hits = 0
        self.store_misses = 0
        with self._lock, self._connection:
            self._connection.executescript(_SCHEMA)

    def close(self) -> None:
        with self._lock:
            self._connection.close()

    # ---------------------------------------------------------------- lifecycle

    def submit(self, job: VerificationJob, label: Optional[str] = None) -> StoredJob:
        """Persist *job* as ``queued`` and return its stored form (with id)."""
        job_id = uuid.uuid4().hex[:12]
        now = time.time()
        with self._lock, self._connection:
            self._connection.execute(
                "INSERT INTO jobs (id, fingerprint, system_name, property_name, label,"
                " status, cache_hit, submitted_at, system_json, property_json, options_json)"
                " VALUES (?, ?, ?, ?, ?, 'queued', 0, ?, ?, ?, ?)",
                (
                    job_id,
                    job.fingerprint,
                    job.system_name,
                    job.property_name,
                    label if label is not None else job.label,
                    now,
                    json.dumps(job.system_dict),
                    json.dumps(job.property_dict),
                    json.dumps(job.options_dict),
                ),
            )
        stored = self.get_job(job_id)
        assert stored is not None
        return stored

    def claim_next(self) -> Optional[StoredJob]:
        """Atomically pop the oldest claimable ``queued`` job, marking it ``running``.

        A queued job whose fingerprint is already ``running`` on another
        worker is not claimable yet: claiming it would verify the same
        content twice concurrently.  It stays queued until the in-flight twin
        finishes, at which point it completes as a cache hit.
        """
        with self._lock, self._connection:
            row = self._connection.execute(
                "SELECT * FROM jobs WHERE status = 'queued' AND fingerprint NOT IN"
                " (SELECT fingerprint FROM jobs WHERE status = 'running')"
                " ORDER BY submitted_at, rowid LIMIT 1"
            ).fetchone()
            if row is None:
                return None
            self._connection.execute(
                "UPDATE jobs SET status = 'running', started_at = ? WHERE id = ?",
                (time.time(), row["id"]),
            )
        return self.get_job(row["id"])

    def mark_done(
        self, job_id: str, result: Dict[str, Any], cache_hit: bool = False
    ) -> None:
        """Record a finished job and persist its result under the fingerprint."""
        with self._lock, self._connection:
            row = self._connection.execute(
                "SELECT fingerprint FROM jobs WHERE id = ?", (job_id,)
            ).fetchone()
            if row is None:
                raise KeyError(f"no stored job with id {job_id!r}")
            # The read-through cache usually persisted the result already
            # (results are deterministic per fingerprint): skip the redundant
            # serialize-and-write on the hot path.
            exists = self._connection.execute(
                "SELECT 1 FROM results WHERE fingerprint = ?", (row["fingerprint"],)
            ).fetchone()
            if exists is None:
                self._put_result_locked(row["fingerprint"], result)
            self._connection.execute(
                "UPDATE jobs SET status = 'done', cache_hit = ?, finished_at = ?,"
                " error = NULL WHERE id = ?",
                (1 if cache_hit else 0, time.time(), job_id),
            )

    def mark_error(self, job_id: str, message: str) -> None:
        with self._lock, self._connection:
            self._connection.execute(
                "UPDATE jobs SET status = 'error', error = ?, finished_at = ? WHERE id = ?",
                (message, time.time(), job_id),
            )

    def requeue_running(self) -> int:
        """Re-queue jobs left ``running`` by a dead process; returns the count."""
        with self._lock, self._connection:
            cursor = self._connection.execute(
                "UPDATE jobs SET status = 'queued', started_at = NULL"
                " WHERE status = 'running'"
            )
            return cursor.rowcount

    # ------------------------------------------------------------------ queries

    def get_job(self, job_id: str) -> Optional[StoredJob]:
        with self._lock:
            row = self._connection.execute(
                "SELECT * FROM jobs WHERE id = ?", (job_id,)
            ).fetchone()
        return StoredJob._from_row(row) if row is not None else None

    def list_jobs(
        self, status: Optional[str] = None, limit: int = 100
    ) -> List[StoredJob]:
        """Most recently submitted jobs first, optionally filtered by status."""
        if status is not None and status not in JOB_STATUSES:
            raise ValueError(f"unknown job status {status!r}; expected one of {JOB_STATUSES}")
        query = "SELECT * FROM jobs"
        parameters: List[Any] = []
        if status is not None:
            query += " WHERE status = ?"
            parameters.append(status)
        query += " ORDER BY submitted_at DESC, rowid DESC LIMIT ?"
        parameters.append(max(0, limit))
        with self._lock:
            rows = self._connection.execute(query, parameters).fetchall()
        return [StoredJob._from_row(row) for row in rows]

    def counts(self) -> Dict[str, int]:
        """Jobs per status (every status present, zero when empty)."""
        with self._lock:
            rows = self._connection.execute(
                "SELECT status, COUNT(*) AS n FROM jobs GROUP BY status"
            ).fetchall()
        counts = {status: 0 for status in JOB_STATUSES}
        for row in rows:
            counts[row["status"]] = row["n"]
        return counts

    # ------------------------------------------------------------------ results

    def get_result(self, fingerprint: str, count: bool = True) -> Optional[Dict[str, Any]]:
        """The persisted result dict for *fingerprint*.

        ``count=True`` (the default, used by the read-through cache) updates
        the store hit/miss counters; status polling passes ``count=False`` so
        it cannot skew the cache-effectiveness metrics.
        """
        with self._lock:
            row = self._connection.execute(
                "SELECT result_json FROM results WHERE fingerprint = ?", (fingerprint,)
            ).fetchone()
            if row is None:
                if count:
                    self.store_misses += 1
                return None
            if count:
                self.store_hits += 1
            return json.loads(row["result_json"])

    def has_result(self, fingerprint: str) -> bool:
        """Whether a result is persisted, without touching the hit/miss counters."""
        with self._lock:
            row = self._connection.execute(
                "SELECT 1 FROM results WHERE fingerprint = ?", (fingerprint,)
            ).fetchone()
        return row is not None

    def put_result(self, fingerprint: str, result: Dict[str, Any]) -> None:
        with self._lock, self._connection:
            self._put_result_locked(fingerprint, result)

    def _put_result_locked(self, fingerprint: str, result: Dict[str, Any]) -> None:
        self._connection.execute(
            "INSERT OR REPLACE INTO results (fingerprint, result_json, created_at)"
            " VALUES (?, ?, ?)",
            (fingerprint, json.dumps(result), time.time()),
        )

    def result_count(self) -> int:
        with self._lock:
            return self._connection.execute("SELECT COUNT(*) FROM results").fetchone()[0]

    def statistics(self) -> Dict[str, int]:
        return {
            "results": self.result_count(),
            "store_hits": self.store_hits,
            "store_misses": self.store_misses,
        }


class StoreBackedCache:
    """Read-through layer: in-memory LRU :class:`ResultCache` over a :class:`JobStore`.

    ``get`` consults memory first, then the store (promoting store hits into
    memory); ``put`` writes both.  Implements the cache duck type the
    verification engine uses, so plugging it into a
    :class:`~repro.service.engine.VerificationService` makes every previously
    persisted result a cache hit -- including after a process restart with a
    cold memory cache.
    """

    def __init__(self, store: JobStore, memory: Optional[ResultCache] = None):
        self.store = store
        self.memory = memory if memory is not None else ResultCache()

    def get(self, fingerprint: str) -> Optional[VerificationResult]:
        cached = self.memory.get(fingerprint)
        if cached is not None:
            return cached
        persisted = self.store.get_result(fingerprint)
        if persisted is None:
            return None
        result = VerificationResult.from_dict(persisted)
        self.memory.put(fingerprint, result)
        return result

    def peek(self, fingerprint: str) -> bool:
        return self.memory.peek(fingerprint) or self.store.has_result(fingerprint)

    def put(self, fingerprint: str, result: VerificationResult) -> None:
        self.memory.put(fingerprint, result)
        self.store.put_result(fingerprint, result.as_dict())

    def statistics(self) -> Dict[str, int]:
        memory = self.memory.statistics()
        return {
            "entries": memory["entries"],
            "hits": memory["hits"],
            "misses": memory["misses"],
            **self.store.statistics(),
        }
