"""The persistent SQLite job/result store behind the verification server.

Two tables back verification-as-a-service:

* ``jobs`` -- one row per submitted job: the canonical spec payload (system,
  property, options dicts as JSON text), lifecycle status (``queued`` ->
  ``running`` -> ``done`` | ``error`` | ``cancelled``), timestamps, cache
  provenance, TTL / deadline limits, the cooperative ``cancel_requested``
  flag, and worker-claim bookkeeping (``claimed_by`` + ``heartbeat_at``,
  kept fresh by process workers so dead ones are detected and their jobs
  requeued).  A ``cancelled`` job may carry a *partial* result (``UNKNOWN`` with
  the statistics gathered before the stop) in ``partial_json`` -- partial
  results are deliberately **not** written to ``results``, so they can never
  be served as cache hits.
* ``results`` -- serialized :class:`~repro.core.verifier.VerificationResult`
  dicts keyed by job *content fingerprint* (see
  :mod:`repro.spec.fingerprint`), shared by every job with the same inputs.
* ``events`` -- the per-job progress-event log behind
  ``GET /v1/jobs/<id>/events``: monotonically increasing ``seq`` per job, so
  clients poll incrementally with a cursor.

Jobs submitted with ``ttl_seconds`` get an ``expires_at`` stamp when they
reach a terminal state; :meth:`JobStore.sweep_expired` (driven by the
server's sweeper thread) deletes expired jobs, their events, and any result
rows no remaining job references.

Older (PR 2) store files are migrated in place on open: the ``jobs`` table is
rebuilt with the extended schema and every existing row is preserved.

Both survive process restarts: a restarted server re-queues interrupted
``running`` jobs (see :mod:`repro.server.recovery`) and serves previously
computed results straight from the ``results`` table without re-verifying.

:class:`StoreBackedCache` layers the in-memory
:class:`~repro.service.cache.ResultCache` *read-through* over the store: it
satisfies the same ``get``/``put``/``statistics`` duck type the
:class:`~repro.service.engine.VerificationService` expects, so the engine's
cache path transparently hits memory first, then SQLite, then verifies.
"""

from __future__ import annotations

import json
import os
import sqlite3
import threading
import time
import uuid
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.core.verifier import VerificationResult
from repro.service.cache import ResultCache
from repro.service.jobs import VerificationJob

#: Lifecycle states of a stored job.
JOB_STATUSES = ("queued", "running", "done", "error", "cancelled")

#: States a job can never leave (sweeping and cancellation only apply here).
TERMINAL_STATUSES = ("done", "error", "cancelled")

_JOBS_DDL = """
CREATE TABLE IF NOT EXISTS jobs (
    id               TEXT PRIMARY KEY,
    fingerprint      TEXT NOT NULL,
    system_name      TEXT NOT NULL,
    property_name    TEXT NOT NULL,
    label            TEXT,
    status           TEXT NOT NULL
                     CHECK (status IN ('queued', 'running', 'done', 'error', 'cancelled')),
    error            TEXT,
    cache_hit        INTEGER NOT NULL DEFAULT 0,
    cancel_requested INTEGER NOT NULL DEFAULT 0,
    claimed_by       TEXT,
    heartbeat_at     REAL,
    ttl_seconds      REAL,
    deadline_ms      INTEGER,
    expires_at       REAL,
    submitted_at     REAL NOT NULL,
    started_at       REAL,
    finished_at      REAL,
    partial_json     TEXT,
    system_json      TEXT NOT NULL,
    property_json    TEXT NOT NULL,
    options_json     TEXT NOT NULL
)
"""

_SCHEMA = _JOBS_DDL + """;
CREATE INDEX IF NOT EXISTS jobs_by_status ON jobs (status, submitted_at);
CREATE INDEX IF NOT EXISTS jobs_by_fingerprint ON jobs (fingerprint);
CREATE INDEX IF NOT EXISTS jobs_by_expiry ON jobs (expires_at) WHERE expires_at IS NOT NULL;
CREATE TABLE IF NOT EXISTS results (
    fingerprint TEXT PRIMARY KEY,
    result_json TEXT NOT NULL,
    created_at  REAL NOT NULL
);
CREATE TABLE IF NOT EXISTS events (
    job_id     TEXT NOT NULL,
    seq        INTEGER NOT NULL,
    created_at REAL NOT NULL,
    kind       TEXT NOT NULL,
    payload    TEXT NOT NULL,
    PRIMARY KEY (job_id, seq)
);
"""

#: Columns shared by the PR 2 ``jobs`` table and the current one, used to
#: carry rows across the in-place migration.
_V1_COLUMNS = (
    "id, fingerprint, system_name, property_name, label, status, error,"
    " cache_hit, submitted_at, started_at, finished_at,"
    " system_json, property_json, options_json"
)


@dataclass
class StoredJob:
    """One persisted verification job (a ``jobs`` table row)."""

    id: str
    fingerprint: str
    system_name: str
    property_name: str
    label: Optional[str]
    status: str
    error: Optional[str]
    cache_hit: bool
    cancel_requested: bool
    claimed_by: Optional[str]
    heartbeat_at: Optional[float]
    ttl_seconds: Optional[float]
    deadline_ms: Optional[int]
    expires_at: Optional[float]
    submitted_at: float
    started_at: Optional[float]
    finished_at: Optional[float]
    partial_result: Optional[Dict[str, Any]]
    system_dict: Dict[str, Any]
    property_dict: Dict[str, Any]
    options_dict: Dict[str, Any]

    def to_job(self) -> VerificationJob:
        """The engine-level job this row was built from."""
        return VerificationJob(
            system_dict=self.system_dict,
            property_dict=self.property_dict,
            options_dict=self.options_dict,
            label=self.label,
        )

    def as_dict(self, result: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
        """The JSON view served by ``GET /v1/jobs/<id>`` (payload omitted)."""
        data: Dict[str, Any] = {
            "id": self.id,
            "fingerprint": self.fingerprint,
            "system": self.system_name,
            "property": self.property_name,
            "label": self.label,
            "status": self.status,
            "cache_hit": self.cache_hit,
            "cancel_requested": self.cancel_requested,
            "claimed_by": self.claimed_by,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
        }
        if self.ttl_seconds is not None:
            data["ttl_seconds"] = self.ttl_seconds
        if self.deadline_ms is not None:
            data["deadline_ms"] = self.deadline_ms
        if self.expires_at is not None:
            data["expires_at"] = self.expires_at
        if self.error is not None:
            data["error"] = self.error
        if result is not None:
            data["result"] = result
        elif self.partial_result is not None:
            # A cancelled job's UNKNOWN verdict with its partial statistics.
            data["result"] = self.partial_result
        return data

    @classmethod
    def _from_row(cls, row: sqlite3.Row) -> "StoredJob":
        return cls(
            id=row["id"],
            fingerprint=row["fingerprint"],
            system_name=row["system_name"],
            property_name=row["property_name"],
            label=row["label"],
            status=row["status"],
            error=row["error"],
            cache_hit=bool(row["cache_hit"]),
            cancel_requested=bool(row["cancel_requested"]),
            claimed_by=row["claimed_by"],
            heartbeat_at=row["heartbeat_at"],
            ttl_seconds=row["ttl_seconds"],
            deadline_ms=row["deadline_ms"],
            expires_at=row["expires_at"],
            submitted_at=row["submitted_at"],
            started_at=row["started_at"],
            finished_at=row["finished_at"],
            partial_result=(
                json.loads(row["partial_json"]) if row["partial_json"] else None
            ),
            system_dict=json.loads(row["system_json"]),
            property_dict=json.loads(row["property_json"]),
            options_dict=json.loads(row["options_json"]),
        )


class JobStore:
    """Thread-safe persistent job queue + result store on one SQLite file.

    All access goes through a single connection guarded by a lock, so worker
    threads and HTTP handler threads can share one store instance.  ``claim``
    transitions are atomic under that lock: each queued job is handed to
    exactly one worker.
    """

    def __init__(self, path: Union[str, os.PathLike] = ":memory:"):
        self.path = os.fspath(path)
        self._connection = sqlite3.connect(self.path, check_same_thread=False)
        self._connection.row_factory = sqlite3.Row
        self._lock = threading.RLock()
        self.store_hits = 0
        self.store_misses = 0
        # Wall-clock anchor for the monotonic store clock (see _now): all
        # in-process time arithmetic (TTL sweeps, heartbeat staleness,
        # expires_at computation) is immune to wall-clock steps, while the
        # persisted timestamps stay in the wall epoch for display.
        self._wall_anchor = time.time()
        self._mono_anchor = time.monotonic()
        with self._lock, self._connection:
            self._migrate_locked()
            self._connection.executescript(_SCHEMA)

    def _now(self) -> float:
        """A monotonically advancing clock expressed in the wall epoch.

        ``time.time()`` is sampled once at open; afterwards the store clock
        advances with ``time.monotonic()``, so an NTP step (or a manual
        ``date`` change) can neither instantly expire every TTL'd job nor
        immortalise them, and heartbeat/deadline arithmetic never goes
        backwards.  Persisted values remain ordinary epoch seconds.
        """
        return self._wall_anchor + (time.monotonic() - self._mono_anchor)

    def _migrate_locked(self) -> None:
        """Rebuild a PR 2 ``jobs`` table in place (new columns, new CHECK).

        DDL commits immediately under sqlite3's legacy transaction handling,
        so a crash can leave the rename/copy/drop sequence half done.  Every
        step is therefore idempotent and keyed off the on-disk state: a
        leftover ``jobs_migrating`` table (crash after the rename) is
        resumed -- rows are copied with ``INSERT OR IGNORE`` (crash after a
        partial copy) and the leftover dropped -- so no open can strand rows.
        """
        tables = {
            row[0]
            for row in self._connection.execute(
                "SELECT name FROM sqlite_master WHERE type = 'table'"
            )
        }
        if "jobs_migrating" not in tables:
            if "jobs" not in tables:
                return
            columns = {
                row[1] for row in self._connection.execute("PRAGMA table_info(jobs)")
            }
            if "cancel_requested" in columns:
                # A PR 3 store only lacks the worker-claim columns, which
                # need no CHECK change: plain ALTERs suffice.
                for name, kind in (("claimed_by", "TEXT"), ("heartbeat_at", "REAL")):
                    if name not in columns:
                        self._connection.execute(
                            f"ALTER TABLE jobs ADD COLUMN {name} {kind}"
                        )
                return
            # SQLite cannot alter a CHECK constraint: rename, then fall
            # through to the (resumable) recreate-copy-drop below.
            self._connection.execute("ALTER TABLE jobs RENAME TO jobs_migrating")
        self._connection.execute(_JOBS_DDL)
        self._connection.execute(
            f"INSERT OR IGNORE INTO jobs ({_V1_COLUMNS})"
            f" SELECT {_V1_COLUMNS} FROM jobs_migrating"
        )
        self._connection.execute("DROP TABLE jobs_migrating")

    def close(self) -> None:
        with self._lock:
            self._connection.close()

    # ---------------------------------------------------------------- lifecycle

    def submit(
        self,
        job: VerificationJob,
        label: Optional[str] = None,
        ttl_seconds: Optional[float] = None,
        deadline_ms: Optional[int] = None,
    ) -> StoredJob:
        """Persist *job* as ``queued`` and return its stored form (with id).

        ``ttl_seconds`` schedules the job row (and, transitively, any result
        no other job references) for deletion that long after it reaches a
        terminal state; ``deadline_ms`` bounds the wall-clock time the search
        may run once claimed.

        Job ids are 12 random hex digits; on the (astronomically rare but
        not impossible) collision with an existing row, the INSERT is simply
        retried with a fresh id rather than surfacing an ``IntegrityError``
        to the submitter.
        """
        now = self._now()
        with self._lock, self._connection:
            for attempt in range(16):
                job_id = uuid.uuid4().hex[:12]
                try:
                    self._connection.execute(
                        "INSERT INTO jobs (id, fingerprint, system_name, property_name,"
                        " label, status, cache_hit, ttl_seconds, deadline_ms,"
                        " submitted_at, system_json, property_json, options_json)"
                        " VALUES (?, ?, ?, ?, ?, 'queued', 0, ?, ?, ?, ?, ?, ?)",
                        (
                            job_id,
                            job.fingerprint,
                            job.system_name,
                            job.property_name,
                            label if label is not None else job.label,
                            ttl_seconds,
                            deadline_ms,
                            now,
                            json.dumps(job.system_dict),
                            json.dumps(job.property_dict),
                            json.dumps(job.options_dict),
                        ),
                    )
                    break
                except sqlite3.IntegrityError:
                    if attempt == 15:  # pragma: no cover - 16 collisions in a row
                        raise
        stored = self.get_job(job_id)
        assert stored is not None
        return stored

    def claim_next(self, worker_id: Optional[str] = None) -> Optional[StoredJob]:
        """Atomically pop the oldest claimable ``queued`` job, marking it ``running``.

        A queued job whose fingerprint is already ``running`` on another
        worker is not claimable yet: claiming it would verify the same
        content twice concurrently.  It stays queued until the in-flight twin
        finishes, at which point it completes as a cache hit (or, when the
        twin ends uncached -- cancelled, deadline-truncated, crashed -- is
        claimed and verified in its own right).

        ``worker_id`` records who claimed the job (``claimed_by``) and stamps
        an initial heartbeat; process-worker claims keep the heartbeat fresh
        via :meth:`heartbeat` so :meth:`requeue_stale` can detect dead
        workers.  Claims without a ``worker_id`` (the in-process thread
        model) never heartbeat and are never considered stale.
        """
        with self._lock, self._connection:
            row = self._connection.execute(
                "SELECT * FROM jobs WHERE status = 'queued' AND fingerprint NOT IN"
                " (SELECT fingerprint FROM jobs WHERE status = 'running')"
                " ORDER BY submitted_at, rowid LIMIT 1"
            ).fetchone()
            if row is None:
                return None
            now = self._now()
            self._connection.execute(
                "UPDATE jobs SET status = 'running', started_at = ?,"
                " claimed_by = ?, heartbeat_at = ? WHERE id = ?",
                (now, worker_id, now if worker_id is not None else None, row["id"]),
            )
        return self.get_job(row["id"])

    def heartbeat(self, job_id: str) -> None:
        """Refresh a running job's liveness stamp (process-worker claims)."""
        with self._lock, self._connection:
            self._connection.execute(
                "UPDATE jobs SET heartbeat_at = ? WHERE id = ? AND status = 'running'",
                (self._now(), job_id),
            )

    def release(self, job_id: str) -> bool:
        """Return one ``running`` job to the queue (its worker died mid-run).

        No-op (returns False) unless the job is currently ``running``; a job
        whose cancellation was already requested is finalised as
        ``cancelled`` instead of being resurrected.
        """
        with self._lock, self._connection:
            row = self._connection.execute(
                "SELECT status, cancel_requested FROM jobs WHERE id = ?", (job_id,)
            ).fetchone()
            if row is None or row["status"] != "running":
                return False
            if row["cancel_requested"]:
                now = self._now()
                self._connection.execute(
                    "UPDATE jobs SET status = 'cancelled', finished_at = ?,"
                    " claimed_by = NULL, heartbeat_at = NULL,"
                    " expires_at = CASE WHEN ttl_seconds IS NOT NULL"
                    "   THEN ? + ttl_seconds ELSE NULL END WHERE id = ?",
                    (now, now, job_id),
                )
                return True
            self._connection.execute(
                "UPDATE jobs SET status = 'queued', started_at = NULL,"
                " claimed_by = NULL, heartbeat_at = NULL WHERE id = ?",
                (job_id,),
            )
            return True

    def requeue_stale(self, max_age_seconds: float) -> int:
        """Re-queue ``running`` jobs whose heartbeat went stale; returns the count.

        Only heartbeat-carrying claims (process workers) are eligible --
        thread-model claims never heartbeat, so a long thread-run is never
        mistaken for a dead worker.  Stale jobs with a pending cancel are
        finalised ``cancelled`` rather than requeued.
        """
        cutoff = self._now() - max_age_seconds
        with self._lock, self._connection:
            now = self._now()
            self._connection.execute(
                "UPDATE jobs SET status = 'cancelled', finished_at = ?,"
                " claimed_by = NULL, heartbeat_at = NULL,"
                " expires_at = CASE WHEN ttl_seconds IS NOT NULL"
                "   THEN ? + ttl_seconds ELSE NULL END"
                " WHERE status = 'running' AND cancel_requested = 1"
                " AND heartbeat_at IS NOT NULL AND heartbeat_at <= ?",
                (now, now, cutoff),
            )
            cursor = self._connection.execute(
                "UPDATE jobs SET status = 'queued', started_at = NULL,"
                " claimed_by = NULL, heartbeat_at = NULL"
                " WHERE status = 'running' AND cancel_requested = 0"
                " AND heartbeat_at IS NOT NULL AND heartbeat_at <= ?",
                (cutoff,),
            )
            return cursor.rowcount

    def mark_done(
        self,
        job_id: str,
        result: Dict[str, Any],
        cache_hit: bool = False,
        persist_result: bool = True,
    ) -> bool:
        """Record a finished job and persist its result under the fingerprint.

        ``persist_result=False`` keeps the result on the job row only (like a
        cancelled job's partial result) -- used for verdicts truncated by
        job-level limits (``deadline_ms``) that are not part of the content
        fingerprint, so they can never be served as cache hits to jobs
        without that limit.

        Terminal states are never overwritten: if the job already landed
        ``done``/``error``/``cancelled`` (e.g. a stale-heartbeat rescue
        requeued it and the rescued copy was cancelled while this worker's
        result was still in flight), the jobs-row update is skipped and
        ``False`` is returned.  The computed result itself is still
        persisted under the fingerprint when eligible -- verification is
        deterministic, so the verdict is valid regardless of which claim
        produced it.
        """
        with self._lock, self._connection:
            row = self._connection.execute(
                "SELECT fingerprint FROM jobs WHERE id = ?", (job_id,)
            ).fetchone()
            if row is None:
                raise KeyError(f"no stored job with id {job_id!r}")
            partial_json = None
            if persist_result:
                # The read-through cache usually persisted the result already
                # (results are deterministic per fingerprint): skip the
                # redundant serialize-and-write on the hot path.
                exists = self._connection.execute(
                    "SELECT 1 FROM results WHERE fingerprint = ?", (row["fingerprint"],)
                ).fetchone()
                if exists is None:
                    self._put_result_locked(row["fingerprint"], result)
            else:
                partial_json = json.dumps(result)
            now = self._now()
            cursor = self._connection.execute(
                "UPDATE jobs SET status = 'done', cache_hit = ?, finished_at = ?,"
                " partial_json = ?, claimed_by = NULL, heartbeat_at = NULL,"
                " expires_at = CASE WHEN ttl_seconds IS NOT NULL"
                "   THEN ? + ttl_seconds ELSE NULL END,"
                " error = NULL"
                " WHERE id = ? AND status NOT IN ('done', 'error', 'cancelled')",
                (1 if cache_hit else 0, now, partial_json, now, job_id),
            )
            return cursor.rowcount > 0

    def mark_error(self, job_id: str, message: str) -> bool:
        """Land the ``error`` state; no-op (False) on already-terminal jobs."""
        with self._lock, self._connection:
            now = self._now()
            cursor = self._connection.execute(
                "UPDATE jobs SET status = 'error', error = ?, finished_at = ?,"
                " claimed_by = NULL, heartbeat_at = NULL,"
                " expires_at = CASE WHEN ttl_seconds IS NOT NULL"
                "   THEN ? + ttl_seconds ELSE NULL END"
                " WHERE id = ? AND status NOT IN ('done', 'error', 'cancelled')",
                (message, now, now, job_id),
            )
            return cursor.rowcount > 0

    def mark_cancelled(
        self, job_id: str, partial_result: Optional[Dict[str, Any]] = None
    ) -> bool:
        """Land the terminal ``cancelled`` state, keeping any partial result.

        The partial result (an ``UNKNOWN`` verdict with the statistics
        gathered before the stop) lives on the job row only -- never in the
        ``results`` table, so it can never satisfy a cache lookup.  No-op
        (False) on already-terminal jobs.
        """
        with self._lock, self._connection:
            now = self._now()
            cursor = self._connection.execute(
                "UPDATE jobs SET status = 'cancelled', finished_at = ?,"
                " partial_json = ?, claimed_by = NULL, heartbeat_at = NULL,"
                " expires_at = CASE WHEN ttl_seconds IS NOT NULL"
                "   THEN ? + ttl_seconds ELSE NULL END"
                " WHERE id = ? AND status NOT IN ('done', 'error', 'cancelled')",
                (
                    now,
                    json.dumps(partial_result) if partial_result is not None else None,
                    now,
                    job_id,
                ),
            )
            return cursor.rowcount > 0

    def request_cancel(self, job_id: str) -> Optional[Tuple[str, bool]]:
        """Request cooperative cancellation of a job.

        Returns ``(disposition, fresh)`` -- or ``None`` when no such job
        exists.  The disposition is the job's *resulting* state:
        ``"cancelled"`` for a queued job (terminal immediately -- no worker
        ever sees it), ``"cancelling"`` for a running one (the
        ``cancel_requested`` flag is persisted; the owning worker's token is
        tripped by the server), or the unchanged terminal status.  ``fresh``
        is True only when *this* call changed something, so repeated DELETEs
        don't inflate metrics or append duplicate events.

        The ``cancel`` event is appended in the same transaction, *before*
        the status flips terminal: a poller that observes ``terminal`` is
        guaranteed the event log is already complete.
        """
        with self._lock, self._connection:
            row = self._connection.execute(
                "SELECT status, cancel_requested FROM jobs WHERE id = ?", (job_id,)
            ).fetchone()
            if row is None:
                return None
            status = row["status"]
            if status == "queued":
                self._append_event_locked(
                    job_id, "cancel", {"data": {"disposition": "cancelled"}}
                )
                now = self._now()
                self._connection.execute(
                    "UPDATE jobs SET status = 'cancelled', cancel_requested = 1,"
                    " finished_at = ?,"
                    " expires_at = CASE WHEN ttl_seconds IS NOT NULL"
                    "   THEN ? + ttl_seconds ELSE NULL END WHERE id = ?",
                    (now, now, job_id),
                )
                return "cancelled", True
            if status == "running":
                if row["cancel_requested"]:
                    return "cancelling", False
                self._append_event_locked(
                    job_id, "cancel", {"data": {"disposition": "cancelling"}}
                )
                self._connection.execute(
                    "UPDATE jobs SET cancel_requested = 1 WHERE id = ?", (job_id,)
                )
                return "cancelling", True
            return status, False

    def is_cancel_requested(self, job_id: str) -> bool:
        with self._lock:
            row = self._connection.execute(
                "SELECT cancel_requested FROM jobs WHERE id = ?", (job_id,)
            ).fetchone()
        return bool(row and row["cancel_requested"])

    def requeue_running(self) -> int:
        """Re-queue jobs left ``running`` by a dead process; returns the count.

        Interrupted jobs whose cancellation was already requested are *not*
        requeued: the cancel was accepted before the crash, so they land in
        the terminal ``cancelled`` state instead (see
        :meth:`cancel_interrupted`, which recovery runs first).
        """
        with self._lock, self._connection:
            cursor = self._connection.execute(
                "UPDATE jobs SET status = 'queued', started_at = NULL,"
                " claimed_by = NULL, heartbeat_at = NULL"
                " WHERE status = 'running' AND cancel_requested = 0"
            )
            return cursor.rowcount

    def cancel_interrupted(self) -> int:
        """Finalise ``running`` jobs with a pending cancel as ``cancelled``."""
        with self._lock, self._connection:
            now = self._now()
            cursor = self._connection.execute(
                "UPDATE jobs SET status = 'cancelled', finished_at = ?,"
                " claimed_by = NULL, heartbeat_at = NULL,"
                " expires_at = CASE WHEN ttl_seconds IS NOT NULL"
                "   THEN ? + ttl_seconds ELSE NULL END"
                " WHERE status = 'running' AND cancel_requested = 1",
                (now, now),
            )
            return cursor.rowcount

    # ------------------------------------------------------------------ queries

    def get_job(self, job_id: str) -> Optional[StoredJob]:
        with self._lock:
            row = self._connection.execute(
                "SELECT * FROM jobs WHERE id = ?", (job_id,)
            ).fetchone()
        return StoredJob._from_row(row) if row is not None else None

    def list_jobs(
        self, status: Optional[str] = None, limit: int = 100
    ) -> List[StoredJob]:
        """Most recently submitted jobs first, optionally filtered by status."""
        if status is not None and status not in JOB_STATUSES:
            raise ValueError(f"unknown job status {status!r}; expected one of {JOB_STATUSES}")
        query = "SELECT * FROM jobs"
        parameters: List[Any] = []
        if status is not None:
            query += " WHERE status = ?"
            parameters.append(status)
        query += " ORDER BY submitted_at DESC, rowid DESC LIMIT ?"
        parameters.append(max(0, limit))
        with self._lock:
            rows = self._connection.execute(query, parameters).fetchall()
        return [StoredJob._from_row(row) for row in rows]

    def counts(self) -> Dict[str, int]:
        """Jobs per status (every status present, zero when empty)."""
        with self._lock:
            rows = self._connection.execute(
                "SELECT status, COUNT(*) AS n FROM jobs GROUP BY status"
            ).fetchall()
        counts = {status: 0 for status in JOB_STATUSES}
        for row in rows:
            counts[row["status"]] = row["n"]
        return counts

    # ------------------------------------------------------------------ results

    def get_result(self, fingerprint: str, count: bool = True) -> Optional[Dict[str, Any]]:
        """The persisted result dict for *fingerprint*.

        ``count=True`` (the default, used by the read-through cache) updates
        the store hit/miss counters; status polling passes ``count=False`` so
        it cannot skew the cache-effectiveness metrics.
        """
        with self._lock:
            row = self._connection.execute(
                "SELECT result_json FROM results WHERE fingerprint = ?", (fingerprint,)
            ).fetchone()
            if row is None:
                if count:
                    self.store_misses += 1
                return None
            if count:
                self.store_hits += 1
            return json.loads(row["result_json"])

    def has_result(self, fingerprint: str) -> bool:
        """Whether a result is persisted, without touching the hit/miss counters."""
        with self._lock:
            row = self._connection.execute(
                "SELECT 1 FROM results WHERE fingerprint = ?", (fingerprint,)
            ).fetchone()
        return row is not None

    def put_result(self, fingerprint: str, result: Dict[str, Any]) -> None:
        with self._lock, self._connection:
            self._put_result_locked(fingerprint, result)

    def _put_result_locked(self, fingerprint: str, result: Dict[str, Any]) -> None:
        self._connection.execute(
            "INSERT OR REPLACE INTO results (fingerprint, result_json, created_at)"
            " VALUES (?, ?, ?)",
            (fingerprint, json.dumps(result), self._now()),
        )

    def result_count(self) -> int:
        with self._lock:
            return self._connection.execute("SELECT COUNT(*) FROM results").fetchone()[0]

    # ------------------------------------------------------------------- events

    def append_event(self, job_id: str, kind: str, payload: Dict[str, Any]) -> int:
        """Append one progress event to the job's log; returns its ``seq``.

        Sequence numbers are store-assigned (``MAX(seq) + 1`` under the
        store lock) so they stay strictly increasing across restarts and
        re-runs of the same job.
        """
        with self._lock, self._connection:
            return self._append_event_locked(job_id, kind, payload)

    def _append_event_locked(
        self, job_id: str, kind: str, payload: Dict[str, Any]
    ) -> int:
        row = self._connection.execute(
            "SELECT COALESCE(MAX(seq), 0) + 1 FROM events WHERE job_id = ?",
            (job_id,),
        ).fetchone()
        seq = row[0]
        self._connection.execute(
            "INSERT INTO events (job_id, seq, created_at, kind, payload)"
            " VALUES (?, ?, ?, ?, ?)",
            (job_id, seq, self._now(), kind, json.dumps(payload)),
        )
        return seq

    def events_after(
        self, job_id: str, cursor: int = 0, limit: int = 500
    ) -> List[Dict[str, Any]]:
        """Events with ``seq > cursor``, oldest first (the polling primitive)."""
        with self._lock:
            rows = self._connection.execute(
                "SELECT seq, created_at, kind, payload FROM events"
                " WHERE job_id = ? AND seq > ? ORDER BY seq LIMIT ?",
                (job_id, cursor, max(0, limit)),
            ).fetchall()
        return [
            {
                "seq": row["seq"],
                "created_at": row["created_at"],
                "kind": row["kind"],
                **json.loads(row["payload"]),
            }
            for row in rows
        ]

    def event_count(self, job_id: str) -> int:
        with self._lock:
            return self._connection.execute(
                "SELECT COUNT(*) FROM events WHERE job_id = ?", (job_id,)
            ).fetchone()[0]

    # ----------------------------------------------------------------- sweeping

    def sweep_expired(self, now: Optional[float] = None) -> Dict[str, int]:
        """Delete TTL-expired terminal jobs, their events, and orphaned results.

        A result row is deleted only when no remaining job references its
        fingerprint, so results shared with unexpired (or TTL-less) jobs
        survive.  Returns ``{"jobs": ..., "events": ..., "results": ...}``
        deletion counts.  The implicit *now* comes from the store's
        monotonic clock, so a wall-clock step can neither mass-expire nor
        immortalise jobs.
        """
        now = self._now() if now is None else now
        with self._lock, self._connection:
            expired = [
                row["id"]
                for row in self._connection.execute(
                    "SELECT id FROM jobs WHERE expires_at IS NOT NULL"
                    " AND expires_at <= ? AND status IN ('done', 'error', 'cancelled')",
                    (now,),
                )
            ]
            if not expired:
                return {"jobs": 0, "events": 0, "results": 0}
            placeholders = ",".join("?" for _ in expired)
            events = self._connection.execute(
                f"DELETE FROM events WHERE job_id IN ({placeholders})", expired
            ).rowcount
            self._connection.execute(
                f"DELETE FROM jobs WHERE id IN ({placeholders})", expired
            )
            results = self._connection.execute(
                "DELETE FROM results WHERE fingerprint NOT IN"
                " (SELECT fingerprint FROM jobs)"
            ).rowcount
            return {"jobs": len(expired), "events": events, "results": results}

    def statistics(self) -> Dict[str, int]:
        return {
            "results": self.result_count(),
            "store_hits": self.store_hits,
            "store_misses": self.store_misses,
        }


class StoreBackedCache:
    """Read-through layer: in-memory LRU :class:`ResultCache` over a :class:`JobStore`.

    ``get`` consults memory first, then the store (promoting store hits into
    memory); ``put`` writes both.  Implements the cache duck type the
    verification engine uses, so plugging it into a
    :class:`~repro.service.engine.VerificationService` makes every previously
    persisted result a cache hit -- including after a process restart with a
    cold memory cache.
    """

    def __init__(self, store: JobStore, memory: Optional[ResultCache] = None):
        self.store = store
        self.memory = memory if memory is not None else ResultCache()

    def get(self, fingerprint: str) -> Optional[VerificationResult]:
        cached = self.memory.get(fingerprint)
        if cached is not None:
            return cached
        persisted = self.store.get_result(fingerprint)
        if persisted is None:
            return None
        result = VerificationResult.from_dict(persisted)
        self.memory.put(fingerprint, result)
        return result

    def peek(self, fingerprint: str) -> bool:
        return self.memory.peek(fingerprint) or self.store.has_result(fingerprint)

    def put(self, fingerprint: str, result: VerificationResult) -> None:
        self.memory.put(fingerprint, result)
        self.store.put_result(fingerprint, result.as_dict())

    def statistics(self) -> Dict[str, int]:
        memory = self.memory.statistics()
        return {
            "entries": memory["entries"],
            "hits": memory["hits"],
            "misses": memory["misses"],
            **self.store.statistics(),
        }
